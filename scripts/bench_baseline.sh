#!/usr/bin/env sh
# bench-baseline: smoke-run the perf-baseline benchmarks (hot path +
# threaded-runtime scaling + real-runtime latency) and validate that both
# their output and the committed BENCH_*.json files parse as JSON, so
# perf tooling regressions fail loudly in CI instead of silently.
#
# Also runs the telemetry-off hot-path guard: the freshly measured
# in-order ingest rate must stay within (a generous notion of) noise of
# the committed BENCH_hotpath.json baseline — a tripwire for the
# telemetry plane (or anything else) accidentally taxing the hot path
# when it is switched off.
#
# And the batched-ingest guard (PR 6): batched front-end publishing must
# not lose to the committed single-message baseline in BENCH_ingest.json
# — both on the committed full-run numbers (exact) and on the fresh
# smoke run (loose floor, CI-runner tolerant).
#
# And the crash-recovery guard (PR 7): the committed BENCH_recovery.json
# must cover every registered crash point, and the fresh sweep's
# worst-case recovery time must stay under a loose ceiling of the
# committed baseline.
#
# And the sketch guard (PR 8): the committed BENCH_sketch.json must show
# the approximate countDistinct arm at constant memory (>= 10x below the
# exact aux-CF footprint at 1M distinct keys), within its configured
# error bound on every row, and at least matching the exact arm's insert
# throughput.
#
# And the rebalance guard (PR 9): the committed BENCH_rebalance.json must
# show checkpoint-based handover beating full replay on rebalance
# downtime p99 by at least 5x with zero handover fallbacks and zero
# acked-event loss; the fresh smoke run must clear a loose 2x floor.
#
# And the capacity guard (PR 10): the committed BENCH_capacity.json must
# show watermark-filtered expiry strictly below point-delete expiry on
# mean state bytes at the largest window span, a bucket-boundary expiry
# stall at least 10x shorter, a nonzero filter-drop count, and a put p99
# inside the SLO; the fresh smoke run re-checks drops and the stall
# ratio (both hardware-independent at a loose 2x floor).
#
# Usage:
#   scripts/bench_baseline.sh          # smoke mode (CI): tiny N
#   scripts/bench_baseline.sh --full   # full measurement run
#                                      # (use its output to refresh the
#                                      # committed BENCH_*.json files)
set -eu

cd "$(dirname "$0")/.."

MODE_ARGS="--test"
if [ "${1:-}" = "--full" ]; then
  MODE_ARGS=""
fi

# Absolute paths: cargo runs bench binaries with the package dir as CWD.
OUT="$(pwd)/target/bench_hotpath_smoke.json"
SCALING_OUT="$(pwd)/target/bench_scaling_smoke.json"
LATENCY_OUT="$(pwd)/target/bench_latency_smoke.json"
INGEST_OUT="$(pwd)/target/bench_ingest_smoke.json"
RECOVERY_OUT="$(pwd)/target/bench_recovery_smoke.json"
SKETCH_OUT="$(pwd)/target/bench_sketch_smoke.json"
REBALANCE_OUT="$(pwd)/target/bench_rebalance_smoke.json"
CAPACITY_OUT="$(pwd)/target/bench_capacity_smoke.json"
# shellcheck disable=SC2086  # MODE_ARGS is intentionally word-split
cargo bench -p railgun-bench --bench fig_hotpath -- $MODE_ARGS --out "$OUT"
# shellcheck disable=SC2086
cargo bench -p railgun-bench --bench fig_scaling -- $MODE_ARGS --out "$SCALING_OUT"
# shellcheck disable=SC2086
cargo bench -p railgun-bench --bench fig_latency -- $MODE_ARGS --out "$LATENCY_OUT"
# shellcheck disable=SC2086
cargo bench -p railgun-bench --bench fig_ingest -- $MODE_ARGS --out "$INGEST_OUT"
# shellcheck disable=SC2086
cargo bench -p railgun-bench --bench fig_recovery -- $MODE_ARGS --out "$RECOVERY_OUT"
# shellcheck disable=SC2086
cargo bench -p railgun-bench --bench fig_sketch -- $MODE_ARGS --out "$SKETCH_OUT"
# shellcheck disable=SC2086
cargo bench -p railgun-bench --bench fig_rebalance -- $MODE_ARGS --out "$REBALANCE_OUT"
# shellcheck disable=SC2086
cargo bench -p railgun-bench --bench fig_capacity -- $MODE_ARGS --out "$CAPACITY_OUT"

validate() {
  f="$1"
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$f" >/dev/null
  elif command -v jq >/dev/null 2>&1; then
    jq . "$f" >/dev/null
  else
    # Minimal sanity check without a JSON tool: non-empty, balanced braces.
    [ -s "$f" ] && grep -q '"bench"' "$f"
  fi
  echo "ok: $f parses"
}

validate "$OUT"
validate "$SCALING_OUT"
validate "$LATENCY_OUT"
validate "$INGEST_OUT"
validate "$RECOVERY_OUT"
validate "$SKETCH_OUT"
validate "$REBALANCE_OUT"
validate "$CAPACITY_OUT"
validate BENCH_hotpath.json
validate BENCH_scaling.json
validate BENCH_latency.json
validate BENCH_ingest.json
validate BENCH_recovery.json
validate BENCH_sketch.json
validate BENCH_rebalance.json
validate BENCH_capacity.json

# Telemetry-off hot-path guard. The benches run with telemetry disabled
# (the default), so the fresh in-order ingest rate should be in the same
# ballpark as the committed baseline. The floor is deliberately loose
# (25% of the committed best sample): it tolerates slow shared CI runners
# and smoke-size N while still tripping on an order-of-magnitude
# regression such as an always-on clock read landing in the append path.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$OUT" <<'EOF'
import json, sys

fresh = json.load(open(sys.argv[1]))["metrics"]["ingest_inorder_eps"]
committed = json.load(open("BENCH_hotpath.json"))
after = [p for p in committed["phases"] if p["label"] == "pr2-after"]
baseline = max(s["ingest_inorder_eps"] for p in after for s in p["samples"])
floor = 0.25 * baseline
status = "ok" if fresh >= floor else "FAIL"
print(f"{status}: telemetry-off ingest {fresh:.0f} ev/s vs committed "
      f"baseline {baseline:.0f} ev/s (floor {floor:.0f})")
sys.exit(0 if fresh >= floor else 1)
EOF
else
  echo "skip: hot-path guard needs python3"
fi

# Batched-ingest guard. Two checks:
#  1. The committed full-run numbers must show batched publishing at or
#     above the committed single-message baseline — the refactor's whole
#     point, checked exactly (both numbers come from the same run on the
#     same machine, so no noise allowance is needed).
#  2. The fresh smoke run's batched rate must clear a loose floor (25%)
#     of the committed single-message baseline — the same cross-machine
#     tripwire style as the hot-path guard above.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$INGEST_OUT" <<'EOF'
import json, sys

committed = json.load(open("BENCH_ingest.json"))["measured"]
batched = committed["batched_eps"]
single = committed["single_message_eps"]
if batched < single:
    print(f"FAIL: committed batched ingest {batched:.0f} ev/s below the "
          f"committed single-message baseline {single:.0f} ev/s")
    sys.exit(1)
print(f"ok: committed batched ingest {batched:.0f} ev/s >= "
      f"single-message baseline {single:.0f} ev/s")

fresh = json.load(open(sys.argv[1]))["measured"]["batched_eps"]
floor = 0.25 * single
status = "ok" if fresh >= floor else "FAIL"
print(f"{status}: fresh batched ingest {fresh:.0f} ev/s vs committed "
      f"single-message baseline {single:.0f} ev/s (floor {floor:.0f})")
sys.exit(0 if fresh >= floor else 1)
EOF
else
  echo "skip: batched-ingest guard needs python3"
fi

# Crash-recovery guard. The committed BENCH_recovery.json must cover
# every crash point the fresh sweep knows about (a point added without
# refreshing the baseline, or silently dropped from the sweep, fails
# here), and the fresh worst-case recovery time must stay under a very
# loose ceiling relative to the committed baseline — recovery is
# microseconds of manifest/WAL work, so even a slow CI runner staying
# 50x under the ceiling means nobody accidentally made reopen rescan
# the world.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$RECOVERY_OUT" <<'EOF'
import json, sys

fresh = json.load(open(sys.argv[1]))["measured"]
committed = json.load(open("BENCH_recovery.json"))["measured"]
fresh_points = {p["point"] for p in fresh["by_point"]}
committed_points = {p["point"] for p in committed["by_point"]}
missing = fresh_points - committed_points
if missing:
    print(f"FAIL: BENCH_recovery.json missing crash points {sorted(missing)} "
          "(refresh with scripts/bench_baseline.sh --full)")
    sys.exit(1)
print(f"ok: committed recovery baseline covers all {len(fresh_points)} crash points")

ceiling = max(50 * committed["worst_recovery_us"], 1_000_000)
worst = fresh["worst_recovery_us"]
status = "ok" if worst <= ceiling else "FAIL"
print(f"{status}: fresh worst-case recovery {worst} us vs committed "
      f"{committed['worst_recovery_us']} us (ceiling {ceiling})")
sys.exit(0 if worst <= ceiling else 1)
EOF
else
  echo "skip: crash-recovery guard needs python3"
fi

# Sketch guard. Three checks on the committed full-run BENCH_sketch.json
# (all from one run on one machine, so they are exact — no noise
# allowance), plus a fresh-run error tripwire:
#  1. Constant memory: at >= 1M distinct keys the approximate arm's
#     state must be at least 10x below the exact aux-CF footprint.
#  2. Accuracy: every committed row's relative error must be within the
#     configured bound.
#  3. Throughput: the approximate arm's per-event insert rate must be at
#     least the exact arm's at every cardinality both measured.
# The fresh smoke run re-checks only the error bound (it is
# hardware-independent; throughput and footprint come from the committed
# full run).
if command -v python3 >/dev/null 2>&1; then
  python3 - "$SKETCH_OUT" <<'EOF'
import json, sys

committed = json.load(open("BENCH_sketch.json"))
bound = committed["config"]["err"]
rows = committed["measured"]["sweep"]
ok = True

big = [r for r in rows if r["distinct"] >= 1_000_000 and r["exact"]]
if not big:
    print("FAIL: BENCH_sketch.json has no >=1M-key row with an exact arm")
    ok = False
for r in big:
    ratio = r["exact"]["state_bytes"] / max(1, r["approx"]["state_bytes"])
    status = "ok" if ratio >= 10 else "FAIL"
    ok &= ratio >= 10
    print(f"{status}: {r['distinct']} keys: approx state {r['approx']['state_bytes']} B "
          f"is {ratio:.0f}x below exact {r['exact']['state_bytes']} B (need >= 10x)")

for r in rows:
    status = "ok" if r["approx"]["rel_err"] <= bound else "FAIL"
    ok &= r["approx"]["rel_err"] <= bound
    print(f"{status}: {r['distinct']} keys: committed rel_err "
          f"{r['approx']['rel_err']:.4f} <= bound {bound}")

for r in rows:
    if not r["exact"]:
        continue
    status = "ok" if r["approx"]["events_per_s"] >= r["exact"]["events_per_s"] else "FAIL"
    ok &= r["approx"]["events_per_s"] >= r["exact"]["events_per_s"]
    print(f"{status}: {r['distinct']} keys: approx {r['approx']['events_per_s']:.0f} ev/s "
          f"vs exact {r['exact']['events_per_s']:.0f} ev/s")

fresh = json.load(open(sys.argv[1]))
for r in fresh["measured"]["sweep"]:
    status = "ok" if r["approx"]["rel_err"] <= bound else "FAIL"
    ok &= r["approx"]["rel_err"] <= bound
    print(f"{status}: {r['distinct']} keys: fresh rel_err "
          f"{r['approx']['rel_err']:.4f} <= bound {bound}")

sys.exit(0 if ok else 1)
EOF
else
  echo "skip: sketch guard needs python3"
fi

# Rebalance guard. The committed full-run BENCH_rebalance.json comes from
# one machine and one run, so its checks are exact:
#  1. Handover must beat full replay on rebalance-downtime p99 by at
#     least 5x — the headline claim of checkpoint-based handover.
#  2. Zero handover fallbacks (every gained task restored an image) and
#     zero acked-event loss (every probe reply matched its expected
#     running count).
# The fresh smoke run re-checks the same invariants with a loose 2x
# downtime floor, CI-runner tolerant.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$REBALANCE_OUT" <<'EOF'
import json, sys

ok = True
committed = json.load(open("BENCH_rebalance.json"))["measured"]
ratio = committed["downtime_p99_ratio"]
status = "ok" if ratio >= 5 else "FAIL"
ok &= ratio >= 5
print(f"{status}: committed rebalance downtime p99 ratio {ratio:.1f}x "
      f"(full replay {committed['full_replay']['p99_us']} us vs handover "
      f"{committed['handover']['p99_us']} us, need >= 5x)")
for name, m in (("committed", committed),
                ("fresh", json.load(open(sys.argv[1]))["measured"])):
    good = m["handover"]["fallbacks"] == 0 and m["acked_loss"] == 0
    ok &= good
    status = "ok" if good else "FAIL"
    print(f"{status}: {name} handover fallbacks {m['handover']['fallbacks']}, "
          f"acked loss {m['acked_loss']} (need 0/0)")

fresh = json.load(open(sys.argv[1]))["measured"]["downtime_p99_ratio"]
status = "ok" if fresh >= 2 else "FAIL"
ok &= fresh >= 2
print(f"{status}: fresh rebalance downtime p99 ratio {fresh:.1f}x (floor 2x)")
sys.exit(0 if ok else 1)
EOF
else
  echo "skip: rebalance guard needs python3"
fi

# Capacity guard. The committed full-run BENCH_capacity.json comes from
# one machine and one run (both arms interleaved), so its checks are
# exact:
#  1. State: at the largest span, the filtered arm's mean state bytes
#     must be strictly below the deletes arm's — the tombstone garbage
#     the filter never writes.
#  2. Expiry stall: the delete storm at bucket boundaries must cost at
#     least 10x the watermark advance at the largest span (it grows with
#     span; the atomic store does not).
#  3. The filter must have actually dropped entries at every span, and
#     both arms must agree on the end-of-run live key count (the bench
#     itself asserts exact convergence).
#  4. SLO: the filtered arm's put p99 stays under 2 ms at every span.
# The fresh smoke run re-checks drops, convergence, and a loose 2x stall
# ratio (hardware-independent; state curves come from the committed full
# run).
if command -v python3 >/dev/null 2>&1; then
  python3 - "$CAPACITY_OUT" <<'EOF'
import json, sys

ok = True
committed = json.load(open("BENCH_capacity.json"))["measured"]["by_span"]
largest = max(committed, key=lambda r: r["span_buckets"])
flt, dele = largest["filtered"], largest["deletes"]
good = flt["state_bytes_mean"] < dele["state_bytes_mean"]
ok &= good
print(f"{'ok' if good else 'FAIL'}: committed span {largest['span_buckets']}: filtered mean state "
      f"{flt['state_bytes_mean']} B < deletes {dele['state_bytes_mean']} B")
ratio = dele["expiry_stall_p99_us"] / max(1e-9, flt["expiry_stall_p99_us"])
good = ratio >= 10
ok &= good
print(f"{'ok' if good else 'FAIL'}: committed span {largest['span_buckets']}: expiry stall p99 "
      f"{dele['expiry_stall_p99_us']} us (deletes) vs {flt['expiry_stall_p99_us']} us "
      f"(filtered), {ratio:.0f}x (need >= 10x)")
for name, rows, stall_floor in (("committed", committed, 10),
                                ("fresh", json.load(open(sys.argv[1]))["measured"]["by_span"], 2)):
    for r in rows:
        f, d = r["filtered"], r["deletes"]
        good = f["filter_dropped"] > 0
        ok &= good
        print(f"{'ok' if good else 'FAIL'}: {name} span {r['span_buckets']}: "
              f"filter dropped {f['filter_dropped']} entries (need > 0)")
        good = f["live_keys_end"] == d["live_keys_end"]
        ok &= good
        print(f"{'ok' if good else 'FAIL'}: {name} span {r['span_buckets']}: live keys "
              f"{f['live_keys_end']} (filtered) == {d['live_keys_end']} (deletes)")
        sr = d["expiry_stall_p99_us"] / max(1e-9, f["expiry_stall_p99_us"])
        good = sr >= stall_floor
        ok &= good
        print(f"{'ok' if good else 'FAIL'}: {name} span {r['span_buckets']}: stall ratio "
              f"{sr:.0f}x (floor {stall_floor}x)")
for r in committed:
    good = r["filtered"]["put_p99_us"] <= 2000
    ok &= good
    print(f"{'ok' if good else 'FAIL'}: committed span {r['span_buckets']}: filtered put p99 "
          f"{r['filtered']['put_p99_us']} us <= 2000 us SLO")
sys.exit(0 if ok else 1)
EOF
else
  echo "skip: capacity guard needs python3"
fi
