#!/usr/bin/env sh
# bench-baseline: smoke-run the perf-baseline benchmarks (hot path +
# threaded-runtime scaling) and validate that both their output and the
# committed BENCH_*.json files parse as JSON, so perf tooling regressions
# fail loudly in CI instead of silently.
#
# Usage:
#   scripts/bench_baseline.sh          # smoke mode (CI): tiny N
#   scripts/bench_baseline.sh --full   # full measurement run
#                                      # (use its output to refresh the
#                                      # committed BENCH_*.json files)
set -eu

cd "$(dirname "$0")/.."

MODE_ARGS="--test"
if [ "${1:-}" = "--full" ]; then
  MODE_ARGS=""
fi

# Absolute paths: cargo runs bench binaries with the package dir as CWD.
OUT="$(pwd)/target/bench_hotpath_smoke.json"
SCALING_OUT="$(pwd)/target/bench_scaling_smoke.json"
# shellcheck disable=SC2086  # MODE_ARGS is intentionally word-split
cargo bench -p railgun-bench --bench fig_hotpath -- $MODE_ARGS --out "$OUT"
# shellcheck disable=SC2086
cargo bench -p railgun-bench --bench fig_scaling -- $MODE_ARGS --out "$SCALING_OUT"

validate() {
  f="$1"
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$f" >/dev/null
  elif command -v jq >/dev/null 2>&1; then
    jq . "$f" >/dev/null
  else
    # Minimal sanity check without a JSON tool: non-empty, balanced braces.
    [ -s "$f" ] && grep -q '"bench"' "$f"
  fi
  echo "ok: $f parses"
}

validate "$OUT"
validate "$SCALING_OUT"
validate BENCH_hotpath.json
validate BENCH_scaling.json
