//! Engine-level batched-ingest identity (PR 6). The front-end coalesces
//! pipelined sends into shared-frame batches and the units process runs
//! of consecutive same-task records in one pass — all of which must be
//! *semantically invisible*: pipelined ingest has to produce replies
//! identical to one-at-a-time closed-loop ingest, in pump mode and
//! threaded mode alike. (Byte-identity of the reservoir files themselves
//! is pinned at the reservoir level in
//! `railgun-reservoir/tests/batch_identity.rs`.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use proptest::prelude::*;

use railgun::engine::{BatchPolicy, Cluster, ClusterConfig, SendOutcome};
use railgun::types::{FieldType, Schema, Timestamp, Value};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// One drawn event: (card, amount, lateness in ms).
type Drawn = (u8, u32, i64);

fn schema() -> Schema {
    Schema::from_pairs(&[("cardId", FieldType::Str), ("amount", FieldType::Float)]).unwrap()
}

fn ts(i: usize, late: i64) -> Timestamp {
    Timestamp::from_millis(10_000 + i as i64 * 50 - late)
}

fn values(card: u8, amount: u32) -> Vec<Value> {
    vec![
        Value::Str(format!("card-{card}")),
        Value::Float(f64::from(amount)),
    ]
}

fn fresh_cluster(tag: &str, batch: BatchPolicy) -> Cluster {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut cfg = ClusterConfig {
        nodes: 1,
        units_per_node: 2,
        partitions: 4,
        ..ClusterConfig::default()
    };
    cfg.batch = batch;
    cfg.data_root = std::env::temp_dir().join(format!(
        "railgun-batche2e-{}-{tag}-{n}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&cfg.data_root).ok();
    let mut cluster = Cluster::new(cfg).unwrap();
    cluster.create_stream("payments", schema(), &["cardId"]).unwrap();
    cluster
        .register_query(
            "SELECT sum(amount), count(*) FROM payments GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
    cluster
}

/// Drive one cluster over `events`, either pipelined (all `send_async`
/// up front, so the front-end coalesces) or closed-loop (each event is a
/// synchronous `send` — a batch of one by construction). Returns every
/// reply in send order plus the processed-event count.
fn run(tag: &str, events: &[Drawn], threaded: bool, pipelined: bool) -> (Vec<SendOutcome>, u64) {
    let mut cluster = fresh_cluster(tag, BatchPolicy::default());
    if threaded {
        cluster.start().unwrap();
    }
    let mut out = Vec::with_capacity(events.len());
    if pipelined {
        let mut tickets = Vec::with_capacity(events.len());
        for (i, &(card, amount, late)) in events.iter().enumerate() {
            tickets.push(
                cluster
                    .send_async("payments", ts(i, late), values(card, amount))
                    .unwrap(),
            );
        }
        for t in tickets {
            out.push(cluster.collect(t).unwrap());
        }
    } else {
        for (i, &(card, amount, late)) in events.iter().enumerate() {
            out.push(
                cluster
                    .send("payments", ts(i, late), values(card, amount))
                    .unwrap(),
            );
        }
    }
    if threaded {
        cluster.stop().unwrap();
    }
    (out, cluster.metrics_snapshot().tasks.events_processed)
}

fn assert_identical(events: &[Drawn], threaded: bool, tag: &str) {
    let (pipelined, processed_p) = run(&format!("{tag}-pipe"), events, threaded, true);
    let (closed_loop, processed_c) = run(&format!("{tag}-seq"), events, threaded, false);
    prop_assert_eq!(pipelined, closed_loop);
    prop_assert_eq!(processed_p, processed_c);
    prop_assert_eq!(processed_p, events.len() as u64);
}

fn arb_events(max: usize) -> impl Strategy<Value = Vec<Drawn>> {
    proptest::collection::vec((0u8..5, 0u32..1_000, 0i64..300), 1..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Pump mode: pipelined (coalesced) ingest replies are identical to
    /// closed-loop ingest over out-of-order, multi-entity streams.
    #[test]
    fn pipelined_matches_closed_loop_pump_mode(events in arb_events(48)) {
        assert_identical(&events, false, "pump");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Threaded mode: same identity with the units on worker threads —
    /// per-partition log order is the send order, so replies must not
    /// depend on how the front-end or the workers happened to batch.
    #[test]
    fn pipelined_matches_closed_loop_threaded(events in arb_events(32)) {
        assert_identical(&events, true, "thr");
    }
}

/// An empty stage is a no-op: pumping a freshly-built cluster flushes
/// nothing, records nothing, and leaves the cluster fully usable.
#[test]
fn empty_stage_pump_is_a_noop() {
    let mut cluster = fresh_cluster("empty", BatchPolicy::default());
    for _ in 0..3 {
        cluster.pump().unwrap();
    }
    let snap = cluster.metrics_snapshot();
    assert_eq!(snap.batching.batch_size.count(), 0);
    assert_eq!(snap.batching.frontend_batched_events, 0);
    let out = cluster
        .send("payments", ts(0, 0), values(1, 10))
        .unwrap();
    assert!(!out.aggregations.is_empty());
}

/// Closed-loop traffic degenerates to batches of one: the flush-when-
/// nothing-is-downstream rule publishes every send immediately, so no
/// event ever waits out `max_delay` and the batched-event counters stay
/// at zero.
#[test]
fn closed_loop_sends_are_batches_of_one() {
    let mut cluster = fresh_cluster("bof1", BatchPolicy::default());
    for i in 0..20 {
        cluster
            .send("payments", ts(i, 0), values((i % 3) as u8, 5))
            .unwrap();
    }
    let snap = cluster.metrics_snapshot();
    assert_eq!(snap.batching.frontend_batched_events, 0);
    assert_eq!(snap.batching.batch_size.max(), 1);
}

/// The `max_delay` flush trigger: with a huge `max_events`, a stage that
/// has aged past the deadline is flushed by the next send — the whole
/// accumulated batch goes out at once, visible in the batch-size
/// histogram before any pump runs.
#[test]
fn stale_stage_is_flushed_on_max_delay() {
    let mut cluster = fresh_cluster(
        "delay",
        BatchPolicy {
            max_events: 10_000,
            max_delay: Duration::from_millis(1),
        },
    );
    let mut tickets = Vec::new();
    // First send flushes immediately (nothing is in flight); the next
    // nine stage.
    for i in 0..10 {
        tickets.push(
            cluster
                .send_async("payments", ts(i, 0), values((i % 4) as u8, 7))
                .unwrap(),
        );
    }
    std::thread::sleep(Duration::from_millis(10));
    // The stage is now older than `max_delay`: this send joins it and
    // triggers the delay flush — ten events in one batch.
    tickets.push(
        cluster
            .send_async("payments", ts(10, 0), values(0, 7))
            .unwrap(),
    );
    let snap = cluster.metrics_snapshot();
    assert_eq!(snap.batching.frontend_batched_events, 10);
    assert_eq!(snap.batching.batch_size.max(), 10);
    for t in tickets {
        let out = cluster.collect(t).unwrap();
        assert!(!out.aggregations.is_empty());
    }
}
