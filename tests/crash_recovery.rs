//! Crash recovery at the task/cluster seam: a unit restored from the
//! checkpoint topic must produce aggregates **byte-identical** to an
//! uninterrupted run, and a corrupt or partial checkpoint must degrade
//! gracefully to full-replay recovery — never wedge the node, never
//! silently open as an empty store.
//!
//! The store-level half of this contract (no acked write lost at any
//! crash point) lives in `railgun-store`'s crash-torture sweep; these
//! tests cover the layer above: [`TaskProcessor::restore_or_replay`]
//! validating checkpoint images before trusting them.

use railgun::engine::api::{decode_checkpoint, CHECKPOINT_TOPIC};
use railgun::engine::{
    parse_query, AggregationResult, Cluster, ClusterConfig, RestoreOutcome, TaskConfig,
    TaskProcessor,
};
use railgun::messaging::{Consumer, TopicPartition};
use railgun::types::{Counter, Event, EventId, FieldType, Schema, Timestamp, Value};

fn tmp(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("railgun-crashrec-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn schema() -> Schema {
    Schema::from_pairs(&[("cardId", FieldType::Str), ("amount", FieldType::Float)]).unwrap()
}

fn event(i: u64) -> Event {
    Event::new(
        EventId(i),
        Timestamp::from_millis(i as i64 * 1_000),
        vec![Value::from("card-1"), Value::from(2.0)],
    )
}

/// Config with an observable fallback counter.
fn config_with_counter() -> (TaskConfig, Counter) {
    let counter = Counter::enabled();
    let config = TaskConfig {
        checkpoint_fallbacks: counter.clone(),
        ..TaskConfig::default()
    };
    (config, counter)
}

/// A source processor with `total` events processed and a checkpoint
/// taken after `ckpt_at` of them; returns the checkpoint dir and the
/// reply of the final event (the aggregates a recovered unit must
/// reproduce exactly).
fn source_run(tag: &str, ckpt_at: u64, total: u64) -> (std::path::PathBuf, Vec<AggregationResult>) {
    let q = parse_query(
        "SELECT sum(amount), count(*) FROM payments GROUP BY cardId OVER sliding 1 hours",
    )
    .unwrap();
    let mut source = TaskProcessor::open(
        &tmp(&format!("{tag}-src")),
        "payments--cardId",
        0,
        schema(),
        TaskConfig::default(),
    )
    .unwrap();
    source.register_query(&q).unwrap();
    for i in 0..ckpt_at {
        source.process_event(&event(i)).unwrap();
    }
    let ckpt = tmp(&format!("{tag}-ckpt"));
    source.checkpoint(&ckpt).unwrap();
    let mut last = Vec::new();
    for i in ckpt_at..total {
        let (r, _) = source.process_event(&event(i)).unwrap();
        last = r;
    }
    (ckpt, last)
}

/// Restore via `restore_or_replay` and replay `replay_from..total`,
/// returning the outcome, the final reply, and the fallback count.
/// `replay_from` models the messaging layer: the checkpointed offset on
/// a clean restore, offset 0 on fallback.
fn recover(
    tag: &str,
    ckpt: &std::path::Path,
    replay_from: u64,
    total: u64,
) -> (RestoreOutcome, Vec<AggregationResult>, u64) {
    let (config, fallbacks) = config_with_counter();
    let (mut tp, outcome) = TaskProcessor::restore_or_replay(
        ckpt,
        &tmp(&format!("{tag}-recovered")),
        "payments--cardId",
        0,
        schema(),
        config,
    )
    .unwrap();
    let q = parse_query(
        "SELECT sum(amount), count(*) FROM payments GROUP BY cardId OVER sliding 1 hours",
    )
    .unwrap();
    tp.register_query(&q).unwrap();
    let mut last = Vec::new();
    for i in replay_from..total {
        let (r, _) = tp.process_event(&event(i)).unwrap();
        last = r;
    }
    (outcome, last, fallbacks.get())
}

#[test]
fn complete_checkpoint_restores_and_converges_byte_identically() {
    let (ckpt, last_source) = source_run("clean", 30, 40);
    let (outcome, last_recovered, fallbacks) = recover("clean", &ckpt, 30, 40);
    assert_eq!(outcome, RestoreOutcome::FromCheckpoint);
    assert_eq!(fallbacks, 0, "no fallback on a healthy checkpoint");
    assert_eq!(
        last_source, last_recovered,
        "checkpoint + replay must converge to identical aggregations"
    );
}

#[test]
fn partial_checkpoint_missing_marker_degrades_to_full_replay() {
    let (ckpt, last_source) = source_run("partial", 30, 40);
    // A crash during checkpoint creation freezes the image before the
    // `wal.log` completeness marker lands (the marker is written last).
    std::fs::remove_file(ckpt.join("store").join("wal.log")).unwrap();
    let (outcome, last_recovered, fallbacks) = recover("partial", &ckpt, 0, 40);
    assert_eq!(outcome, RestoreOutcome::FullReplay);
    assert_eq!(fallbacks, 1, "fallback must be counted");
    assert_eq!(
        last_source, last_recovered,
        "full replay must reproduce the uninterrupted aggregates"
    );
}

#[test]
fn corrupt_checkpoint_manifest_degrades_to_full_replay() {
    let (ckpt, last_source) = source_run("corrupt", 30, 40);
    // Marker intact, but the manifest is damaged after creation (bit
    // rot / torn sector): the image opens must fail its CRC, and the
    // restore must fall back rather than wedge or open empty.
    let manifest = ckpt.join("store").join("MANIFEST");
    let bytes = std::fs::read(&manifest).unwrap();
    std::fs::write(&manifest, &bytes[..bytes.len() / 2]).unwrap();
    let (outcome, last_recovered, fallbacks) = recover("corrupt", &ckpt, 0, 40);
    assert_eq!(outcome, RestoreOutcome::FullReplay);
    assert_eq!(fallbacks, 1);
    assert_eq!(last_source, last_recovered);
}

#[test]
fn missing_checkpoint_dir_degrades_to_full_replay() {
    let (ckpt, last_source) = source_run("missing", 30, 40);
    std::fs::remove_dir_all(&ckpt).unwrap();
    let (outcome, last_recovered, fallbacks) = recover("missing", &ckpt, 0, 40);
    assert_eq!(outcome, RestoreOutcome::FullReplay);
    assert_eq!(fallbacks, 1);
    assert_eq!(last_source, last_recovered);
}

/// Sketch-backed aggregators (HLL / topK / percentile) hold their state
/// in an in-memory cache that is flushed to the aux CF at checkpoints.
/// Both recovery arms must converge to the uninterrupted run's
/// estimates: a clean restore continues from the flushed blobs, and a
/// damaged checkpoint degrades to full replay whose deterministic
/// kernels rebuild the exact same sketches.
#[test]
fn sketch_state_survives_checkpoint_and_full_replay() {
    const QUERY: &str = "SELECT countDistinct(amount) approx 0.02, topK(amount, 3), \
                         percentile(amount, 95) FROM payments GROUP BY cardId OVER sliding 1 hours";
    let sketch_event = |i: u64| {
        Event::new(
            EventId(i),
            Timestamp::from_millis(i as i64 * 1_000),
            vec![
                Value::from(format!("card-{}", i % 3)),
                Value::from((i * i % 97) as f64),
            ],
        )
    };
    let (ckpt_at, total) = (30u64, 48u64);

    // Uninterrupted run, checkpointing mid-stream.
    let q = parse_query(QUERY).unwrap();
    let mut source = TaskProcessor::open(
        &tmp("sketch-src"),
        "payments--cardId",
        0,
        schema(),
        TaskConfig::default(),
    )
    .unwrap();
    source.register_query(&q).unwrap();
    for i in 0..ckpt_at {
        source.process_event(&sketch_event(i)).unwrap();
    }
    let ckpt = tmp("sketch-ckpt");
    source.checkpoint(&ckpt).unwrap();
    let mut last_source = Vec::new();
    for i in ckpt_at..total {
        let (r, _) = source.process_event(&sketch_event(i)).unwrap();
        last_source = r;
    }

    // Arm 1: clean restore from the checkpoint + replay of the suffix.
    let (config, fallbacks) = config_with_counter();
    let (mut tp, outcome) = TaskProcessor::restore_or_replay(
        &ckpt,
        &tmp("sketch-restored"),
        "payments--cardId",
        0,
        schema(),
        config,
    )
    .unwrap();
    assert_eq!(outcome, RestoreOutcome::FromCheckpoint);
    assert_eq!(fallbacks.get(), 0);
    tp.register_query(&q).unwrap();
    let mut last_restored = Vec::new();
    for i in ckpt_at..total {
        let (r, _) = tp.process_event(&sketch_event(i)).unwrap();
        last_restored = r;
    }
    assert_eq!(
        last_source, last_restored,
        "restored sketches must continue to the same estimates"
    );

    // Arm 2: the checkpoint is damaged (no completeness marker), so
    // recovery degrades to a full replay from offset zero.
    std::fs::remove_file(ckpt.join("store").join("wal.log")).unwrap();
    let (config, fallbacks) = config_with_counter();
    let (mut tp, outcome) = TaskProcessor::restore_or_replay(
        &ckpt,
        &tmp("sketch-replayed"),
        "payments--cardId",
        0,
        schema(),
        config,
    )
    .unwrap();
    assert_eq!(outcome, RestoreOutcome::FullReplay);
    assert_eq!(fallbacks.get(), 1);
    tp.register_query(&q).unwrap();
    let mut last_replayed = Vec::new();
    for i in 0..total {
        let (r, _) = tp.process_event(&sketch_event(i)).unwrap();
        last_replayed = r;
    }
    assert_eq!(
        last_source, last_replayed,
        "deterministic kernels must rebuild identical estimates on full replay"
    );
}

/// End-to-end through the cluster: the checkpoint topic's records point
/// at images that `restore_or_replay` accepts as complete — the recovery
/// path a rebalanced unit would take.
#[test]
fn cluster_published_checkpoints_pass_restore_validation() {
    let mut cfg = ClusterConfig::single_node();
    cfg.data_root = tmp("cluster-data");
    cfg.checkpoint_every = 5;
    let mut cluster = Cluster::new(cfg).unwrap();
    cluster.create_stream("payments", schema(), &["cardId"]).unwrap();
    cluster
        .register_query("SELECT count(*) FROM payments GROUP BY cardId OVER sliding 5 minutes")
        .unwrap();
    for i in 0..12 {
        cluster
            .send(
                "payments",
                Timestamp::from_millis(i * 1_000),
                vec![Value::from("card-1"), Value::from(1.0)],
            )
            .unwrap();
    }
    cluster.settle().unwrap();
    let mut consumer = Consumer::new(cluster.bus().clone());
    consumer.assign(vec![TopicPartition::new(CHECKPOINT_TOPIC, 0)]);
    let records = consumer.poll(100).unwrap().messages;
    assert!(!records.is_empty(), "cluster must publish checkpoints");
    let rec = decode_checkpoint(records.last().unwrap().payload.as_ref()).unwrap();
    let (config, fallbacks) = config_with_counter();
    let (tp, outcome) = TaskProcessor::restore_or_replay(
        std::path::Path::new(&rec.path),
        &tmp("cluster-restore"),
        &rec.topic,
        rec.partition,
        schema(),
        config,
    )
    .unwrap();
    assert_eq!(outcome, RestoreOutcome::FromCheckpoint);
    assert_eq!(fallbacks.get(), 0);
    assert!(rec.next_offset >= 5, "offset covers checkpointed events");
    drop(tp);
    // A clean cluster run reports an all-zero recovery plane.
    let recovery = cluster.metrics_snapshot().recovery;
    assert_eq!(recovery.wal_truncated_bytes, 0);
    assert_eq!(recovery.orphaned_sstables_quarantined, 0);
    assert_eq!(recovery.checkpoint_fallbacks, 0);
}
