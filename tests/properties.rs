//! Property-based tests (proptest) over the core data structures and the
//! cross-crate invariants they must uphold.

use proptest::prelude::*;

use railgun::engine::agg::sketch::{hll::Hll, quantile::QuantSketch, topk::TopKSketch, PaneSketch};
use railgun::engine::agg::{AggContext, AggScratch, AggState};
use railgun::engine::api::{
    decode_op, decode_reply, encode_op, encode_reply, AggregationResult, OpRequest, QueryId,
    Reply, WIRE_VERSION,
};
use railgun::engine::keys::{decode_state_key, state_key};
use railgun::engine::lang::AggFunc;
use railgun::reservoir::{Codec, Reservoir, ReservoirConfig};
// Histogram moved from `railgun::sim` to `railgun::types` in PR 5 (the
// telemetry plane shares it); `railgun::sim::Histogram` remains an alias.
use railgun::store::{Db, DbOptions};
use railgun::types::{AtomicHistogram, Histogram};
use railgun::types::encode;
use railgun::types::{Event, EventId, FieldDef, FieldType, Schema, Timestamp, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-zA-Z0-9_-]{0,24}".prop_map(Value::Str),
    ]
}

fn arb_field_type() -> impl Strategy<Value = FieldType> {
    prop_oneof![
        Just(FieldType::Bool),
        Just(FieldType::Int),
        Just(FieldType::Float),
        Just(FieldType::Str),
    ]
}

fn arb_op() -> impl Strategy<Value = OpRequest> {
    prop_oneof![
        (
            "[a-zA-Z][a-zA-Z0-9_]{0,12}",
            proptest::collection::vec(arb_field_type(), 1..6),
            proptest::collection::vec("[a-z]{1,8}", 1..4),
            1u32..64,
        )
            .prop_map(|(stream, types, partitioners, partitions)| {
                // Unique field names by construction.
                let fields = types
                    .iter()
                    .enumerate()
                    .map(|(i, t)| FieldDef::new(format!("f{i}"), *t))
                    .collect();
                OpRequest::CreateStream {
                    stream,
                    schema: Schema::new(fields).expect("unique names"),
                    partitioners,
                    partitions,
                }
            }),
        "[a-z]{1,12}".prop_map(|stream| OpRequest::DeleteStream { stream }),
        (any::<u64>(), "[a-zA-Z0-9_() *,>=<.-]{0,64}").prop_map(|(id, query_text)| {
            OpRequest::RegisterQuery {
                id: QueryId(id),
                query_text,
            }
        }),
        any::<u64>().prop_map(|id| OpRequest::UnregisterQuery { id: QueryId(id) }),
    ]
}

fn arb_agg_result() -> impl Strategy<Value = AggregationResult> {
    (
        any::<u64>(),
        0u32..8,
        "[a-zA-Z0-9_() ]{0,24}",
        proptest::collection::vec(arb_value(), 0..3),
        arb_value(),
    )
        .prop_map(|(query, index, name, entity, value)| AggregationResult {
            query: QueryId(query),
            index,
            name,
            entity,
            value,
        })
}

fn arb_reply() -> impl Strategy<Value = Reply> {
    (
        any::<u64>(),
        "[a-z-]{1,16}",
        any::<bool>(),
        proptest::collection::vec(arb_agg_result(), 0..5),
    )
        .prop_map(|(request_id, source_topic, duplicate, results)| Reply {
            request_id,
            source_topic,
            duplicate,
            results,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn varints_roundtrip(v in any::<u64>(), s in any::<i64>()) {
        let mut buf = Vec::new();
        encode::put_uvarint(&mut buf, v);
        encode::put_ivarint(&mut buf, s);
        let mut cur = &buf[..];
        prop_assert_eq!(encode::get_uvarint(&mut cur).unwrap(), v);
        prop_assert_eq!(encode::get_ivarint(&mut cur).unwrap(), s);
        prop_assert!(cur.is_empty());
    }

    #[test]
    fn values_roundtrip(v in arb_value()) {
        let mut buf = Vec::new();
        encode::put_value(&mut buf, &v);
        let got = encode::get_value(&mut &buf[..]).unwrap();
        // NaN-aware comparison.
        prop_assert!(v.key_eq(&got) || (v.is_null() && got.is_null()));
    }

    #[test]
    fn compression_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let packed = Codec::RailZ.compress(&data);
        let back = Codec::RailZ.decompress(&packed, data.len()).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn compression_roundtrips_repetitive(
        unit in proptest::collection::vec(any::<u8>(), 1..32),
        reps in 1usize..200,
    ) {
        let data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        let packed = Codec::RailZ.compress(&data);
        let back = Codec::RailZ.decompress(&packed, data.len()).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn state_keys_roundtrip(
        leaf in 0u32..10_000,
        bucket in proptest::option::of(-1_000_000_000i64..1_000_000_000),
        entity in proptest::collection::vec(arb_value(), 0..4),
    ) {
        let key = state_key(leaf, bucket.map(Timestamp::from_millis), &entity);
        let (l, b, e) = decode_state_key(&key).unwrap();
        prop_assert_eq!(l, leaf);
        prop_assert_eq!(b, bucket.map(Timestamp::from_millis));
        prop_assert_eq!(e.len(), entity.len());
        for (x, y) in e.iter().zip(&entity) {
            prop_assert!(x.key_eq(y) || (x.is_null() && y.is_null()));
        }
    }

    #[test]
    fn state_keys_injective_on_leaf_and_entity(
        l1 in 0u32..1000, l2 in 0u32..1000,
        e1 in "[a-z]{1,8}", e2 in "[a-z]{1,8}",
    ) {
        let k1 = state_key(l1, None, &[Value::Str(e1.clone())]);
        let k2 = state_key(l2, None, &[Value::Str(e2.clone())]);
        prop_assert_eq!(k1 == k2, l1 == l2 && e1 == e2);
    }

    /// Every `OpRequest` variant — including the v2 lifecycle ops
    /// `RegisterQuery { id, .. }` and `UnregisterQuery` — survives its
    /// wire encoding byte-exactly.
    #[test]
    fn op_requests_roundtrip(op in arb_op()) {
        let buf = encode_op(&op);
        prop_assert_eq!(buf[0], WIRE_VERSION, "version byte leads the op");
        prop_assert_eq!(decode_op(&buf).unwrap(), op);
    }

    /// Replies with keyed aggregation results roundtrip, and the keys
    /// (`QueryId`, index) survive exactly.
    #[test]
    fn replies_roundtrip(reply in arb_reply()) {
        let buf = encode_reply(&reply);
        prop_assert_eq!(buf[0], WIRE_VERSION, "version byte leads the reply");
        let decoded = decode_reply(&buf).unwrap();
        prop_assert_eq!(decoded, reply);
    }

    /// Any payload led by a non-current version byte is rejected with a
    /// decode error — old v1 payloads (which began with the op tag) can
    /// never be silently misparsed.
    #[test]
    fn bad_version_byte_is_a_decode_error(
        v in any::<u8>(),
        tail in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        prop_assume!(v != WIRE_VERSION);
        let mut buf = vec![v];
        buf.extend_from_slice(&tail);
        let op_err = decode_op(&buf).unwrap_err();
        prop_assert!(op_err.to_string().contains("wire version"), "{}", op_err);
        let reply_err = decode_reply(&buf).unwrap_err();
        prop_assert!(reply_err.to_string().contains("wire version"), "{}", reply_err);
    }

    #[test]
    fn histogram_percentiles_bounded_error(
        mut values in proptest::collection::vec(1u64..10_000_000, 10..500),
        q in 0.01f64..0.999,
    ) {
        let mut h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let exact = values[(((values.len() as f64) * q).ceil() as usize - 1).min(values.len()-1)];
        let approx = h.percentile(q);
        // Log-bucketed: bounded relative error (plus rank-rounding slack of
        // one element in either direction).
        let lo = values.iter().rev().find(|&&v| v <= exact).copied().unwrap_or(exact);
        let _ = lo;
        let rel = (approx as f64 - exact as f64).abs() / exact as f64;
        prop_assert!(rel < 0.05 || {
            // allow one-rank slack
            let pos = values.iter().position(|&v| v == exact).unwrap();
            let lo = values.get(pos.saturating_sub(1)).copied().unwrap_or(exact);
            let hi = values.get(pos + 1).copied().unwrap_or(exact);
            approx as f64 >= lo as f64 * 0.95 && approx as f64 <= hi as f64 * 1.05
        }, "q={} exact={} approx={}", q, exact, approx);
    }

    /// The documented ~1% relative-error bound, isolated from rank
    /// rounding: the bulk of the mass sits at `value` with a single far
    /// outlier above it (so min/max clamping cannot mask bucket error),
    /// and every percentile below the outlier's rank must resolve to
    /// `value`'s bucket — whose representative sits within 1% of it (the
    /// default layout's 128 sub-buckets per octave give ≤ 0.8%). Pins
    /// the bound across the move to `railgun-types`.
    #[test]
    fn histogram_percentile_within_one_percent_of_bucket(
        value in 128u64..1_000_000_000,
        n in 100u64..2_000,
        outlier_factor in 4u64..1000,
        q in 0.01f64..0.98,
    ) {
        let mut h = Histogram::default();
        h.record_n(value, n);
        h.record(value.saturating_mul(outlier_factor));
        let approx = h.percentile(q) as f64;
        let rel = (approx - value as f64).abs() / value as f64;
        prop_assert!(rel <= 0.01, "value={} q={} approx={} rel={}", value, q, approx, rel);
    }

    /// The telemetry plane's lock-free `AtomicHistogram` snapshots to a
    /// plain `Histogram` that is indistinguishable from recording the
    /// same values directly.
    #[test]
    fn atomic_histogram_snapshot_matches_plain(
        values in proptest::collection::vec(0u64..10_000_000_000, 1..300),
    ) {
        let atomic = AtomicHistogram::default();
        let mut plain = Histogram::default();
        for &v in &values {
            atomic.record(v);
            plain.record(v);
        }
        let snap = atomic.snapshot();
        prop_assert_eq!(snap.count(), plain.count());
        prop_assert_eq!(snap.min(), plain.min());
        prop_assert_eq!(snap.max(), plain.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(snap.percentile(q), plain.percentile(q), "q={}", q);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental aggregators agree with a naive recompute over any
    /// windowed insert/evict pattern (sum/count/avg/min/max/stdDev).
    #[test]
    fn aggregators_match_naive_model(
        values in proptest::collection::vec(-1000i64..1000, 1..120),
        window in 1usize..40,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "railgun-prop-agg-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        let aux = db.create_cf("aux").unwrap();
        let scratch = AggScratch::default();
        let ctx = AggContext::new(&db, aux, b"k", &scratch);
        let mut sum = AggState::new(AggFunc::Sum);
        let mut count = AggState::new(AggFunc::Count);
        let mut avg = AggState::new(AggFunc::Avg);
        let mut min = AggState::new(AggFunc::Min);
        let mut max = AggState::new(AggFunc::Max);
        let mut sd = AggState::new(AggFunc::StdDev);
        for i in 0..values.len() {
            let v = Value::Float(values[i] as f64);
            for s in [&mut sum, &mut count, &mut avg, &mut min, &mut max, &mut sd] {
                s.insert(Some(&v), &ctx).unwrap();
            }
            if i >= window {
                let old = Value::Float(values[i - window] as f64);
                for s in [&mut sum, &mut count, &mut avg, &mut min, &mut max, &mut sd] {
                    s.evict(Some(&old), &ctx).unwrap();
                }
            }
            // Naive model over the current window.
            let start = i.saturating_sub(window - 1);
            let win: Vec<f64> = values[start..=i].iter().map(|&x| x as f64).collect();
            let nsum: f64 = win.iter().sum();
            prop_assert!((sum.value().as_f64().unwrap() - nsum).abs() < 1e-6);
            prop_assert_eq!(count.value().as_i64().unwrap(), win.len() as i64);
            prop_assert!((avg.value().as_f64().unwrap() - nsum / win.len() as f64).abs() < 1e-6);
            let nmin = win.iter().copied().fold(f64::INFINITY, f64::min);
            let nmax = win.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(min.value().as_f64().unwrap(), nmin);
            prop_assert_eq!(max.value().as_f64().unwrap(), nmax);
            if win.len() >= 2 {
                let mean = nsum / win.len() as f64;
                let var = win.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                    / (win.len() - 1) as f64;
                prop_assert!(
                    (sd.value().as_f64().unwrap() - var.sqrt()).abs() < 1e-5,
                    "stddev drift"
                );
            }
        }
    }

    /// The reservoir yields every in-order appended event exactly once,
    /// in timestamp order, for any chunk-size configuration.
    #[test]
    fn reservoir_yields_each_event_once(
        deltas in proptest::collection::vec(0i64..500, 1..300),
        chunk_events in 2usize..64,
        advance_step in 1i64..2000,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "railgun-prop-res-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let schema = Schema::from_pairs(&[("x", FieldType::Int)]).unwrap();
        let cfg = ReservoirConfig {
            chunk_target_events: chunk_events,
            cache_capacity_chunks: 3,
            ..ReservoirConfig::default()
        };
        let res = Reservoir::open(&dir, schema, cfg).unwrap();
        let cursor = res.cursor_at_start();
        let mut ts = 0i64;
        let mut yielded: Vec<u64> = Vec::new();
        let mut max_ts = 0i64;
        for (i, d) in deltas.iter().enumerate() {
            ts += d;
            max_ts = ts;
            res.append(Event::new(
                EventId(i as u64),
                Timestamp::from_millis(ts),
                vec![Value::Int(i as i64)],
            ))
            .unwrap();
            // Interleave partial advances.
            if i % 7 == 3 {
                for e in cursor.advance_upto(Timestamp::from_millis(ts - advance_step)) {
                    yielded.push(e.id.0);
                }
            }
        }
        for e in cursor.advance_upto(Timestamp::from_millis(max_ts + 1)) {
            yielded.push(e.id.0);
        }
        // Every event exactly once.
        let mut sorted = yielded.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), yielded.len(), "no duplicates");
        prop_assert_eq!(yielded.len(), deltas.len(), "every event yielded");
    }

    /// The LSM store behaves like a BTreeMap under any operation sequence,
    /// including across flush/compaction/restart.
    #[test]
    fn store_matches_map_model(
        ops in proptest::collection::vec(
            (0u8..3, 0u16..64, proptest::collection::vec(any::<u8>(), 0..24)),
            1..200
        ),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "railgun-prop-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let mut model = std::collections::BTreeMap::new();
        {
            let db = Db::open(&dir, DbOptions {
                memtable_budget_bytes: 512, // force frequent flushes
                compaction_trigger: 3,
                ..DbOptions::default()
            }).unwrap();
            for (op, key, value) in &ops {
                let key = format!("k{key:04}").into_bytes();
                match op {
                    0 => {
                        db.put(Db::DEFAULT_CF, &key, value).unwrap();
                        model.insert(key, value.clone());
                    }
                    1 => {
                        db.delete(Db::DEFAULT_CF, &key).unwrap();
                        model.remove(&key);
                    }
                    _ => {
                        prop_assert_eq!(
                            db.get(Db::DEFAULT_CF, &key).unwrap(),
                            model.get(&key).cloned()
                        );
                    }
                }
            }
            // Full scan agrees with the model.
            let scanned = db.scan(Db::DEFAULT_CF, b"", None).unwrap();
            let expect: Vec<(Vec<u8>, Vec<u8>)> =
                model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            prop_assert_eq!(scanned, expect);
        }
        // Restart (WAL replay + manifest load) preserves everything.
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        for (k, v) in &model {
            prop_assert_eq!(db.get(Db::DEFAULT_CF, k).unwrap(), Some(v.clone()));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// HLL merge is associative and commutative: any grouping or order of
    /// partial sketches over the same streams yields identical registers
    /// (register-wise max), and hence identical bytes.
    #[test]
    fn hll_merge_is_associative_and_commutative(
        a in proptest::collection::vec(any::<u64>(), 0..400),
        b in proptest::collection::vec(any::<u64>(), 0..400),
        c in proptest::collection::vec(any::<u64>(), 0..400),
    ) {
        use railgun::engine::agg::sketch::finalize;
        let build = |xs: &[u64]| {
            let mut s = Hll::new(12);
            for &x in xs {
                s.insert_hash(finalize(x));
            }
            s
        };
        let (sa, sb, sc) = (build(&a), build(&b), build(&c));
        // (a ∪ b) ∪ c ...
        let mut left = sa.clone();
        left.merge_from(&sb);
        left.merge_from(&sc);
        // ... versus (c ∪ b) ∪ a.
        let mut right = sc.clone();
        right.merge_from(&sb);
        right.merge_from(&sa);
        let mut lb = Vec::new();
        left.encode(&mut lb);
        let mut rb = Vec::new();
        right.encode(&mut rb);
        prop_assert_eq!(lb, rb, "merge order must not change the registers");
        prop_assert_eq!(left.estimate(), right.estimate());
    }

    /// The HLL estimate stays within 4σ of the true distinct count for
    /// any input multiset (σ = 1.04/√m; the committed bench pins the
    /// configured 2σ bound on a deterministic stream).
    #[test]
    fn hll_estimate_tracks_exact_model(
        xs in proptest::collection::vec(0u64..5000, 1..2000),
    ) {
        use railgun::engine::agg::sketch::finalize;
        let mut s = Hll::new(12);
        let mut exact = std::collections::HashSet::new();
        for &x in &xs {
            s.insert_hash(finalize(x));
            exact.insert(x);
        }
        let sigma = 1.04 / f64::from(1u32 << 12).sqrt();
        let n = exact.len() as f64;
        let err = (s.estimate() as f64 - n).abs() / n;
        prop_assert!(err <= 4.0 * sigma, "relative error {err} above 4σ = {}", 4.0 * sigma);
    }

    /// All three sketch kernels roundtrip byte-identically through their
    /// wire encodings for any input stream (encode → decode → encode).
    #[test]
    fn sketch_kernels_roundtrip_byte_identically(
        xs in proptest::collection::vec(-10_000i64..10_000, 0..600),
    ) {
        use railgun::engine::agg::sketch::finalize;
        let mut h = Hll::new(10);
        let mut t = TopKSketch::new(5);
        let mut q = QuantSketch::default();
        for &x in &xs {
            let hash = finalize(x as u64);
            h.insert_hash(hash);
            t.insert(&Value::Int(x), hash);
            q.insert(x as f64);
        }
        let mut hb = Vec::new();
        h.encode(&mut hb);
        let mut hb2 = Vec::new();
        Hll::decode(&mut hb.as_slice()).unwrap().encode(&mut hb2);
        prop_assert_eq!(hb, hb2, "hll");
        let mut tb = Vec::new();
        t.encode(&mut tb);
        let mut tb2 = Vec::new();
        TopKSketch::decode(&mut tb.as_slice()).unwrap().encode(&mut tb2);
        prop_assert_eq!(tb, tb2, "topk");
        let mut qb = Vec::new();
        q.encode(&mut qb);
        let mut qb2 = Vec::new();
        QuantSketch::decode(&mut qb.as_slice()).unwrap().encode(&mut qb2);
        prop_assert_eq!(qb, qb2, "quantile");
    }
}
