//! §4.1.3 / §4.2: synchronized checkpoints, the checkpoint topic, and
//! checkpoint-based task recovery.

use railgun::engine::api::{decode_checkpoint, CHECKPOINT_TOPIC};
use railgun::engine::{parse_query, Cluster, ClusterConfig, TaskConfig, TaskProcessor};
use railgun::messaging::{Consumer, TopicPartition};
use railgun::types::{Event, EventId, FieldType, Schema, Timestamp, Value};

fn tmp(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("railgun-ckpt-it-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn schema() -> Schema {
    Schema::from_pairs(&[("cardId", FieldType::Str), ("amount", FieldType::Float)]).unwrap()
}

#[test]
fn units_publish_checkpoint_records() {
    let mut cfg = ClusterConfig::single_node();
    cfg.data_root = tmp("publish");
    cfg.checkpoint_every = 5;
    let mut cluster = Cluster::new(cfg).unwrap();
    cluster.create_stream("payments", schema(), &["cardId"]).unwrap();
    cluster
        .register_query("SELECT count(*) FROM payments GROUP BY cardId OVER sliding 5 minutes")
        .unwrap();
    for i in 0..12 {
        cluster
            .send(
                "payments",
                Timestamp::from_millis(i * 1_000),
                vec![Value::from("card-1"), Value::from(1.0)],
            )
            .unwrap();
    }
    cluster.settle().unwrap();
    // Read the checkpoint topic directly.
    let mut consumer = Consumer::new(cluster.bus().clone());
    consumer.assign(vec![TopicPartition::new(CHECKPOINT_TOPIC, 0)]);
    let records = consumer.poll(100).unwrap().messages;
    assert!(
        !records.is_empty(),
        "checkpoints must be published every 5 events"
    );
    let rec = decode_checkpoint(&records[0].payload).unwrap();
    assert_eq!(rec.topic, "payments--cardId");
    assert!(rec.next_offset >= 5, "offset covers checkpointed events");
    // The checkpoint directory is a valid task processor image.
    let restored = TaskProcessor::restore_from_checkpoint(
        std::path::Path::new(&rec.path),
        &tmp("restore-target"),
        &rec.topic,
        rec.partition,
        schema(),
        TaskConfig::default(),
    );
    assert!(restored.is_ok(), "checkpoint restores: {:?}", restored.err());
}

#[test]
fn restored_processor_continues_from_checkpoint_plus_replay() {
    // Build a processor, checkpoint mid-stream, replay the tail into a
    // restored copy, and verify both agree — the §4.2 recovery flow.
    let dir = tmp("source");
    let q = parse_query("SELECT sum(amount), count(*) FROM payments GROUP BY cardId OVER sliding 1 hours")
        .unwrap();
    let mut source =
        TaskProcessor::open(&dir, "payments--cardId", 0, schema(), TaskConfig::default()).unwrap();
    source.register_query(&q).unwrap();
    let event = |i: u64| {
        Event::new(
            EventId(i),
            Timestamp::from_millis(i as i64 * 1_000),
            vec![Value::from("card-1"), Value::from(2.0)],
        )
    };
    for i in 0..30 {
        source.process_event(&event(i)).unwrap();
    }
    let ckpt = tmp("image");
    source.checkpoint(&ckpt).unwrap();
    // Source continues with 10 more events.
    let mut last_source = Vec::new();
    for i in 30..40 {
        let (r, _) = source.process_event(&event(i)).unwrap();
        last_source = r;
    }
    // Restore from the checkpoint and replay events 30.. (the messaging
    // layer would supply these from the checkpointed offset).
    let mut restored = TaskProcessor::restore_from_checkpoint(
        &ckpt,
        &tmp("recovered"),
        "payments--cardId",
        0,
        schema(),
        TaskConfig::default(),
    )
    .unwrap();
    restored.register_query(&q).unwrap();
    let mut last_restored = Vec::new();
    for i in 30..40 {
        let (r, _) = restored.process_event(&event(i)).unwrap();
        last_restored = r;
    }
    assert_eq!(
        last_source, last_restored,
        "checkpoint + replay must converge to identical aggregations"
    );
}

#[test]
fn replayed_duplicates_after_checkpoint_are_tolerated() {
    // At-least-once: replay may overlap events still in the reservoir's
    // in-memory chunks; dedup absorbs them.
    let dir = tmp("dedup");
    let q = parse_query("SELECT count(*) FROM payments GROUP BY cardId OVER sliding 1 hours").unwrap();
    let mut tp =
        TaskProcessor::open(&dir, "payments--cardId", 0, schema(), TaskConfig::default()).unwrap();
    tp.register_query(&q).unwrap();
    for i in 0..10u64 {
        tp.process_event(&Event::new(
            EventId(i),
            Timestamp::from_millis(i as i64 * 100),
            vec![Value::from("c"), Value::from(1.0)],
        ))
        .unwrap();
    }
    // Replay the last 5 events (same ids).
    let mut final_count = Value::Null;
    for i in 5..10u64 {
        let (r, dup) = tp
            .process_event(&Event::new(
                EventId(i),
                Timestamp::from_millis(i as i64 * 100),
                vec![Value::from("c"), Value::from(1.0)],
            ))
            .unwrap();
        assert!(dup, "replayed event {i} must be flagged duplicate");
        final_count = r[0].value.clone();
    }
    assert_eq!(final_count, Value::Int(10), "no double counting");
}
