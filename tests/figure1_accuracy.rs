//! Figure 1 / §2.1, end to end: real-time sliding windows are accurate
//! event-by-event; hopping windows structurally miss the pattern; the
//! rescan baseline is accurate but pays quadratic work.

use railgun::baseline::{HoppingConfig, HoppingEngine, RescanConfig, RescanEngine};
use railgun::engine::lang::AggFunc;
use railgun::engine::{Cluster, ClusterConfig};
use railgun::store::DbOptions;
use railgun::types::{FieldType, Schema, TimeDelta, Timestamp, Value};

const MIN: f64 = 60_000.0;

/// Figure 1 geometry: five events spanning 4.8 minutes, placed so no
/// 1-minute-aligned 5-minute pane contains all of them.
fn figure1_timestamps() -> Vec<i64> {
    [1.4, 2.5, 3.5, 4.5, 6.2]
        .iter()
        .map(|m| (m * MIN) as i64)
        .collect()
}

fn tmp(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("railgun-fig1-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

#[test]
fn railgun_sliding_window_fires_the_rule() {
    let mut cfg = ClusterConfig::single_node();
    cfg.data_root = tmp("cluster");
    let mut cluster = Cluster::new(cfg).unwrap();
    let schema =
        Schema::from_pairs(&[("cardId", FieldType::Str), ("amount", FieldType::Float)]).unwrap();
    cluster.create_stream("payments", schema, &["cardId"]).unwrap();
    cluster
        .register_query("SELECT count(*) FROM payments GROUP BY cardId OVER sliding 5 minutes")
        .unwrap();
    let mut counts = Vec::new();
    for ts in figure1_timestamps() {
        let reply = cluster
            .send(
                "payments",
                Timestamp::from_millis(ts),
                vec![Value::from("card-X"), Value::from(100.0)],
            )
            .unwrap();
        counts.push(reply.aggregations[0].value.as_i64().unwrap());
    }
    assert_eq!(counts, vec![1, 2, 3, 4, 5], "exact per-event counts");
    assert!(counts.iter().any(|&c| c > 4), "the blocking rule fires");
}

#[test]
fn hopping_windows_never_see_five() {
    let mut engine = HoppingEngine::open(
        &tmp("hopping"),
        HoppingConfig {
            window: TimeDelta::from_minutes(5),
            hop: TimeDelta::from_minutes(1),
            aggs: vec![(AggFunc::Count, None)],
            store: DbOptions::default(),
        },
    )
    .unwrap();
    let mut max_count = 0i64;
    for ts in figure1_timestamps() {
        for em in engine
            .process(b"card-X", Timestamp::from_millis(ts), &[Value::from(100.0)])
            .unwrap()
        {
            if let Some(c) = em.values.first().and_then(Value::as_i64) {
                max_count = max_count.max(c);
            }
        }
    }
    // Flush all remaining panes.
    for em in engine
        .process(b"zz", Timestamp::from_millis(60 * 60_000), &[Value::from(0.0)])
        .unwrap()
    {
        if em.key == b"card-X" {
            if let Some(c) = em.values.first().and_then(Value::as_i64) {
                max_count = max_count.max(c);
            }
        }
    }
    assert_eq!(max_count, 4, "no pane ever counts all five events");
}

#[test]
fn rescan_baseline_is_accurate_but_quadratic() {
    let mut engine = RescanEngine::open(
        &tmp("rescan"),
        RescanConfig {
            window: TimeDelta::from_minutes(5),
            aggs: vec![(AggFunc::Count, None)],
            store: DbOptions::default(),
            cleanup_every: 0,
        },
    )
    .unwrap();
    let mut last = Vec::new();
    for ts in figure1_timestamps() {
        last = engine
            .process(b"card-X", Timestamp::from_millis(ts), &[Value::from(100.0)])
            .unwrap();
    }
    assert_eq!(last[0], Value::Int(5), "rescan is accurate");
    // 1+2+3+4+5 = 15 stored events visited — triangular growth.
    assert_eq!(engine.stats().events_scanned, 15);
}

#[test]
fn sliding_window_answers_match_rescan_on_random_stream() {
    // Two accurate implementations must agree everywhere.
    let mut cfg = ClusterConfig::single_node();
    cfg.data_root = tmp("agree");
    let mut cluster = Cluster::new(cfg).unwrap();
    let schema =
        Schema::from_pairs(&[("cardId", FieldType::Str), ("amount", FieldType::Float)]).unwrap();
    cluster.create_stream("payments", schema, &["cardId"]).unwrap();
    cluster
        .register_query(
            "SELECT count(*), sum(amount) FROM payments GROUP BY cardId OVER sliding 2 minutes",
        )
        .unwrap();
    let mut rescan = RescanEngine::open(
        &tmp("agree-rescan"),
        RescanConfig {
            window: TimeDelta::from_minutes(2),
            aggs: vec![(AggFunc::Count, None), (AggFunc::Sum, Some(0))],
            store: DbOptions::default(),
            cleanup_every: 0,
        },
    )
    .unwrap();

    let mut state = 0x5eedu64;
    let mut ts = 0i64;
    for _ in 0..200 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ts += (state % 9_000) as i64; // bursts and gaps
        let card = format!("card-{}", state % 5);
        let amount = ((state >> 8) % 1000) as f64 / 10.0;
        let reply = cluster
            .send(
                "payments",
                Timestamp::from_millis(ts),
                vec![Value::from(card.clone()), Value::from(amount)],
            )
            .unwrap();
        let expected = rescan
            .process(card.as_bytes(), Timestamp::from_millis(ts), &[Value::from(amount)])
            .unwrap();
        let got_count = reply.aggregations[0].value.as_i64().unwrap();
        let got_sum = reply.aggregations[1].value.as_f64().unwrap();
        assert_eq!(Value::Int(got_count), expected[0], "count at ts={ts}");
        let want_sum = expected[1].as_f64().unwrap();
        assert!(
            (got_sum - want_sum).abs() < 1e-6,
            "sum at ts={ts}: {got_sum} vs {want_sum}"
        );
    }
}
