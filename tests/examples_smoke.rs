//! Smoke test: every example must build and run to completion.
//!
//! Examples are living documentation — this keeps them from rotting
//! silently. Each one is executed via `cargo run --example` (the same
//! entry point a user would type); `cargo test` has already built the
//! example binaries by the time this test runs, so the nested cargo
//! invocations mostly just execute them.

use std::process::Command;

const EXAMPLES: &[&str] = &["quickstart", "plan_sharing", "fraud_rules", "cluster_failover"];

#[test]
fn every_example_runs_to_completion() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    for example in EXAMPLES {
        let output = Command::new(&cargo)
            .args(["run", "--quiet", "--example", example])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {example}: {e}"));
        assert!(
            output.status.success(),
            "example `{example}` exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}
