//! Quickstart: boot an in-process Railgun cluster, register the paper's
//! Example 1 queries, and stream a few payments through it.
//!
//! Run with: `cargo run --release --example quickstart`

use railgun::engine::{Cluster, ClusterConfig};
use railgun::types::{FieldType, Schema, Timestamp, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A single-node cluster: one front-end, one processor unit, and the
    // in-process messaging layer — Figure 3 of the paper in one process.
    let mut cluster = Cluster::new(ClusterConfig::single_node())?;

    // Register the `payments` stream. Partitioners become event topics:
    // every event is routed to one partition per partitioner, keyed by the
    // partitioner's value, so per-entity metrics stay accurate when the
    // cluster scales out.
    let schema = Schema::from_pairs(&[
        ("cardId", FieldType::Str),
        ("merchantId", FieldType::Str),
        ("amount", FieldType::Float),
    ])?;
    cluster.create_stream("payments", schema, &["cardId", "merchantId"])?;

    // Q1 and Q2 of the paper (Example 1): per-card sum/count and
    // per-merchant average, both over true real-time sliding windows.
    cluster.register_query(
        "SELECT sum(amount), count(*) FROM payments GROUP BY cardId OVER sliding 5 minutes",
    )?;
    cluster.register_query(
        "SELECT avg(amount) FROM payments GROUP BY merchantId OVER sliding 5 minutes",
    )?;

    // Stream events. Every reply carries the aggregations evaluated at
    // this exact event — accurate event-by-event, not at hop boundaries.
    let payments = [
        ("card-A", "shop-1", 25.0, 1_000),
        ("card-A", "shop-2", 40.0, 61_000),
        ("card-B", "shop-1", 15.0, 95_000),
        ("card-A", "shop-1", 10.0, 240_000),
        // 6.5 minutes in: card-A's first payment has left the window.
        ("card-A", "shop-2", 5.0, 390_000),
    ];
    for (card, merchant, amount, ts_ms) in payments {
        let reply = cluster.send(
            "payments",
            Timestamp::from_millis(ts_ms),
            vec![Value::from(card), Value::from(merchant), Value::from(amount)],
        )?;
        println!("t={:>6}ms {card} pays {amount:>5.2} at {merchant}", ts_ms);
        for agg in &reply.aggregations {
            println!("    {:<45} {:?} -> {}", agg.name, agg.entity, agg.value);
        }
    }
    Ok(())
}
