//! Quickstart: boot an in-process Railgun cluster behind the typed
//! [`Session`] facade, register the paper's Example 1 queries with the
//! programmatic query builder, and stream a few payments through it with
//! the schema-checked event builder.
//!
//! Run with: `cargo run --release --example quickstart`

use railgun::engine::lang::{mins, Agg, Query, Window};
use railgun::engine::{ClusterConfig, Session};
use railgun::types::{FieldType, Timestamp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A single-node cluster: one front-end, one processor unit, and the
    // in-process messaging layer — Figure 3 of the paper in one process.
    let mut session = Session::new(ClusterConfig::single_node())?;

    // Register the `payments` stream. Partitioners become event topics:
    // every event is routed to one partition per partitioner, keyed by the
    // partitioner's value, so per-entity metrics stay accurate when the
    // cluster scales out.
    let payments = session.create_stream(
        "payments",
        &[
            ("cardId", FieldType::Str),
            ("merchantId", FieldType::Str),
            ("amount", FieldType::Float),
        ],
        &["cardId", "merchantId"],
    )?;

    // Q1 and Q2 of the paper (Example 1), built programmatically: per-card
    // sum/count and per-merchant average, both over true real-time sliding
    // windows. The builder compiles to exactly the plan the text parser
    // would produce (the equivalence is test-pinned).
    let per_card = session.register(
        Query::select(Agg::sum("amount"))
            .select(Agg::count())
            .from("payments")
            .group_by(["cardId"])
            .over(Window::sliding(mins(5))),
    )?;
    let per_merchant = session.register(
        Query::select(Agg::avg("amount"))
            .from("payments")
            .group_by(["merchantId"])
            .over(Window::sliding(mins(5))),
    )?;

    // Stream events, built by field name and schema-checked before they
    // leave the client. Every reply carries the aggregations evaluated at
    // this exact event — accurate event-by-event, not at hop boundaries —
    // keyed by (query id, SELECT index) instead of display-name matching.
    let payments_data = [
        ("card-A", "shop-1", 25.0, 1_000),
        ("card-A", "shop-2", 40.0, 61_000),
        ("card-B", "shop-1", 15.0, 95_000),
        ("card-A", "shop-1", 10.0, 240_000),
        // 6.5 minutes in: card-A's first payment has left the window.
        ("card-A", "shop-2", 5.0, 390_000),
    ];
    for (card, merchant, amount, ts_ms) in payments_data {
        let event = payments
            .event(Timestamp::from_millis(ts_ms))
            .set("cardId", card)
            .set("merchantId", merchant)
            .set("amount", amount)
            .build()?;
        let reply = session.send(event)?;
        println!("t={ts_ms:>6}ms {card} pays {amount:>5.2} at {merchant}");
        println!(
            "    {:<28} sum={:<8} count={}",
            format!("card {card} (5min):"),
            reply.get_f64(&per_card, 0).unwrap_or(0.0),
            reply.get_i64(&per_card, 1).unwrap_or(0),
        );
        println!(
            "    {:<28} avg={:.2}",
            format!("merchant {merchant} (5min):"),
            reply.get_f64(&per_merchant, 0).unwrap_or(0.0),
        );
    }

    // Full lifecycle: queries can be listed and unregistered; the torn
    // down query's aggregations vanish from subsequent replies.
    println!("\nregistered queries: {}", session.queries().len());
    session.unregister(&per_merchant)?;
    let event = payments
        .event(Timestamp::from_millis(400_000))
        .set("cardId", "card-A")
        .set("merchantId", "shop-1")
        .set("amount", 1.0)
        .build()?;
    let reply = session.send(event)?;
    assert!(reply.get(&per_merchant, 0).is_none(), "unregistered");
    assert!(reply.get(&per_card, 0).is_some(), "still live");
    println!(
        "after unregister: per-merchant gone, per-card still live ({} queries)",
        session.queries().len()
    );
    Ok(())
}
