//! Figure 6: the shared-prefix task plan DAG.
//!
//! Registers the paper's Q1 + Q2 (Example 1) plus two more queries and
//! prints how the plan shares Window, Filter and GroupBy operators —
//! the §4.1.2 optimization that avoids repeating window advancement work.
//!
//! Run with: `cargo run --release --example plan_sharing`

use railgun::engine::{parse_query, Plan};
use railgun::types::{FieldType, Schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::from_pairs(&[
        ("cardId", FieldType::Str),
        ("merchantId", FieldType::Str),
        ("amount", FieldType::Float),
    ])?;

    let queries = [
        // Q1 and Q2 of the paper's Example 1.
        "SELECT sum(amount), count(*) FROM payments GROUP BY cardId OVER sliding 5 minutes",
        "SELECT avg(amount) FROM payments GROUP BY merchantId OVER sliding 5 minutes",
        // Same window + group-by with a filter: shares the window node,
        // forks at the filter stage.
        "SELECT count(*) FROM payments WHERE amount > 500 GROUP BY cardId OVER sliding 5 minutes",
        // A different window: its own root.
        "SELECT max(amount) FROM payments GROUP BY cardId OVER sliding 1 hours",
    ];

    let mut plan = Plan::new();
    for q in &queries {
        let parsed = parse_query(q)?;
        let handles = plan.add_query(&parsed, &schema)?;
        println!("registered: {q}");
        for h in handles {
            println!("    -> leaf #{}: {}", h.leaf, h.name);
        }
    }

    println!("\n== Plan DAG (Figure 6 shape) ==");
    println!(
        "{} windows, {} filters, {} group-bys, {} aggregator leaves",
        plan.windows.len(),
        plan.filters.len(),
        plan.groups.len(),
        plan.leaves.len()
    );
    for (wi, w) in plan.windows.iter().enumerate() {
        println!("Window[{wi}] {}", w.spec.display());
        for &fi in &w.filters {
            let f = &plan.filters[fi];
            let label = f
                .expr
                .as_ref()
                .map(|e| format!("WHERE {}", e.canonical()))
                .unwrap_or_else(|| "(pass-through)".to_owned());
            println!("  Filter[{fi}] {label}");
            for &gi in &f.groups {
                let g = &plan.groups[gi];
                println!("    GroupBy[{gi}] {:?}", g.field_names);
                for &li in &g.leaves {
                    let leaf = &plan.leaves[li];
                    println!("      Agg[{li}] {}", leaf.names.join(" / "));
                }
            }
        }
    }

    println!(
        "\nState keys touched per event = number of leaves = {} (paper §4.1.3).",
        plan.leaf_count()
    );
    // The Figure 6 invariant: Q1+Q2 share one window and one filter node.
    assert_eq!(plan.windows.len(), 2, "5-min window shared; 1-hour separate");
    Ok(())
}
