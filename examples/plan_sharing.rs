//! Figure 6: the shared-prefix task plan DAG.
//!
//! Registers the paper's Q1 + Q2 (Example 1) plus two more queries —
//! built with the typed query builder — and prints how the plan shares
//! Window, Filter and GroupBy operators: the §4.1.2 optimization that
//! avoids repeating window advancement work. Also shows the plan *diff*
//! when a query is unregistered: leaves and windows nothing else shares
//! die, shared prefixes survive.
//!
//! Run with: `cargo run --release --example plan_sharing`

use railgun::engine::lang::{field, hours, mins, Agg, Query, Window};
use railgun::engine::{Plan, QueryId};
use railgun::types::{FieldType, Schema};

fn print_plan(plan: &Plan) {
    println!(
        "{} windows, {} filters, {} group-bys, {} live aggregator leaves",
        plan.windows.len(),
        plan.filters.len(),
        plan.groups.len(),
        plan.leaf_count()
    );
    for (wi, w) in plan.windows.iter().enumerate() {
        if w.filters.is_empty() {
            println!("Window[{wi}] {} (dead)", w.spec.display());
            continue;
        }
        println!("Window[{wi}] {}", w.spec.display());
        for &fi in &w.filters {
            let f = &plan.filters[fi];
            let label = f
                .expr
                .as_ref()
                .map(|e| format!("WHERE {}", e.canonical()))
                .unwrap_or_else(|| "(pass-through)".to_owned());
            println!("  Filter[{fi}] {label}");
            for &gi in &f.groups {
                let g = &plan.groups[gi];
                println!("    GroupBy[{gi}] {:?}", g.field_names);
                for &li in &g.leaves {
                    let leaf = &plan.leaves[li];
                    let names: Vec<&str> = leaf.names().collect();
                    println!("      Agg[{li}] {}", names.join(" / "));
                }
            }
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::from_pairs(&[
        ("cardId", FieldType::Str),
        ("merchantId", FieldType::Str),
        ("amount", FieldType::Float),
    ])?;

    let queries = [
        // Q1 and Q2 of the paper's Example 1.
        Query::select(Agg::sum("amount"))
            .select(Agg::count())
            .from("payments")
            .group_by(["cardId"])
            .over(Window::sliding(mins(5)))
            .build()?,
        Query::select(Agg::avg("amount"))
            .from("payments")
            .group_by(["merchantId"])
            .over(Window::sliding(mins(5)))
            .build()?,
        // Same window + group-by with a filter: shares the window node,
        // forks at the filter stage.
        Query::select(Agg::count())
            .from("payments")
            .filter(field("amount").gt(500))
            .group_by(["cardId"])
            .over(Window::sliding(mins(5)))
            .build()?,
        // A different window: its own root.
        Query::select(Agg::max("amount"))
            .from("payments")
            .group_by(["cardId"])
            .over(Window::sliding(hours(1)))
            .build()?,
    ];

    let mut plan = Plan::new();
    let mut ids = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let id = QueryId(i as u64 + 1);
        let handles = plan.add_query(id, q, &schema)?;
        ids.push(id);
        println!("registered [{id}]: {}", q.to_text()?);
        for h in handles {
            println!("    -> leaf #{}: ({id}, {}) {}", h.leaf, h.index, h.name);
        }
    }

    println!("\n== Plan DAG (Figure 6 shape) ==");
    print_plan(&plan);
    println!(
        "\nState keys touched per event = number of live leaves = {} (paper §4.1.3).",
        plan.leaf_count()
    );
    // The Figure 6 invariant: Q1+Q2 share one window and one filter node.
    assert_eq!(plan.windows.len(), 2, "5-min window shared; 1-hour separate");

    // Unregister the 1-hour query: its window (and cursors, on a live
    // task) dies with it. Unregister Q1: the shared 5-minute window
    // survives because Q2 and the filtered count still use it.
    println!("\n== After unregistering the 1-hour max and Q1 ==");
    let diff = plan.remove_query(ids[3]);
    println!(
        "removing [{}]: {} refs gone, dead leaves {:?}, dead windows {:?}",
        ids[3], diff.removed_refs, diff.dead_leaves, diff.dead_windows
    );
    let diff = plan.remove_query(ids[0]);
    println!(
        "removing [{}]: {} refs gone, dead leaves {:?}, dead windows {:?} (window shared — survives)",
        ids[0], diff.removed_refs, diff.dead_leaves, diff.dead_windows
    );
    print_plan(&plan);
    assert!(diff.dead_windows.is_empty(), "5-min window still in use");
    assert_eq!(plan.leaf_count(), 2, "avg + filtered count remain");
    Ok(())
}
