//! The paper's Figure 1 / §2.1 compliance scenario, end to end.
//!
//! Business rule: *"if the number of transactions of a card in the last 5
//! minutes is higher than 4, then block the transaction."*
//!
//! Five transactions arrive within a 4.8-minute span, placed (as in
//! Figure 1) so that **no** 5-minute hopping window with a 1-minute hop
//! ever contains all of them. Railgun's real-time sliding window fires the
//! rule on the fifth transaction; the Flink-style hopping baseline never
//! does — the accuracy gap that breaks regulatory compliance (the paper's
//! A requirement).
//!
//! Run with: `cargo run --release --example fraud_rules`

use railgun::baseline::{HoppingConfig, HoppingEngine};
use railgun::engine::lang::AggFunc;
use railgun::engine::{Cluster, ClusterConfig};
use railgun::store::DbOptions;
use railgun::types::{FieldType, Schema, TimeDelta, Timestamp, Value};

const MIN: f64 = 60_000.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 1 geometry: 5 events spanning < 5 minutes, aligned so no
    // 1-minute-hop pane covers them all.
    let minutes = [1.4, 2.5, 3.5, 4.5, 6.2];
    let timestamps: Vec<i64> = minutes.iter().map(|m| (m * MIN) as i64).collect();

    // --- Railgun: real-time sliding window -------------------------------
    // This example deliberately stays on the *textual* query path (the
    // other examples use the typed builder): both front doors compile to
    // the same plan — the equivalence the test suite pins — and both get
    // keyed replies addressed by the returned QueryId.
    let mut cluster = Cluster::new(ClusterConfig::single_node())?;
    let schema = Schema::from_pairs(&[("cardId", FieldType::Str), ("amount", FieldType::Float)])?;
    cluster.create_stream("payments", schema, &["cardId"])?;
    let rule_query = cluster.register_query(
        "SELECT count(*) FROM payments GROUP BY cardId OVER sliding 5 minutes",
    )?;

    println!("== Railgun: real-time sliding window ==");
    let mut railgun_blocked = false;
    for (i, ts) in timestamps.iter().enumerate() {
        let reply = cluster.send(
            "payments",
            Timestamp::from_millis(*ts),
            vec![Value::from("card-X"), Value::from(100.0)],
        )?;
        let count = reply.get_i64(rule_query, 0).unwrap_or(0);
        let blocked = count > 4;
        railgun_blocked |= blocked;
        println!(
            "  txn {} at {:.1}min: count(last 5min) = {count} -> {}",
            i + 1,
            minutes[i],
            if blocked { "BLOCK" } else { "approve" }
        );
    }

    // --- Flink-style hopping windows (1-minute hop) ----------------------
    let dir = std::env::temp_dir().join(format!("railgun-ex-fraud-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut hopping = HoppingEngine::open(
        &dir,
        HoppingConfig {
            window: TimeDelta::from_minutes(5),
            hop: TimeDelta::from_minutes(1),
            aggs: vec![(AggFunc::Count, None)],
            store: DbOptions::default(),
        },
    )?;

    println!("\n== Flink-style hopping window (5min window, 1min hop) ==");
    let mut hopping_blocked = false;
    for (i, ts) in timestamps.iter().enumerate() {
        hopping.process(b"card-X", Timestamp::from_millis(*ts), &[Value::from(100.0)])?;
        // A rule engine reads the most recently *emitted* pane.
        let count = hopping
            .answer(b"card-X")
            .and_then(|e| e.values.first().and_then(Value::as_i64))
            .unwrap_or(0);
        let blocked = count > 4;
        hopping_blocked |= blocked;
        println!(
            "  txn {} at {:.1}min: last emitted pane count = {count} -> {}",
            i + 1,
            minutes[i],
            if blocked { "BLOCK" } else { "approve" }
        );
    }
    // Drain remaining panes far in the future: even post-hoc, no pane ever
    // counted all five.
    let mut max_pane = 0;
    for em in hopping.process(b"other", Timestamp::from_millis(30 * 60_000), &[Value::from(0.0)])? {
        if em.key == b"card-X" {
            if let Some(c) = em.values.first().and_then(Value::as_i64) {
                max_pane = max_pane.max(c);
            }
        }
    }

    println!("\n== Verdict ==");
    println!("  Railgun fired the blocking rule:        {railgun_blocked}");
    println!("  Hopping windows fired the rule:         {hopping_blocked}");
    println!("  Largest count any hopping pane ever saw: {max_pane} (needed > 4)");
    assert!(railgun_blocked, "sliding window must catch the attack");
    assert!(!hopping_blocked, "hopping windows structurally cannot");
    println!("\nThe fraud pattern is invisible to hopping windows — the paper's Figure 1.");
    Ok(())
}
