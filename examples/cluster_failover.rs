//! Distributed operation: elasticity, abrupt node failure, and failover to
//! replicas under the Figure 7 sticky assignment strategy.
//!
//! A 3-node cluster with replication factor 2 serves per-card counts
//! registered through the typed query builder. One node is killed without
//! warning; the messaging layer's heartbeat timeout expels it, the sticky
//! strategy fails its tasks over to the processors already holding
//! replicas, and per-card metrics stay exact — read back through keyed
//! `(QueryId, index)` reply accessors.
//!
//! Run with: `cargo run --release --example cluster_failover`

use railgun::engine::lang::{hours, Agg, Query, Window};
use railgun::engine::{Cluster, ClusterConfig};
use railgun::types::{FieldType, Schema, Timestamp, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = ClusterConfig {
        nodes: 3,
        units_per_node: 1,
        partitions: 6,
        replication: 2,
        session_timeout_ms: 1_000,
        ..ClusterConfig::default()
    };
    cfg.data_root = std::env::temp_dir().join(format!(
        "railgun-ex-failover-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&cfg.data_root).ok();
    let mut cluster = Cluster::new(cfg)?;

    let schema = Schema::from_pairs(&[("cardId", FieldType::Str), ("amount", FieldType::Float)])?;
    cluster.create_stream("payments", schema, &["cardId"])?;
    let per_card = cluster.register(
        &Query::select(Agg::count())
            .select(Agg::sum("amount"))
            .from("payments")
            .group_by(["cardId"])
            .over(Window::sliding(hours(1)))
            .build()?,
    )?;

    println!("3 nodes, 6 partitions, replication factor 2");
    println!("registered query {per_card} ({} known)", cluster.queries().len());
    println!("strategy generation: {}", cluster.strategy().generation());

    // Phase 1: traffic across 6 cards.
    for round in 0..3 {
        for card in 0..6 {
            cluster.send(
                "payments",
                Timestamp::from_millis(round * 10_000 + card * 100),
                vec![Value::from(format!("card-{card}")), Value::from(10.0)],
            )?;
        }
    }
    println!("phase 1: sent 3 rounds x 6 cards");

    // Phase 2: kill node 1 abruptly (no goodbye). Survivors heartbeat
    // while the logical clock advances past the session timeout.
    cluster.kill_node(1)?;
    for step in 1..=10 {
        cluster.advance_time(step * 500);
        cluster.settle()?;
    }
    println!(
        "phase 2: node killed; coordinator expelled it (generation {}), tasks failed over",
        cluster.strategy().generation()
    );
    println!(
        "         cold assignments so far: {} (sticky strategy minimizes data shuffle)",
        cluster.strategy().cold_assignments()
    );

    // Phase 3: accuracy survives — every card must report count 4.
    let mut all_exact = true;
    for card in 0..6 {
        let reply = cluster.send(
            "payments",
            Timestamp::from_millis(60_000 + card),
            vec![Value::from(format!("card-{card}")), Value::from(10.0)],
        )?;
        let count = reply.get_i64(per_card, 0).unwrap_or(-1);
        let sum = reply.get_f64(per_card, 1).unwrap_or(-1.0);
        let exact = count == 4 && (sum - 40.0).abs() < 1e-9;
        all_exact &= exact;
        println!(
            "  card-{card}: count={count} sum={sum} {}",
            if exact { "✓" } else { "✗ WRONG" }
        );
    }
    assert!(all_exact, "metrics must stay exact across failover");

    // Phase 4: elasticity — add a node, rebalance is sticky.
    let id = cluster.add_node()?;
    println!("phase 4: added node {id}; generation {}", cluster.strategy().generation());
    let reply = cluster.send(
        "payments",
        Timestamp::from_millis(120_000),
        vec![Value::from("card-0"), Value::from(10.0)],
    )?;
    println!(
        "  card-0 after scale-out: count={} (exactness preserved)",
        reply.get_i64(per_card, 0).unwrap_or(-1)
    );
    println!("\nFailover + elasticity with exact per-entity metrics — the D in MAD.");
    Ok(())
}
