//! String generation from a small regex subset.
//!
//! Real proptest compiles full regexes into strategies; the shim supports
//! the subset Railgun's tests actually write: a sequence of atoms, where
//! an atom is a character class `[a-z0-9_-]` or a literal character, each
//! with an optional `{n}` / `{m,n}` repetition. Anything outside that
//! subset panics with a clear message so new tests fail loudly instead of
//! silently generating the wrong language.

use crate::test_runner::TestRng;

enum Atom {
    Class(Vec<char>),
    Literal(char),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>, pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    let mut prev: Option<char> = None;
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated character class in regex {pattern:?}"));
        match c {
            ']' => break,
            '-' => {
                // Range `a-z` when between two chars, literal '-' otherwise.
                match (prev, chars.peek()) {
                    (Some(lo), Some(&hi)) if hi != ']' => {
                        chars.next();
                        assert!(lo <= hi, "inverted range in regex {pattern:?}");
                        for v in (lo as u32 + 1)..=(hi as u32) {
                            set.push(char::from_u32(v).unwrap());
                        }
                        prev = None;
                    }
                    _ => {
                        set.push('-');
                        prev = Some('-');
                    }
                }
            }
            '\\' => {
                let esc = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}"));
                set.push(esc);
                prev = Some(esc);
            }
            c => {
                set.push(c);
                prev = Some(c);
            }
        }
    }
    assert!(!set.is_empty(), "empty character class in regex {pattern:?}");
    set
}

fn parse_repeat(
    chars: &mut std::iter::Peekable<std::str::Chars>,
    pattern: &str,
) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut body = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    let (lo, hi) = match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad repeat bound"),
                            hi.trim().parse().expect("bad repeat bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("bad repeat bound");
                            (n, n)
                        }
                    };
                    assert!(lo <= hi, "inverted repeat in regex {pattern:?}");
                    return (lo, hi);
                }
                body.push(c);
            }
            panic!("unterminated repeat in regex {pattern:?}");
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        _ => (1, 1),
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Class(parse_class(&mut chars, pattern)),
            '\\' => Atom::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}")),
            ),
            '(' | ')' | '|' | '.' | '^' | '$' => panic!(
                "regex feature {c:?} in {pattern:?} is outside the proptest-shim subset \
                 (supported: literal chars, [classes], {{m,n}} / * / + / ? repeats)"
            ),
            c => Atom::Literal(c),
        };
        let (min, max) = parse_repeat(&mut chars, pattern);
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Generate a string matching `pattern` (within the supported subset).
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let n = piece.min + rng.next_below((piece.max - piece.min + 1) as u64) as usize;
        for _ in 0..n {
            match &piece.atom {
                Atom::Class(set) => {
                    out.push(set[rng.next_below(set.len() as u64) as usize]);
                }
                Atom::Literal(c) => out.push(*c),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_within_class_and_bounds() {
        let mut rng = TestRng::deterministic("string-test");
        for _ in 0..500 {
            let s = generate_matching("[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()), "len {}", s.len());
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn supports_dash_and_underscore() {
        let mut rng = TestRng::deterministic("string-test-2");
        for _ in 0..500 {
            let s = generate_matching("[a-zA-Z0-9_-]{0,24}", &mut rng);
            assert!(s.len() <= 24);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'));
        }
    }

    #[test]
    fn literals_and_repeats() {
        let mut rng = TestRng::deterministic("string-test-3");
        let s = generate_matching("ab[0-9]{2}", &mut rng);
        assert_eq!(s.len(), 4);
        assert!(s.starts_with("ab"));
    }
}
