//! Collection strategies: `proptest::collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Size specification accepted by [`vec`](fn@vec): a fixed length or a range.
pub trait SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for std::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty vec size range");
        self.start + rng.next_below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start() <= self.end(), "empty vec size range");
        self.start() + rng.next_below((self.end() - self.start() + 1) as u64) as usize
    }
}

/// Strategy producing `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
