//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        (b' ' + rng.next_below(95) as u8) as char
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.next_unit_f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}
