//! The [`Strategy`] trait and its combinators.
//!
//! Unlike real proptest there is no value tree / shrinking: a strategy is
//! simply a deterministic generator from a [`TestRng`].

use crate::test_runner::TestRng;

/// A generator of test-case inputs.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` combinator (bounded rejection loop).
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row");
    }
}

/// Weighted choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total_weight = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Self {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_below(self.total_weight);
        for (weight, strategy) in &self.options {
            if pick < u64::from(*weight) {
                return strategy.generate(rng);
            }
            pick -= u64::from(*weight);
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $next:ident),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.next_below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(
    u8 => next_u8, u16 => next_u16, u32 => next_u32, u64 => next_u64_t,
    usize => next_usize, i8 => next_i8, i16 => next_i16, i32 => next_i32,
    i64 => next_i64, isize => next_isize,
);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = rng.next_unit_f64();
        let v = self.start + unit * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.next_unit_f64() as f32 * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// String strategies from a regex subset — see [`crate::string`].
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (S0 0)
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
);
