//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset Railgun's property tests use: the [`proptest!`]
//! macro (with `#![proptest_config(..)]`), strategies for numeric ranges,
//! `any::<T>()`, `Just`, tuples, `prop_map`, weighted/unweighted
//! [`prop_oneof!`], `collection::vec`, `option::of`, and string strategies
//! from a small regex subset (`[class]{m,n}` sequences). No shrinking:
//! a failure reports the test name and generated-case number (inputs are
//! not echoed — rerun the deterministic seed and add `eprintln!` if you
//! need them).
//! See `DESIGN.md` § "Vendored dependency shims".

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{Just, Strategy};

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Assert inside a `proptest!` body; panics with the formatted message on
/// failure (the harness has no shrinking, so this is a plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Skip the current case when an assumption does not hold. Without a
/// rejection budget this simply `continue`s the case loop.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Choose between strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// The `proptest!` test-definition macro: each function runs its body
/// `cases` times with fresh strategy-generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::generate(&{ $strategy }, &mut __rng),)+
                );
                // The body is a plain block: prop_assert! panics carry the
                // failing case number via this guard's panic message hook.
                let __guard = $crate::test_runner::CaseGuard::new(stringify!($name), __case);
                { $body }
                __guard.disarm();
            }
        }
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
}
