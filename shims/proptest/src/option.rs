//! Option strategies: `proptest::option::of`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Some(inner)` ~75% of the time (proptest's default
/// weighting) and `None` otherwise.
pub struct OptionStrategy<S> {
    inner: S,
}

pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.next_below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
