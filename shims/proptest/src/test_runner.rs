//! Test-loop configuration and the deterministic RNG behind strategies.

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
    /// Accepted for API compatibility; the shim has no persistence.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Deterministic generator (xoshiro256++ seeded from the test name) so a
/// failing case reproduces on every run.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed from a test name (FNV-1a) so distinct tests explore distinct
    /// sequences but every run of one test is identical.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        // Allow an env override so CI can diversify runs explicitly.
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = seed.parse::<u64>() {
                h = h.wrapping_add(extra.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            }
        }
        let mut sm = h;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        Self { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection sampling over the unbiased zone.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// RAII guard that reports which generated case was executing if the test
/// body panics (the shim's substitute for shrink output).
pub struct CaseGuard {
    name: &'static str,
    case: u32,
}

impl CaseGuard {
    pub fn new(name: &'static str, case: u32) -> Self {
        Self { name, case }
    }

    pub fn disarm(self) {
        std::mem::forget(self);
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let seed_note = match std::env::var("PROPTEST_SEED") {
                Ok(seed) => format!("rerun with PROPTEST_SEED={seed} reproduces it"),
                Err(_) => "deterministic seed; rerun reproduces it".to_string(),
            };
            eprintln!(
                "proptest shim: test `{}` failed at generated case #{} ({seed_note})",
                self.name, self.case
            );
        }
    }
}
