//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *subset* of the `parking_lot` API that Railgun
//! actually uses (`Mutex::new` / `Mutex::lock`, no lock poisoning) on top
//! of `std::sync::Mutex`. See `DESIGN.md` § "Vendored dependency shims".

use std::sync::TryLockError;

/// A mutex whose `lock()` never returns a poison error, mirroring
/// `parking_lot::Mutex`'s panic-safe semantics.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock with parking_lot's poison-free API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
