//! Offline stand-in for the `rand` 0.8 crate.
//!
//! Implements the subset Railgun uses — [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`] and the
//! [`distributions::Distribution`] trait — on top of a xoshiro256++
//! generator seeded via SplitMix64 (the same construction real
//! `SmallRng` uses on 64-bit targets). The statistical quality is good
//! enough for the sim crate's distribution-shape tests.
//! See `DESIGN.md` § "Vendored dependency shims".

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] like in real `rand`.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        // Compare in the integer domain to avoid double-rounding bias.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Rngs that can be constructed from a small seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_in<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_in(self.start, self.end, rng)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                // Widen to u128 so the span fits for every 64-bit type,
                // then reject out-of-range draws (Lemire-style without the
                // multiply trick; the loop almost never iterates twice).
                let span = (high as i128).wrapping_sub(low as i128) as u128;
                debug_assert!(span > 0);
                let zone = u128::MAX - (u128::MAX % span);
                loop {
                    let wide =
                        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    if wide < zone {
                        return ((low as i128) + (wide % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let unit = ((rng.next_u64() >> 11) as f64)
                    * (1.0 / (1u64 << 53) as f64);
                let v = low as f64 + unit * (high as f64 - low as f64);
                // Guard against rounding up to the excluded endpoint.
                if v as $t >= high { low } else { v as $t }
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_unit_float_uniformish() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn gen_bool_matches_p() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }
}
