//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset Railgun uses: the [`Buf`] / [`BufMut`] cursor
//! traits (little-endian accessors over `&[u8]` / `Vec<u8>`) and a
//! cheaply-cloneable [`Bytes`] buffer backed by an `Arc<[u8]>`.
//! See `DESIGN.md` § "Vendored dependency shims".

use std::sync::Arc;

/// Read-side cursor over a contiguous byte buffer.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Write-side cursor appending to a growable byte buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_u64_le(v as u64);
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

/// An immutable, cheaply-cloneable byte buffer (shared via `Arc`).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zero-copy sub-slice sharing the same backing allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(range.start <= range.end && range.end <= self.len());
        Self {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.start += cnt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_f64_le(2.5);
        buf.put_slice(b"xyz");
        let mut cur = &buf[..];
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16_le(), 300);
        assert_eq!(cur.get_u32_le(), 70_000);
        assert_eq!(cur.get_u64_le(), 1 << 40);
        assert_eq!(cur.get_f64_le(), 2.5);
        let mut rest = [0u8; 3];
        cur.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xyz");
        assert!(!cur.has_remaining());
    }

    #[test]
    fn bytes_slice_shares_and_advances() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        let mut cur = s.clone();
        cur.advance(2);
        assert_eq!(cur.as_ref(), &[4]);
        assert_eq!(b.len(), 5);
    }
}
