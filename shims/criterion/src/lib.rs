//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset Railgun's benches use: `criterion_group!` /
//! `criterion_main!` (both the plain and `name = ..; config = ..;
//! targets = ..` forms), `Criterion::bench_function`, benchmark groups,
//! `BenchmarkId`, and `Bencher::iter` / `iter_custom`. Measurement is a
//! simple warm-up + timed-batch mean (no bootstrap statistics); passing
//! `--test` (as `cargo bench -- --test` does) runs every benchmark body
//! once, exactly like real criterion's test mode.
//! See `DESIGN.md` § "Vendored dependency shims".

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{function_id}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    test_mode: bool,
    target_time: Duration,
    warm_up_time: Duration,
    /// Number of timed batches the measurement is split into.
    samples: usize,
    /// Mean duration of one iteration, filled by `iter*`.
    mean: Option<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.mean = Some(Duration::ZERO);
            return;
        }
        // Warm up while estimating per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        let total_iters = (self.target_time.as_nanos() / per_iter.max(1))
            .clamp(1, 50_000_000) as u64;
        // Split the budget into `samples` timed batches (real criterion's
        // sampling, minus the bootstrap statistics over them).
        let samples = (self.samples as u64).clamp(1, total_iters);
        let batch = total_iters / samples;
        let mut elapsed = Duration::ZERO;
        let mut done: u64 = 0;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            elapsed += start.elapsed();
            done += batch;
        }
        self.mean = Some(elapsed / done.max(1) as u32);
    }

    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        if self.test_mode {
            f(1);
            self.mean = Some(Duration::ZERO);
            return;
        }
        let iters = 10u64;
        let total = f(iters);
        self.mean = Some(total / iters as u32);
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The harness entry point (configuration builder + runner).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 10, "sample size must be >= 10");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Apply CLI arguments (`--test`, a name filter). Unknown flags that
    /// cargo/criterion pass (`--bench`, color settings, …) are ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" | "-t" => self.test_mode = true,
                "--bench" => {}
                s if s.starts_with("--") => {
                    // Flags with a value we don't understand: best-effort
                    // skip of the value when one follows.
                    if matches!(s, "--measurement-time" | "--warm-up-time" | "--sample-size") {
                        let _ = args.next();
                    }
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            test_mode: self.test_mode,
            target_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: self.sample_size,
            mean: None,
        };
        f(&mut b);
        match (self.test_mode, b.mean) {
            (true, _) => println!("test {id} ... ok"),
            (false, Some(mean)) => {
                println!("{id:<56} time: [{}]", fmt_duration(mean));
            }
            (false, None) => println!("{id:<56} (no measurement)"),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run_one(&id.id, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let saved = (self.sample_size, self.measurement_time, self.warm_up_time);
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            saved,
        }
    }

    pub fn final_summary(&self) {}
}

/// A named group of related benchmarks (`group_name/bench_id`).
///
/// Group-level setting overrides (`sample_size`, `measurement_time`) are
/// scoped to the group like in real criterion: the parent `Criterion`'s
/// settings are restored when the group is finished/dropped.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    saved: (usize, Duration, Duration),
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        self.criterion.run_one(&full, &mut f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 10, "sample size must be >= 10");
        self.criterion.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    pub fn finish(self) {}
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        let (sample_size, measurement_time, warm_up_time) = self.saved;
        self.criterion.sample_size = sample_size;
        self.criterion.measurement_time = measurement_time;
        self.criterion.warm_up_time = warm_up_time;
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
