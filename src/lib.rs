//! # Railgun
//!
//! A distributed streaming engine with **accurate real-time sliding
//! windows** under **MAD** requirements — **M**sec-level tail latencies,
//! **A**ccurate event-by-event window aggregations, **D**istributed and
//! fault-tolerant operation. This library is a from-scratch Rust
//! reproduction of *"Railgun: managing large streaming windows under MAD
//! requirements"* (Gomes, Oliveirinha, Cardoso, Bizarro — Feedzai, VLDB
//! 2021, arXiv:2106.12626).
//!
//! This facade crate re-exports the public API of the workspace crates:
//!
//! * [`types`] — events, values, schemas, timestamps.
//! * [`store`] — the embedded LSM state store (RocksDB substitute).
//! * [`reservoir`] — the disk-backed event reservoir with eager chunk
//!   caching and head/tail window iterators.
//! * [`messaging`] — the Kafka-substitute messaging layer: partitioned
//!   topics, consumer groups, sticky rebalancing, replay.
//! * [`engine`] — the Railgun engine proper: query language, task plans,
//!   aggregators, task processors, processor units, front-end, cluster.
//! * [`baseline`] — Flink-like hopping-window and rescan baselines used by
//!   the paper's evaluation.
//! * [`sim`] — virtual-time harness: open-loop injector, queueing,
//!   latency/GC models, HDR-style histograms.
//!
//! ## Quickstart
//!
//! ```
//! use railgun::engine::{Cluster, ClusterConfig};
//! use railgun::types::{FieldType, Schema, Timestamp, Value};
//!
//! // A single-node cluster with an in-process messaging layer.
//! let mut cluster = Cluster::new(ClusterConfig::single_node()).unwrap();
//!
//! // Register the `payments` stream with a `card` partitioner.
//! let schema = Schema::from_pairs(&[
//!     ("cardId", FieldType::Str),
//!     ("merchantId", FieldType::Str),
//!     ("amount", FieldType::Float),
//! ]).unwrap();
//! cluster.create_stream("payments", schema, &["cardId"]).unwrap();
//!
//! // Q1 of the paper: per-card sum and count over a 5-minute sliding window.
//! cluster.register_query(
//!     "SELECT sum(amount), count(*) FROM payments GROUP BY cardId OVER sliding 5 minutes",
//! ).unwrap();
//!
//! // Send an event through the front-end and read the aggregations back.
//! let reply = cluster.send(
//!     "payments",
//!     Timestamp::from_millis(1_000),
//!     vec![Value::from("card-1"), Value::from("m-1"), Value::from(25.0)],
//! ).unwrap();
//! assert_eq!(reply.aggregations[0].value, Value::Float(25.0)); // sum
//! assert_eq!(reply.aggregations[1].value, Value::Int(1));      // count
//! ```
//!
//! ## Threaded runtime
//!
//! `Cluster::start` moves every processor unit onto its own OS thread
//! (the paper's one-thread-per-unit discipline, §3.2); clients then
//! pipeline many in-flight requests with `send_async`/`collect` instead
//! of one blocking round-trip at a time (see DESIGN.md § "Execution
//! modes"):
//!
//! ```
//! use railgun::engine::{Cluster, ClusterConfig};
//! use railgun::types::{FieldType, Schema, Timestamp, Value};
//!
//! let mut cluster = Cluster::new(ClusterConfig::single_node()).unwrap();
//! let schema = Schema::from_pairs(&[
//!     ("cardId", FieldType::Str),
//!     ("amount", FieldType::Float),
//! ]).unwrap();
//! cluster.create_stream("payments", schema, &["cardId"]).unwrap();
//! cluster.register_query(
//!     "SELECT count(*) FROM payments GROUP BY cardId OVER sliding 5 minutes",
//! ).unwrap();
//!
//! cluster.start().unwrap(); // one worker thread per processor unit
//! let mut client = cluster.client().unwrap();
//! // Pipeline a window of requests, then collect by request id.
//! let ids: Vec<u64> = (0..8)
//!     .map(|i| {
//!         client.send_async(
//!             "payments",
//!             Timestamp::from_millis(1_000 + i),
//!             vec![Value::from("card-1"), Value::from(1.0)],
//!         ).unwrap()
//!     })
//!     .collect();
//! for id in ids {
//!     let reply = client.collect(id).unwrap();
//!     assert!(!reply.aggregations.is_empty());
//! }
//! cluster.stop().unwrap(); // deterministic pump mode remains available
//! ```

pub use railgun_baseline as baseline;
pub use railgun_core as engine;
pub use railgun_messaging as messaging;
pub use railgun_reservoir as reservoir;
pub use railgun_sim as sim;
pub use railgun_store as store;
pub use railgun_types as types;
