//! # Railgun
//!
//! A distributed streaming engine with **accurate real-time sliding
//! windows** under **MAD** requirements — **M**sec-level tail latencies,
//! **A**ccurate event-by-event window aggregations, **D**istributed and
//! fault-tolerant operation. This library is a from-scratch Rust
//! reproduction of *"Railgun: managing large streaming windows under MAD
//! requirements"* (Gomes, Oliveirinha, Cardoso, Bizarro — Feedzai, VLDB
//! 2021, arXiv:2106.12626).
//!
//! This facade crate re-exports the public API of the workspace crates:
//!
//! * [`types`] — events, values, schemas, timestamps.
//! * [`store`] — the embedded LSM state store (RocksDB substitute).
//! * [`reservoir`] — the disk-backed event reservoir with eager chunk
//!   caching and head/tail window iterators.
//! * [`messaging`] — the Kafka-substitute messaging layer: partitioned
//!   topics, consumer groups, sticky rebalancing, replay.
//! * [`engine`] — the Railgun engine proper: query language, task plans,
//!   aggregators, task processors, processor units, front-end, cluster.
//! * [`baseline`] — Flink-like hopping-window and rescan baselines used by
//!   the paper's evaluation.
//! * [`sim`] — virtual-time harness: open-loop injector, queueing,
//!   latency/GC models.
//!
//! The engine observes itself through the telemetry & SLO plane
//! ([`engine::metrics`]): build the cluster with
//! `ClusterConfig::telemetry = true`, attach latency budgets with the
//! query builder's `.with_slo(...)`, and snapshot per-stage histograms
//! and per-query percentile ladders with [`Session::metrics`] — see the
//! README's "Observing latency" quickstart and DESIGN.md § "Telemetry &
//! SLO plane".
//!
//! [`Session::metrics`]: engine::session::Session::metrics
//!
//! ## Quickstart
//!
//! The typed client API: a [`Session`] owns the cluster and hands out
//! stream and query **handles**. Queries are built programmatically
//! (compiling to exactly the plan the text parser would produce), events
//! are built by field name and schema-checked, and replies are addressed
//! by `(query handle, SELECT index)` — no display-name string matching:
//!
//! ```
//! use railgun::engine::lang::{mins, Agg, Query, Window};
//! use railgun::engine::ClusterConfig;
//! use railgun::types::{FieldType, Timestamp};
//! use railgun::Session;
//!
//! let mut session = Session::new(ClusterConfig::single_node()).unwrap();
//!
//! // Register the `payments` stream with a `cardId` partitioner.
//! let payments = session.create_stream(
//!     "payments",
//!     &[
//!         ("cardId", FieldType::Str),
//!         ("merchantId", FieldType::Str),
//!         ("amount", FieldType::Float),
//!     ],
//!     &["cardId"],
//! ).unwrap();
//!
//! // Q1 of the paper: per-card sum and count over a 5-minute sliding window.
//! let per_card = session.register(
//!     Query::select(Agg::sum("amount"))
//!         .select(Agg::count())
//!         .from("payments")
//!         .group_by(["cardId"])
//!         .over(Window::sliding(mins(5))),
//! ).unwrap();
//!
//! // Send a named-field event and read the aggregations back, keyed.
//! let event = payments
//!     .event(Timestamp::from_millis(1_000))
//!     .set("cardId", "card-1")
//!     .set("merchantId", "m-1")
//!     .set("amount", 25.0)
//!     .build()
//!     .unwrap();
//! let reply = session.send(event).unwrap();
//! assert_eq!(reply.get_f64(&per_card, 0), Some(25.0)); // sum(amount)
//! assert_eq!(reply.get_i64(&per_card, 1), Some(1));    // count(*)
//!
//! // Full lifecycle: list and unregister — tasks tear the metrics down.
//! assert_eq!(session.queries().len(), 1);
//! session.unregister(&per_card).unwrap();
//! assert!(session.queries().is_empty());
//! ```
//!
//! Textual queries ([`Session::register_text`], Figure 4 syntax) remain a
//! first-class front door — the builder compiles to byte-identical plans
//! (test-pinned) — and the positional `Cluster::send(stream, ts, values)`
//! path still works as a thin shim under the typed facade.
//!
//! [`Session::register_text`]: engine::session::Session::register_text
//!
//! ## Threaded runtime
//!
//! `Cluster::start` moves every processor unit onto its own OS thread
//! (the paper's one-thread-per-unit discipline, §3.2); clients then
//! pipeline many in-flight requests with `send_async`/`collect` instead
//! of one blocking round-trip at a time (see DESIGN.md § "Execution
//! modes"):
//!
//! ```
//! use railgun::engine::{Cluster, ClusterConfig};
//! use railgun::types::{FieldType, Schema, Timestamp, Value};
//!
//! let mut cluster = Cluster::new(ClusterConfig::single_node()).unwrap();
//! let schema = Schema::from_pairs(&[
//!     ("cardId", FieldType::Str),
//!     ("amount", FieldType::Float),
//! ]).unwrap();
//! cluster.create_stream("payments", schema, &["cardId"]).unwrap();
//! let per_card = cluster.register_query(
//!     "SELECT count(*) FROM payments GROUP BY cardId OVER sliding 5 minutes",
//! ).unwrap();
//!
//! cluster.start().unwrap(); // one worker thread per processor unit
//! let mut client = cluster.client().unwrap();
//! // Pipeline a window of requests, then collect by request id.
//! let ids: Vec<u64> = (0..8)
//!     .map(|i| {
//!         client.send_async(
//!             "payments",
//!             Timestamp::from_millis(1_000 + i),
//!             vec![Value::from("card-1"), Value::from(1.0)],
//!         ).unwrap()
//!     })
//!     .collect();
//! for id in ids {
//!     let reply = client.collect(id).unwrap();
//!     assert!(reply.get_i64(per_card, 0).is_some(), "keyed count present");
//! }
//! cluster.stop().unwrap(); // deterministic pump mode remains available
//! ```

pub use railgun_baseline as baseline;
pub use railgun_core as engine;
pub use railgun_messaging as messaging;
pub use railgun_reservoir as reservoir;
pub use railgun_sim as sim;
pub use railgun_store as store;
pub use railgun_types as types;

// The typed client API, re-exported at the crate root (the engine module
// remains the full toolbox).
pub use railgun_core::{
    EventBuilder, MetricsSnapshot, QueryHandle, QueryId, QueryMetrics, Session, StreamEvent,
    StreamHandle, TypedReply,
};
