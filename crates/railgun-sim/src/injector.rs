//! Open-loop load injector with coordinated-omission-free measurement.
//!
//! Mirrors the paper's measurement discipline (§5): injectors produce at a
//! *sustained* rate regardless of how the system responds, and latency is
//! measured from each event's **scheduled** send time to its reply. A
//! stalled server therefore penalizes every queued event, not just the one
//! in flight — the correction for the coordinated-omission problem \[26\]
//! the paper applies.

use rand::Rng;

use railgun_types::Histogram;
use crate::latency::{GcModel, KafkaHopModel};
use crate::queueing::FifoServer;

/// Summary of one injection run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    pub events: u64,
    pub duration_us: u64,
    pub latencies: Histogram,
    pub server_utilization: f64,
}

impl RunSummary {
    /// Achieved throughput (ev/s) over the run.
    pub fn throughput(&self) -> f64 {
        if self.duration_us == 0 {
            0.0
        } else {
            self.events as f64 * 1e6 / self.duration_us as f64
        }
    }
}

/// Configuration of an open-loop run.
#[derive(Debug, Clone)]
pub struct InjectorConfig {
    /// Sustained injection rate, events/second.
    pub rate_ev_s: f64,
    /// Number of events to inject.
    pub events: u64,
    /// Events ignored for latency purposes (the paper uses a 5-minute
    /// warmup in a 35-minute run — 1/7 of the run).
    pub warmup_events: u64,
    /// Inbound and reply messaging hops.
    pub kafka: KafkaHopModel,
    /// GC model charged to the processing server.
    pub gc: GcModel,
}

/// Drive an open-loop run against a service-time oracle.
///
/// `service_us(seq)` returns the service time of event `seq` — measured
/// from real engine code by the benches, or modeled. Returns the latency
/// distribution with coordinated omission corrected.
pub fn run_open_loop(
    cfg: &InjectorConfig,
    rng: &mut impl Rng,
    mut service_us: impl FnMut(u64) -> u64,
) -> RunSummary {
    let interval_us = 1e6 / cfg.rate_ev_s.max(1e-9);
    let mut server = FifoServer::new();
    let mut gc = cfg.gc.clone();
    let mut latencies = Histogram::default();
    let mut last_completion = 0u64;
    for seq in 0..cfg.events {
        // Scheduled (ideal) send instant — independent of system state.
        let scheduled_us = (seq as f64 * interval_us) as u64;
        // Inbound hop: event reaches the processor's queue.
        let enqueue = scheduled_us + cfg.kafka.sample_us(rng);
        // Service, including any GC pause that triggers now.
        if let Some(pause) = gc.on_event(rng) {
            server.pause(enqueue, pause);
        }
        let (_, done) = server.offer(enqueue, service_us(seq));
        // Reply hop back to the injector.
        let replied = done + cfg.kafka.sample_us(rng);
        last_completion = last_completion.max(replied);
        if seq >= cfg.warmup_events {
            latencies.record(replied - scheduled_us);
        }
    }
    let duration_us = ((cfg.events as f64) * interval_us) as u64;
    RunSummary {
        events: cfg.events - cfg.warmup_events,
        duration_us,
        server_utilization: server.utilization(duration_us.max(1)),
        latencies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn base_cfg(rate: f64, events: u64) -> InjectorConfig {
        InjectorConfig {
            rate_ev_s: rate,
            events,
            warmup_events: events / 10,
            kafka: KafkaHopModel::new(500.0, 0.4, 0.0, 0.0),
            gc: GcModel::disabled(),
        }
    }

    #[test]
    fn underloaded_run_latency_is_hops_plus_service() {
        let mut rng = SmallRng::seed_from_u64(1);
        // 500 ev/s (2 ms apart), 100 µs service: no queueing.
        let s = run_open_loop(&base_cfg(500.0, 20_000), &mut rng, |_| 100);
        let p50 = s.latencies.percentile(0.5);
        assert!(
            (900..1_700).contains(&p50),
            "p50 {p50}µs ≈ 2 hops (~1.0ms) + 0.1ms service"
        );
        assert!(s.server_utilization < 0.1);
    }

    #[test]
    fn overloaded_run_blows_up_tail() {
        let mut rng = SmallRng::seed_from_u64(2);
        // 500 ev/s but 3 ms service: utilization 1.5 → unbounded queue.
        let s = run_open_loop(&base_cfg(500.0, 10_000), &mut rng, |_| 3_000);
        let p50 = s.latencies.percentile(0.50);
        // Half the events wait behind a linearly-growing backlog.
        assert!(
            p50 > 1_000_000,
            "median must reflect the blow-up, got {p50}µs"
        );
    }

    #[test]
    fn near_saturation_inflates_high_percentiles_only() {
        let mut rng = SmallRng::seed_from_u64(3);
        // Deterministic 1.8 ms service at 2 ms inter-arrival: ~90% load.
        let s = run_open_loop(&base_cfg(500.0, 50_000), &mut rng, |_| 1_800);
        let p50 = s.latencies.percentile(0.5);
        let p999 = s.latencies.percentile(0.999);
        assert!(p999 > p50, "tail ({p999}) above median ({p50})");
        assert!(s.server_utilization > 0.85);
    }

    #[test]
    fn gc_pauses_surface_in_the_tail() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut cfg = base_cfg(1000.0, 100_000);
        cfg.gc = GcModel::calibrated(); // pause every 10k events
        let with_gc = run_open_loop(&cfg, &mut rng, |_| 200);
        let mut rng = SmallRng::seed_from_u64(4);
        let without = run_open_loop(&base_cfg(1000.0, 100_000), &mut rng, |_| 200);
        assert!(
            with_gc.latencies.percentile(0.9999) > 2 * without.latencies.percentile(0.9999),
            "GC must inflate the extreme tail: {} vs {}",
            with_gc.latencies.percentile(0.9999),
            without.latencies.percentile(0.9999)
        );
        // Medians stay comparable (pauses are rare).
        assert!(with_gc.latencies.percentile(0.5) < 2 * without.latencies.percentile(0.5));
    }

    #[test]
    fn coordinated_omission_is_corrected() {
        // One huge stall must penalize every event scheduled during it.
        let mut rng = SmallRng::seed_from_u64(5);
        let s = run_open_loop(&base_cfg(1000.0, 2_000), &mut rng, |seq| {
            if seq == 200 {
                500_000 // a 0.5s stall
            } else {
                50
            }
        });
        // Events 200..~700 were scheduled during the stall; that's ~25% of
        // the run, so p90 must reflect six-figure latencies.
        let p90 = s.latencies.percentile(0.90);
        assert!(p90 > 50_000, "CO correction missing: p90 = {p90}µs");
    }

    #[test]
    fn throughput_reports_configured_rate() {
        let mut rng = SmallRng::seed_from_u64(6);
        let s = run_open_loop(&base_cfg(2_000.0, 20_000), &mut rng, |_| 10);
        assert!((s.throughput() - 1_800.0).abs() < 400.0, "{}", s.throughput());
    }
}
