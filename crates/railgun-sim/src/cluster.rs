//! Cluster-scale discrete-event model (Figure 10, substitution #5).
//!
//! The paper's third experiment runs 1-50 AWS nodes (8 processor units
//! each) against 30 Kafka brokers. We compose *measured* single-unit
//! service times through a queueing model of the whole fleet:
//!
//! * each processor unit is a FIFO server with its own GC model;
//! * events spread over units by key hash, with a configurable skew (the
//!   paper's real dataset produces "expected load differences among the
//!   several Railgun processors");
//! * messaging hops pay a broker-contention surcharge that grows with the
//!   total partition count — the Kafka bottleneck the paper observed at
//!   35+ nodes (§5.3.1);
//! * tail latency is the distribution over *all* events, so the slowest
//!   (most loaded) unit dominates the high percentiles ("tail at scale").

use rand::Rng;

use railgun_types::Histogram;
use crate::latency::{GcModel, KafkaHopModel, LogNormal};
use crate::queueing::FifoServer;

/// Configuration for one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterSimConfig {
    pub nodes: u32,
    pub units_per_node: u32,
    /// Total offered load, events/second.
    pub total_rate_ev_s: f64,
    /// Events simulated (after warmup).
    pub events: u64,
    pub warmup_events: u64,
    /// Base messaging-hop model (uncontended).
    pub kafka: KafkaHopModel,
    /// Broker contention: fractional hop inflation per partition beyond
    /// the baseline (the 30-broker cluster saturates as partitions grow).
    pub broker_inflation_per_partition: f64,
    /// Partitions = units (the paper matches partitions to consumers).
    pub partitions_per_unit: u32,
    /// Per-unit GC model template.
    pub gc: GcModel,
    /// Measured mean service time per event on one unit, µs.
    pub service_mean_us: f64,
    /// Log-normal shape of service times.
    pub service_sigma: f64,
    /// Zipf-ish skew exponent across units (0 = uniform).
    pub load_skew: f64,
}

/// Outcome of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterRunSummary {
    pub latencies: Histogram,
    /// Utilization of the most loaded unit.
    pub max_utilization: f64,
    /// Average achieved throughput per node (ev/s).
    pub per_node_throughput: f64,
    pub nodes: u32,
}

impl ClusterRunSummary {
    /// True iff the run respects the paper's M requirement at the given
    /// percentile (default check: <250 ms @ 99.9%).
    pub fn meets_mad_latency(&self, limit_ms: u64, quantile: f64) -> bool {
        self.latencies.percentile(quantile) <= limit_ms * 1000
    }
}

/// Run the cluster model.
pub fn run_cluster(cfg: &ClusterSimConfig, rng: &mut impl Rng) -> ClusterRunSummary {
    let unit_count = (cfg.nodes * cfg.units_per_node).max(1) as usize;
    let mut servers: Vec<FifoServer> = vec![FifoServer::new(); unit_count];
    let mut gcs: Vec<GcModel> = vec![cfg.gc.clone(); unit_count];

    // Broker contention scales the hop model with total partitions.
    let partitions = unit_count as f64 * f64::from(cfg.partitions_per_unit);
    let inflation = 1.0 + cfg.broker_inflation_per_partition * partitions;
    let hop = inflate_hop(&cfg.kafka, inflation);

    // Unit weights: unit i gets weight 1/(1+i)^skew, normalized.
    let weights: Vec<f64> = (0..unit_count)
        .map(|i| 1.0 / (1.0 + i as f64).powf(cfg.load_skew))
        .collect();
    let total_weight: f64 = weights.iter().sum();
    let cum: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w / total_weight;
            Some(*acc)
        })
        .collect();

    let service = LogNormal::from_median(
        // median of a log-normal with the given mean and sigma
        cfg.service_mean_us / (0.5 * cfg.service_sigma * cfg.service_sigma).exp(),
        cfg.service_sigma,
    );

    let interval_us = 1e6 / cfg.total_rate_ev_s.max(1e-9);
    let mut latencies = Histogram::default();
    let total_events = cfg.events + cfg.warmup_events;
    for seq in 0..total_events {
        let scheduled = (seq as f64 * interval_us) as u64;
        // Route by (skewed) key hash.
        let r: f64 = rng.gen();
        let unit = cum.partition_point(|&c| c < r).min(unit_count - 1);
        let enqueue = scheduled + hop.sample_us(rng);
        if let Some(pause) = gcs[unit].on_event(rng) {
            servers[unit].pause(enqueue, pause);
        }
        let service_us = service.sample(rng) as u64;
        let (_, done) = servers[unit].offer(enqueue, service_us);
        let replied = done + hop.sample_us(rng);
        if seq >= cfg.warmup_events {
            latencies.record(replied - scheduled);
        }
    }
    let horizon = (total_events as f64 * interval_us) as u64;
    let max_utilization = servers
        .iter()
        .map(|s| s.utilization(horizon.max(1)))
        .fold(0.0, f64::max);
    ClusterRunSummary {
        latencies,
        max_utilization,
        per_node_throughput: cfg.total_rate_ev_s / f64::from(cfg.nodes.max(1)),
        nodes: cfg.nodes,
    }
}

/// Find the highest sustainable total rate (ev/s) for a node count such
/// that p`quantile` latency stays within `limit_ms` — how the paper
/// derived "as much load as possible, in a sustained way, without
/// breaching the M requirement" (§5.3).
pub fn max_sustainable_rate(
    base: &ClusterSimConfig,
    rng_seed: u64,
    limit_ms: u64,
    quantile: f64,
    lo_per_node: f64,
    hi_per_node: f64,
) -> f64 {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut lo = lo_per_node;
    let mut hi = hi_per_node;
    for _ in 0..9 {
        let mid = 0.5 * (lo + hi);
        let mut cfg = base.clone();
        cfg.total_rate_ev_s = mid * f64::from(base.nodes);
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        let summary = run_cluster(&cfg, &mut rng);
        if summary.meets_mad_latency(limit_ms, quantile) && summary.max_utilization < 0.98 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

fn inflate_hop(base: &KafkaHopModel, factor: f64) -> KafkaHopModel {
    base.inflated(factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn base(nodes: u32, per_node_rate: f64) -> ClusterSimConfig {
        ClusterSimConfig {
            nodes,
            units_per_node: 8,
            total_rate_ev_s: per_node_rate * nodes as f64,
            events: 40_000,
            warmup_events: 4_000,
            kafka: KafkaHopModel::calibrated(),
            broker_inflation_per_partition: 0.0008,
            partitions_per_unit: 1,
            gc: GcModel::calibrated(),
            service_mean_us: 180.0,
            service_sigma: 0.35,
            load_skew: 0.03,
        }
    }

    #[test]
    fn small_cluster_meets_mad() {
        let mut rng = SmallRng::seed_from_u64(42);
        let s = run_cluster(&base(1, 25_000.0), &mut rng);
        assert!(
            s.meets_mad_latency(250, 0.999),
            "1 node @ 25k ev/s must meet <250ms@99.9%: got {}µs",
            s.latencies.percentile(0.999)
        );
        assert!(s.max_utilization < 1.0);
    }

    #[test]
    fn contention_grows_with_cluster_size() {
        let mut rng = SmallRng::seed_from_u64(42);
        let small = run_cluster(&base(3, 20_000.0), &mut rng);
        let mut rng = SmallRng::seed_from_u64(42);
        let large = run_cluster(&base(50, 20_000.0), &mut rng);
        // Contention inflates every messaging hop, so the *median* moves
        // with partition count; comparing p95 across different node counts
        // is too noisy (the tail is dominated by GC pauses, which don't
        // scale with nodes).
        assert!(
            large.latencies.percentile(0.5) > small.latencies.percentile(0.5),
            "broker contention must raise median latency at 50 nodes: {} vs {}",
            large.latencies.percentile(0.5),
            small.latencies.percentile(0.5)
        );
        // Tail coverage without the cross-size noise: pair the same
        // 50-node run with and without contention. Identical seeds mean
        // identical draw sequences, so every hop sample strictly
        // dominates and the tail must move too (§5.3.1's Kafka
        // bottleneck reaches the high percentiles, not just the median).
        let mut rng = SmallRng::seed_from_u64(42);
        let mut uncontended_cfg = base(50, 20_000.0);
        uncontended_cfg.broker_inflation_per_partition = 0.0;
        let uncontended = run_cluster(&uncontended_cfg, &mut rng);
        assert!(
            large.latencies.percentile(0.95) > uncontended.latencies.percentile(0.95),
            "contention must raise p95 vs an uncontended fleet of the same size: {} vs {}",
            large.latencies.percentile(0.95),
            uncontended.latencies.percentile(0.95)
        );
    }

    #[test]
    fn overload_breaches_mad() {
        let mut rng = SmallRng::seed_from_u64(42);
        // 8 units/node, 180µs/event → ~44k ev/s absolute max per node;
        // demand far above that must breach.
        let s = run_cluster(&base(1, 80_000.0), &mut rng);
        assert!(!s.meets_mad_latency(250, 0.999));
    }

    #[test]
    fn sustainable_rate_search_is_monotone_enough() {
        let b1 = base(1, 0.0);
        let rate1 = max_sustainable_rate(&b1, 7, 250, 0.999, 5_000.0, 50_000.0);
        assert!(
            rate1 > 15_000.0,
            "one node should sustain >15k ev/s, got {rate1}"
        );
        let b50 = base(50, 0.0);
        let rate50 = max_sustainable_rate(&b50, 7, 250, 0.999, 5_000.0, 50_000.0);
        assert!(
            rate50 < rate1,
            "per-node sustainable rate must degrade at 50 nodes: {rate50} vs {rate1}"
        );
    }
}
