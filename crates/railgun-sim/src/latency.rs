//! Latency models for the simulated testbed (DESIGN.md substitutions
//! #1/#3/#5).
//!
//! The paper's end-to-end latencies are dominated off the median by
//! infrastructure: Kafka produce/consume hops, and — at the extreme tail —
//! occasional broker hiccups ("variations in the higher percentiles are due
//! to Kafka communication", §5.2.1). The JVM prototype additionally pays
//! garbage-collection pauses under memory pressure (§5.2.1, §5.3.1).
//!
//! These models are *calibrated against the published figures*, not
//! physical simulations: the log-normal body + spike mixture reproduces the
//! reported percentile ladder of a lightly-loaded Kafka round trip
//! (~1-3 ms median, tens of ms at 99.99%, low hundreds at the extreme
//! tail). Calibration constants are documented in EXPERIMENTS.md.

use rand::distributions::Distribution;
use rand::Rng;

/// Sample of a log-normal distribution parameterized by median and sigma.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    /// ln(median).
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Construct from the distribution's median and shape `sigma`.
    pub fn from_median(median: f64, sigma: f64) -> Self {
        LogNormal {
            mu: median.max(1e-9).ln(),
            sigma: sigma.max(1e-9),
        }
    }

    /// Draw one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        // Box-Muller from two uniforms.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

/// One messaging hop (producer → broker → consumer poll), in microseconds.
///
/// Mixture model: a log-normal body plus rare "hiccup" spikes (broker
/// flushes, network jitter) that create the extreme-tail steps visible in
/// every curve of Figures 8 and 9.
#[derive(Debug, Clone)]
pub struct KafkaHopModel {
    body: LogNormal,
    /// Probability of a hiccup per hop.
    spike_p: f64,
    spike: LogNormal,
}

impl KafkaHopModel {
    /// Calibrated default: median ≈ 0.55 ms, p99 ≈ 4 ms, hiccups of
    /// ~20-120 ms at ~0.02% per hop. Two hops (inbound + reply) then give
    /// end-to-end medians of ~1-2 ms and the 75-150 ms steps the paper
    /// reports above the 99.99th percentile.
    pub fn calibrated() -> Self {
        KafkaHopModel {
            body: LogNormal::from_median(550.0, 0.55),
            spike_p: 0.0002,
            spike: LogNormal::from_median(35_000.0, 0.6),
        }
    }

    /// Custom model.
    pub fn new(median_us: f64, sigma: f64, spike_p: f64, spike_median_us: f64) -> Self {
        KafkaHopModel {
            body: LogNormal::from_median(median_us, sigma),
            spike_p: spike_p.clamp(0.0, 1.0),
            spike: LogNormal::from_median(spike_median_us, 0.6),
        }
    }

    /// Sample one hop latency in µs.
    pub fn sample_us(&self, rng: &mut impl Rng) -> u64 {
        let mut v = self.body.sample(rng);
        if rng.gen_bool(self.spike_p) {
            v += self.spike.sample(rng);
        }
        v as u64
    }

    /// A contended variant of this model: body and hiccup probability both
    /// inflate by `factor` (broker saturation under many partitions).
    pub fn inflated(&self, factor: f64) -> KafkaHopModel {
        let factor = factor.max(1.0);
        KafkaHopModel {
            body: LogNormal {
                mu: self.body.mu + factor.ln(),
                sigma: self.body.sigma,
            },
            spike_p: (self.spike_p * factor).min(0.05),
            spike: self.spike,
        }
    }
}

/// JVM garbage-collection model (substitution #3): the paper's prototype
/// runs on a JVM and §5.3.1 attributes its per-node throughput ceiling to
/// allocation pressure (~5 GB/s at 25 k ev/s against a 10-32 GB heap).
///
/// Deterministic-rate model: every `bytes_per_minor_gc` allocated bytes
/// trigger a minor pause; every `minors_per_major` minor pauses, a major
/// pause. Pause durations are log-normal. The simulation charges pauses to
/// the processing queue, so they surface as latency above ~p99 exactly as
/// in the paper.
#[derive(Debug, Clone)]
pub struct GcModel {
    pub bytes_per_event: f64,
    pub bytes_per_minor_gc: f64,
    minor_pause: LogNormal,
    pub minors_per_major: u64,
    major_pause: LogNormal,
    allocated: f64,
    minors: u64,
}

impl GcModel {
    /// Calibrated to the paper's report: 25 k ev/s ⇒ ~5 GB/s allocation
    /// (≈200 KB/event), young-gen collections every ~2 GB with ~8-25 ms
    /// pauses, majors every ~300 minors with ~80-200 ms pauses.
    pub fn calibrated() -> Self {
        GcModel {
            bytes_per_event: 200_000.0,
            bytes_per_minor_gc: 2e9,
            minor_pause: LogNormal::from_median(12_000.0, 0.45),
            minors_per_major: 300,
            major_pause: LogNormal::from_median(120_000.0, 0.4),
            allocated: 0.0,
            minors: 0,
        }
    }

    /// A "no GC" model (Rust-native runs).
    pub fn disabled() -> Self {
        GcModel {
            bytes_per_event: 0.0,
            bytes_per_minor_gc: f64::INFINITY,
            minor_pause: LogNormal::from_median(1.0, 0.1),
            minors_per_major: u64::MAX,
            major_pause: LogNormal::from_median(1.0, 0.1),
            allocated: 0.0,
            minors: 0,
        }
    }

    /// Scale the per-event allocation (e.g. more windows = more garbage).
    pub fn with_bytes_per_event(mut self, bytes: f64) -> Self {
        self.bytes_per_event = bytes;
        self
    }

    /// Promote every `n`-th minor collection to a major one — models
    /// near-OOM heap pressure (frequent full collections).
    pub fn with_major_every(mut self, n: u64) -> Self {
        self.minors_per_major = n.max(1);
        self
    }

    /// Account one processed event; returns a pause (µs) if a collection
    /// triggers now.
    pub fn on_event(&mut self, rng: &mut impl Rng) -> Option<u64> {
        if self.bytes_per_event <= 0.0 {
            return None;
        }
        self.allocated += self.bytes_per_event;
        if self.allocated < self.bytes_per_minor_gc {
            return None;
        }
        self.allocated -= self.bytes_per_minor_gc;
        self.minors += 1;
        if self.minors_per_major != u64::MAX && self.minors.is_multiple_of(self.minors_per_major) {
            Some(self.major_pause.sample(rng) as u64)
        } else {
            Some(self.minor_pause.sample(rng) as u64)
        }
    }
}

/// Disk / page-cache model for reservoir chunk misses (§5.2(b)): a chunk
/// that is not in the application cache usually comes from the OS page
/// cache (deserialize-only), and occasionally needs a real seek.
#[derive(Debug, Clone)]
pub struct DiskModel {
    /// Deserialize + decompress cost per chunk, µs.
    pub decode_us: LogNormal,
    /// Probability the chunk also missed the OS page cache.
    pub seek_p: f64,
    /// Seek + read cost, µs.
    pub seek_us: LogNormal,
}

impl DiskModel {
    /// Calibrated default: ~0.6 ms decode, 5% hard misses at ~6 ms (EBS
    /// latencies, matching the paper's AWS setup).
    pub fn calibrated() -> Self {
        DiskModel {
            decode_us: LogNormal::from_median(600.0, 0.4),
            seek_p: 0.05,
            seek_us: LogNormal::from_median(6_000.0, 0.5),
        }
    }

    /// Sample the cost of one chunk miss, µs.
    pub fn sample_miss_us(&self, rng: &mut impl Rng) -> u64 {
        let mut v = self.decode_us.sample(rng);
        if rng.gen_bool(self.seek_p) {
            v += self.seek_us.sample(rng);
        }
        v as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn lognormal_median_is_close() {
        let mut rng = SmallRng::seed_from_u64(7);
        let d = LogNormal::from_median(1000.0, 0.5);
        let mut xs: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[xs.len() / 2];
        assert!((median - 1000.0).abs() / 1000.0 < 0.05, "median {median}");
    }

    #[test]
    fn kafka_model_has_heavy_tail() {
        let mut rng = SmallRng::seed_from_u64(11);
        let m = KafkaHopModel::calibrated();
        let mut xs: Vec<u64> = (0..200_000).map(|_| m.sample_us(&mut rng)).collect();
        xs.sort_unstable();
        let p50 = xs[xs.len() / 2];
        let p9999 = xs[(xs.len() as f64 * 0.9999) as usize];
        assert!((400..900).contains(&p50), "p50 {p50}µs");
        assert!(p9999 > 10_000, "p9999 {p9999}µs should show hiccups");
    }

    #[test]
    fn gc_model_paces_with_allocation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut gc = GcModel::calibrated();
        // 2 GB / 200 KB = 10_000 events per minor GC.
        let mut pauses = 0;
        for _ in 0..50_000 {
            if gc.on_event(&mut rng).is_some() {
                pauses += 1;
            }
        }
        assert_eq!(pauses, 5, "one pause per 10k events");
    }

    #[test]
    fn gc_disabled_never_pauses() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut gc = GcModel::disabled();
        assert!((0..100_000).all(|_| gc.on_event(&mut rng).is_none()));
    }

    #[test]
    fn major_gc_is_longer() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut gc = GcModel::calibrated();
        gc.bytes_per_minor_gc = 1.0;
        gc.bytes_per_event = 1.0;
        let mut minor_max = 0u64;
        let mut major_min = u64::MAX;
        for i in 1..=600u64 {
            if let Some(p) = gc.on_event(&mut rng) {
                if i % 300 == 0 {
                    major_min = major_min.min(p);
                } else {
                    minor_max = minor_max.max(p);
                }
            }
        }
        assert!(major_min > minor_max / 2, "majors ({major_min}) should dwarf minors ({minor_max})");
    }

    #[test]
    fn disk_model_mixes_soft_and_hard_misses() {
        let mut rng = SmallRng::seed_from_u64(17);
        let d = DiskModel::calibrated();
        let xs: Vec<u64> = (0..50_000).map(|_| d.sample_miss_us(&mut rng)).collect();
        let soft = xs.iter().filter(|&&x| x < 3_000).count();
        let hard = xs.iter().filter(|&&x| x > 4_000).count();
        assert!(soft > 40_000, "most misses come from page cache: {soft}");
        assert!(hard > 1_000, "some misses pay a real seek: {hard}");
    }
}
