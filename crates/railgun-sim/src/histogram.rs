//! Compatibility re-export: the histogram moved to `railgun-types`.
//!
//! The log-bucketed HDR-style [`Histogram`] started life in this crate,
//! but the real engine's telemetry plane (PR 5) needs the same percentile
//! machinery without depending on the simulation harness, so the type now
//! lives in [`railgun_types::histogram`]. This module remains so existing
//! `railgun_sim::histogram::Histogram` paths keep compiling; new code
//! should import from `railgun_types` directly.

/// Deprecated alias of [`railgun_types::Histogram`] (moved in PR 5).
#[deprecated(
    since = "0.1.0",
    note = "Histogram moved to railgun_types::Histogram; import it from there"
)]
pub type Histogram = railgun_types::Histogram;
