//! Queueing building blocks for the latency simulation.
//!
//! A processor unit is a single-threaded server (§3.2): events queue FIFO
//! and are served one at a time. End-to-end latency is then
//!
//! ```text
//! e2e = inbound hop + wait-in-queue + service + reply hop
//! ```
//!
//! with the wait term capturing the backlog blow-up when service time
//! approaches the inter-arrival time — exactly the mechanism that makes
//! Flink's small hops collapse in Figure 8 (service ∝ windowSize/hopSize).

/// A single FIFO server with deterministic bookkeeping in microseconds.
#[derive(Debug, Clone, Default)]
pub struct FifoServer {
    /// Time the server becomes free.
    busy_until: u64,
    /// Total busy time accumulated (utilization accounting).
    busy_us: u64,
    served: u64,
}

impl FifoServer {
    /// New idle server.
    pub fn new() -> Self {
        FifoServer::default()
    }

    /// Offer one job arriving at `arrival_us` needing `service_us`.
    /// Returns (start, completion).
    pub fn offer(&mut self, arrival_us: u64, service_us: u64) -> (u64, u64) {
        let start = arrival_us.max(self.busy_until);
        let completion = start + service_us;
        self.busy_until = completion;
        self.busy_us += service_us;
        self.served += 1;
        (start, completion)
    }

    /// Inject a blocking pause (GC, compaction stall) starting no earlier
    /// than `at_us`; the server is unavailable for `pause_us`.
    pub fn pause(&mut self, at_us: u64, pause_us: u64) {
        let start = at_us.max(self.busy_until);
        self.busy_until = start + pause_us;
        self.busy_us += pause_us;
    }

    /// Backlog delay a job arriving at `at_us` would currently see.
    pub fn backlog_at(&self, at_us: u64) -> u64 {
        self.busy_until.saturating_sub(at_us)
    }

    /// Jobs served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Utilization over `[0, horizon_us]`.
    pub fn utilization(&self, horizon_us: u64) -> f64 {
        if horizon_us == 0 {
            0.0
        } else {
            self.busy_us as f64 / horizon_us as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_serves_immediately() {
        let mut s = FifoServer::new();
        let (start, done) = s.offer(100, 50);
        assert_eq!(start, 100);
        assert_eq!(done, 150);
    }

    #[test]
    fn backlog_accumulates_when_overloaded() {
        let mut s = FifoServer::new();
        // Arrivals every 10µs, service 15µs: queue grows by 5µs per job.
        let mut last_wait = 0;
        for i in 0..100u64 {
            let arrival = i * 10;
            let (start, _) = s.offer(arrival, 15);
            last_wait = start - arrival;
        }
        assert!(last_wait >= 99 * 5 - 15, "wait grew to {last_wait}µs");
    }

    #[test]
    fn underloaded_server_has_no_queue() {
        let mut s = FifoServer::new();
        for i in 0..100u64 {
            let arrival = i * 100;
            let (start, _) = s.offer(arrival, 50);
            assert_eq!(start, arrival);
        }
        assert_eq!(s.served(), 100);
        assert!((s.utilization(100 * 100) - 0.5).abs() < 0.02);
    }

    #[test]
    fn pause_blocks_subsequent_jobs() {
        let mut s = FifoServer::new();
        s.offer(0, 10);
        s.pause(10, 1000); // GC pause
        let (start, _) = s.offer(20, 10);
        assert_eq!(start, 1010, "job waits out the pause");
        assert_eq!(s.backlog_at(1015), 5);
    }
}
