//! # railgun-sim — the simulated testbed
//!
//! The paper evaluates Railgun on AWS: m5 instances, a Kafka broker fleet,
//! JVM heaps, 35-minute injection runs. This crate is the reproduction's
//! substitute testbed (DESIGN.md substitutions #3 and #5): the *engine
//! code measured by the benches is real*, and this crate supplies the
//! parts a laptop cannot — sustained wall-clock load, a broker fleet, a
//! garbage collector — as calibrated models:
//!
//! * [`histogram`] — compatibility re-export of the HDR-style latency
//!   histogram, which moved to [`railgun_types::histogram`] so the real
//!   engine's telemetry plane shares it;
//! * [`queueing`] — FIFO servers modeling single-threaded processor units;
//! * [`latency`] — messaging-hop, GC-pause and disk-miss models calibrated
//!   against the published curves (constants documented in
//!   EXPERIMENTS.md);
//! * [`injector`] — open-loop injection with coordinated-omission-corrected
//!   measurement \[26\], as in §5;
//! * [`cluster`] — the fleet-scale composition used for Figure 10,
//!   including the broker-contention effect the paper observed at 35+
//!   nodes.

pub mod cluster;
pub mod histogram;
pub mod injector;
pub mod latency;
pub mod queueing;

pub use cluster::{max_sustainable_rate, run_cluster, ClusterRunSummary, ClusterSimConfig};
// Non-deprecated compatibility path: `railgun_sim::Histogram` stays valid
// (same type); the deprecated alias lives at `railgun_sim::histogram`.
pub use railgun_types::Histogram;
pub use injector::{run_open_loop, InjectorConfig, RunSummary};
pub use latency::{DiskModel, GcModel, KafkaHopModel, LogNormal};
pub use queueing::FifoServer;
