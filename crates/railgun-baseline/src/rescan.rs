//! The "Flink custom solution" baseline (§2.2, \[21\]).
//!
//! Flink's own answer to accurate low-latency fraud metrics: persist every
//! event in RocksDB and, **for each new event, recompute each aggregation
//! from scratch** by iterating all stored events of the entity that fall in
//! the window. Accurate, but quadratic — per-event cost grows with the
//! number of events in the window, and "since Flink was not designed to
//! store events and manage event expiration, few optimizations are
//! possible".

use std::path::Path;

use railgun_core::lang::AggFunc;
use railgun_store::{Db, DbOptions};
use railgun_types::encode::{get_value, put_value};
use railgun_types::{Result, TimeDelta, Timestamp, Value};

/// Configuration for the rescan baseline.
#[derive(Debug, Clone)]
pub struct RescanConfig {
    pub window: TimeDelta,
    /// Aggregations: function + input field index (`None` = count(*)).
    pub aggs: Vec<(AggFunc, Option<usize>)>,
    pub store: DbOptions,
    /// Delete events older than the window every N events (state cleanup).
    pub cleanup_every: u64,
}

/// Work counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RescanStats {
    pub events: u64,
    /// Stored events visited during rescans — the quadratic term.
    pub events_scanned: u64,
    pub cleanups: u64,
}

/// Accurate-but-quadratic per-event rescan engine.
pub struct RescanEngine {
    cfg: RescanConfig,
    db: Db,
    seq: u64,
    stats: RescanStats,
}

impl RescanEngine {
    /// Open with a fresh store in `dir`.
    pub fn open(dir: &Path, cfg: RescanConfig) -> Result<Self> {
        let db = Db::open(dir, cfg.store.clone())?;
        Ok(RescanEngine {
            cfg,
            db,
            seq: 0,
            stats: RescanStats::default(),
        })
    }

    /// Store the event, then recompute every aggregation by scanning the
    /// entity's events inside `[ts - window, ts]`.
    pub fn process(
        &mut self,
        key: &[u8],
        ts: Timestamp,
        values: &[Value],
    ) -> Result<Vec<Value>> {
        self.stats.events += 1;
        self.seq += 1;
        // Store: key = entity ++ ts ++ seq (ts ordered within entity).
        let skey = event_key(key, ts, self.seq);
        let mut payload = Vec::with_capacity(values.len() * 8);
        for v in values {
            put_value(&mut payload, v);
        }
        self.db.put(Db::DEFAULT_CF, &skey, &payload)?;

        // Rescan the window.
        let lower = event_key(key, ts - self.cfg.window, 0);
        let upper = event_key(key, ts + TimeDelta::from_millis(1), 0);
        let rows = self.db.scan(Db::DEFAULT_CF, &lower, Some(&upper))?;
        let mut acc: Vec<Acc> = self.cfg.aggs.iter().map(|_| Acc::default()).collect();
        for (_, raw) in &rows {
            self.stats.events_scanned += 1;
            let mut cur = &raw[..];
            let mut fields = Vec::new();
            while !cur.is_empty() {
                fields.push(get_value(&mut cur)?);
            }
            for ((_, field), a) in self.cfg.aggs.iter().zip(acc.iter_mut()) {
                let v = field.map(|i| &fields[i]);
                a.add(v);
            }
        }
        // Periodic expiry of old events (Flink would use timers/TTL).
        if self.cfg.cleanup_every > 0 && self.stats.events.is_multiple_of(self.cfg.cleanup_every) {
            self.cleanup(key, ts)?;
        }
        Ok(self
            .cfg
            .aggs
            .iter()
            .zip(acc)
            .map(|((f, _), a)| a.finish(*f))
            .collect())
    }

    fn cleanup(&mut self, key: &[u8], now: Timestamp) -> Result<()> {
        self.stats.cleanups += 1;
        let lower = event_key(key, Timestamp::MIN, 0);
        let upper = event_key(key, now - self.cfg.window, 0);
        for (k, _) in self.db.scan(Db::DEFAULT_CF, &lower, Some(&upper))? {
            self.db.delete(Db::DEFAULT_CF, &k)?;
        }
        Ok(())
    }

    /// Work counters.
    pub fn stats(&self) -> RescanStats {
        self.stats
    }
}

/// Order-preserving event key: entity, then timestamp (offset to keep the
/// encoding unsigned and big-endian comparable), then sequence.
fn event_key(key: &[u8], ts: Timestamp, seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.len() + 20);
    out.extend_from_slice(&(key.len() as u32).to_be_bytes());
    out.extend_from_slice(key);
    let biased = (ts.as_millis() as i128 - i64::MIN as i128) as u128 as u64;
    out.extend_from_slice(&biased.to_be_bytes());
    out.extend_from_slice(&seq.to_be_bytes());
    out
}

/// Simple accumulator used by the from-scratch recompute.
#[derive(Default)]
struct Acc {
    count: i64,
    sum: f64,
    sum_sq: f64,
    min: Option<f64>,
    max: Option<f64>,
    distinct: std::collections::HashSet<String>,
    last: Option<Value>,
    prev: Option<Value>,
}

impl Acc {
    fn add(&mut self, v: Option<&Value>) {
        match v {
            None => self.count += 1, // count(*)
            Some(v) if !v.is_null() => {
                self.count += 1;
                if let Some(x) = v.as_f64() {
                    self.sum += x;
                    self.sum_sq += x * x;
                    self.min = Some(self.min.map_or(x, |m| m.min(x)));
                    self.max = Some(self.max.map_or(x, |m| m.max(x)));
                }
                self.distinct.insert(v.to_string());
                self.prev = self.last.take();
                self.last = Some(v.clone());
            }
            Some(_) => {}
        }
    }

    fn finish(self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => Value::Float(self.sum),
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::StdDev => {
                if self.count < 2 {
                    if self.count == 1 {
                        Value::Float(0.0)
                    } else {
                        Value::Null
                    }
                } else {
                    let n = self.count as f64;
                    let var = (self.sum_sq - self.sum * self.sum / n) / (n - 1.0);
                    Value::Float(var.max(0.0).sqrt())
                }
            }
            AggFunc::Min => self.min.map(Value::Float).unwrap_or(Value::Null),
            AggFunc::Max => self.max.map(Value::Float).unwrap_or(Value::Null),
            AggFunc::Last => self.last.unwrap_or(Value::Null),
            AggFunc::Prev => self.prev.unwrap_or(Value::Null),
            AggFunc::CountDistinct => Value::Int(self.distinct.len() as i64),
            // The rescan baseline sees the full window, so the
            // approximate family's exact equivalents apply.
            AggFunc::ApproxCountDistinct { .. } => Value::Int(self.distinct.len() as i64),
            AggFunc::TopK { .. } | AggFunc::Percentile { .. } => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("railgun-rescan-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn engine(name: &str) -> RescanEngine {
        RescanEngine::open(
            &fresh(name),
            RescanConfig {
                window: TimeDelta::from_minutes(5),
                aggs: vec![
                    (AggFunc::Count, None),
                    (AggFunc::Sum, Some(0)),
                    (AggFunc::Avg, Some(0)),
                ],
                store: DbOptions::default(),
                cleanup_every: 100,
            },
        )
        .unwrap()
    }

    #[test]
    fn recomputes_exact_sliding_aggregations() {
        let mut e = engine("exact");
        let r = e
            .process(b"c", Timestamp::from_millis(0), &[Value::Float(10.0)])
            .unwrap();
        assert_eq!(r, vec![Value::Int(1), Value::Float(10.0), Value::Float(10.0)]);
        let r = e
            .process(b"c", Timestamp::from_millis(60_000), &[Value::Float(30.0)])
            .unwrap();
        assert_eq!(r[0], Value::Int(2));
        assert_eq!(r[1], Value::Float(40.0));
        // 6 minutes later the first two expire.
        let r = e
            .process(b"c", Timestamp::from_millis(420_000), &[Value::Float(5.0)])
            .unwrap();
        assert_eq!(r[0], Value::Int(1));
        assert_eq!(r[1], Value::Float(5.0));
    }

    #[test]
    fn includes_all_five_figure_1_events() {
        // Unlike hopping windows, the rescan baseline is accurate: the
        // fifth event within 5 minutes sees count = 5.
        let mut e = engine("fig1");
        let times = [60_000i64, 120_000, 180_000, 240_000, 299_000];
        let mut last = Vec::new();
        for t in times {
            last = e
                .process(b"card", Timestamp::from_millis(t), &[Value::Float(1.0)])
                .unwrap();
        }
        assert_eq!(last[0], Value::Int(5));
    }

    #[test]
    fn work_grows_quadratically_with_window_population() {
        let mut e = engine("quad");
        // 100 events inside one window: total scanned = 1+2+...+100.
        for i in 0..100 {
            e.process(b"c", Timestamp::from_millis(i * 10), &[Value::Float(1.0)])
                .unwrap();
        }
        let scanned = e.stats().events_scanned;
        assert_eq!(scanned, 5050, "triangular growth — the quadratic cost");
    }

    #[test]
    fn keys_are_isolated() {
        let mut e = engine("iso");
        e.process(b"a", Timestamp::from_millis(0), &[Value::Float(1.0)])
            .unwrap();
        let r = e
            .process(b"b", Timestamp::from_millis(1), &[Value::Float(2.0)])
            .unwrap();
        assert_eq!(r[0], Value::Int(1), "b sees only its own event");
    }

    #[test]
    fn negative_timestamps_order_correctly() {
        let mut e = engine("negts");
        e.process(b"c", Timestamp::from_millis(-60_000), &[Value::Float(1.0)])
            .unwrap();
        let r = e
            .process(b"c", Timestamp::from_millis(0), &[Value::Float(2.0)])
            .unwrap();
        assert_eq!(r[0], Value::Int(2), "negative-ts event inside window");
    }
}
