//! # railgun-baseline — the comparison systems of the paper's evaluation
//!
//! Two baselines stand in for Apache Flink in §5.1's comparison (DESIGN.md:
//! we implement comparators rather than depending on a JVM system):
//!
//! * [`hopping`] — Flink's standard "sliding" (hopping) windows over a
//!   RocksDB-style store: `windowSize/hopSize` pane states updated per
//!   event, pane emission/expiry timers at hop boundaries, answers served
//!   from the last *closed* pane. Fast while the hop is large; per-event
//!   cost and state size blow up as the hop shrinks toward real-time
//!   behaviour (Figure 8), and accuracy is structurally limited (Figure 1).
//! * [`rescan`] — Flink's custom fraud-detection solution \[21\]: store all
//!   events, recompute every aggregation from scratch per event. Accurate
//!   but quadratic.
//!
//! Both run on the same `railgun-store` LSM substrate as Railgun itself,
//! so cost comparisons isolate the *algorithmic* difference (1 state op
//! per metric vs `ws/hop` ops vs full rescans), not storage-engine quality.

pub mod hopping;
pub mod rescan;

pub use hopping::{Emission, HoppingConfig, HoppingEngine, HoppingStats};
pub use rescan::{RescanConfig, RescanEngine, RescanStats};
