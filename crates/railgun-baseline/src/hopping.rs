//! Hopping-window engine — the "Flink sliding window" baseline (§2.2, §5.1).
//!
//! Hopping windows approximate real-time sliding windows with a fixed set
//! of overlapping physical windows ("panes"): `windowSize / hopSize` of
//! them are active at any time. This engine mirrors how Flink executes
//! them over RocksDB:
//!
//! * every event performs a **read-modify-write of one state-store key per
//!   covering pane** — `ws/hop` state operations per event, the cost that
//!   explodes as the hop shrinks (Figure 8);
//! * a timer fires per (key, pane) when the watermark passes the pane end:
//!   the pane's result is **emitted** and its state deleted — the burst of
//!   work at hop boundaries;
//! * queries are answered from the **most recently emitted** pane, which
//!   is why the Figure 1 rule misfires: no emitted pane ever covers the
//!   five events together.
//!
//! Events themselves are *discarded* after updating the panes (the memory
//! optimization that makes hopping windows attractive — and inaccurate).

use std::collections::{BTreeSet, HashSet};
use std::path::Path;

use railgun_core::agg::{AggContext, AggScratch, AggState};
use railgun_core::lang::AggFunc;
use railgun_store::{Db, DbOptions};
use railgun_types::{RailgunError, Result, TimeDelta, Timestamp, Value};

/// Configuration of one hopping-window aggregation set.
#[derive(Debug, Clone)]
pub struct HoppingConfig {
    /// Logical window size.
    pub window: TimeDelta,
    /// Hop (slide) size; the pane count is `window / hop`.
    pub hop: TimeDelta,
    /// Aggregations: function + index of the input field in `values`
    /// (`None` = count(*)).
    pub aggs: Vec<(AggFunc, Option<usize>)>,
    pub store: DbOptions,
}

impl HoppingConfig {
    /// Number of simultaneously active panes (`windowSize / hopSize`).
    pub fn pane_count(&self) -> i64 {
        self.window / self.hop
    }
}

/// Work counters — the §5.1 cost model evidence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HoppingStats {
    pub events: u64,
    /// Pane state read-modify-writes (2 store ops each).
    pub pane_updates: u64,
    /// Timers fired (pane emissions).
    pub emissions: u64,
    /// Pane states deleted after emission.
    pub expirations: u64,
}

/// One emitted pane result.
#[derive(Debug, Clone, PartialEq)]
pub struct Emission {
    pub key: Vec<u8>,
    pub pane_start: Timestamp,
    pub pane_end: Timestamp,
    pub values: Vec<Value>,
}

/// The hopping-window baseline engine.
pub struct HoppingEngine {
    cfg: HoppingConfig,
    db: Db,
    aux_cf: railgun_store::ColumnFamilyId,
    /// (pane_end, key, pane_start) — Flink's timer service.
    timers: BTreeSet<(i64, Vec<u8>, i64)>,
    /// Panes already registered, to avoid duplicate timers.
    registered: HashSet<(Vec<u8>, i64)>,
    /// Event-time watermark (max timestamp seen).
    watermark: Timestamp,
    /// Last emitted pane per key (query answers come from here).
    last_emitted: std::collections::HashMap<Vec<u8>, Emission>,
    stats: HoppingStats,
    /// Reusable aggregator scratch (aux keys, sketch cache).
    scratch: AggScratch,
}

impl HoppingEngine {
    /// Open the engine with a fresh state store in `dir`.
    pub fn open(dir: &Path, cfg: HoppingConfig) -> Result<Self> {
        if !cfg.hop.is_positive() || !cfg.window.is_positive() {
            return Err(RailgunError::InvalidArgument(
                "window and hop must be positive".into(),
            ));
        }
        if cfg.window.as_millis() % cfg.hop.as_millis() != 0 {
            return Err(RailgunError::InvalidArgument(
                "hop must divide the window size".into(),
            ));
        }
        let db = Db::open(dir, cfg.store.clone())?;
        let aux_cf = match db.cf_by_name("distinct-aux") {
            Some(cf) => cf,
            None => db.create_cf("distinct-aux")?,
        };
        Ok(HoppingEngine {
            cfg,
            db,
            aux_cf,
            timers: BTreeSet::new(),
            registered: HashSet::new(),
            watermark: Timestamp::MIN,
            last_emitted: std::collections::HashMap::new(),
            stats: HoppingStats::default(),
            scratch: AggScratch::default(),
        })
    }

    /// Process one event: fire due timers, then update every covering pane.
    /// Returns the emissions triggered by this event's watermark advance.
    pub fn process(
        &mut self,
        key: &[u8],
        ts: Timestamp,
        values: &[Value],
    ) -> Result<Vec<Emission>> {
        self.stats.events += 1;
        let emissions = self.advance_watermark(ts)?;

        // Panes covering ts: starts in (ts - window, ts], aligned to hop.
        let n_panes = self.cfg.pane_count();
        let newest_start = ts.align_down(self.cfg.hop);
        for k in 0..n_panes {
            let start = newest_start - self.cfg.hop * k;
            if start + self.cfg.window <= ts {
                break; // pane already ended before this event
            }
            // Panes whose end has already been emitted are closed (late
            // event for that pane) — Flink drops these contributions.
            let end = start + self.cfg.window;
            if end <= self.watermark.align_down(self.cfg.hop) {
                continue;
            }
            self.update_pane(key, start, values)?;
        }
        Ok(emissions)
    }

    fn update_pane(&mut self, key: &[u8], start: Timestamp, values: &[Value]) -> Result<()> {
        self.stats.pane_updates += 1;
        let skey = pane_state_key(key, start);
        let mut states = match self.db.get(Db::DEFAULT_CF, &skey)? {
            Some(raw) => decode_states(&raw)?,
            None => self
                .cfg
                .aggs
                .iter()
                .map(|(f, _)| AggState::new(*f))
                .collect(),
        };
        for ((func, field), state) in self.cfg.aggs.iter().zip(states.iter_mut()) {
            let _ = func;
            let v = field.map(|i| &values[i]);
            let ctx = AggContext::new(&self.db, self.aux_cf, &skey, &self.scratch);
            state.insert(v, &ctx)?;
        }
        self.db.put(Db::DEFAULT_CF, &skey, &encode_states(&states))?;
        if self.registered.insert((key.to_vec(), start.as_millis())) {
            let end = start + self.cfg.window;
            self.timers
                .insert((end.as_millis(), key.to_vec(), start.as_millis()));
        }
        Ok(())
    }

    /// Fire every timer with `pane_end <= watermark` (new watermark = ts).
    fn advance_watermark(&mut self, ts: Timestamp) -> Result<Vec<Emission>> {
        if ts <= self.watermark {
            return Ok(Vec::new());
        }
        self.watermark = ts;
        let mut emissions = Vec::new();
        while let Some((end_ms, key, start_ms)) = self.timers.first().cloned() {
            if end_ms > ts.as_millis() {
                break;
            }
            self.timers.pop_first();
            let start = Timestamp::from_millis(start_ms);
            let skey = pane_state_key(&key, start);
            let values = match self.db.get(Db::DEFAULT_CF, &skey)? {
                Some(raw) => decode_states(&raw)?
                    .iter()
                    .map(AggState::value)
                    .collect(),
                None => Vec::new(),
            };
            let emission = Emission {
                key: key.clone(),
                pane_start: start,
                pane_end: Timestamp::from_millis(end_ms),
                values,
            };
            // Emit, then expire the pane state (allowed lateness 0).
            self.db.delete(Db::DEFAULT_CF, &skey)?;
            self.registered.remove(&(key.clone(), start_ms));
            self.stats.emissions += 1;
            self.stats.expirations += 1;
            self.last_emitted.insert(key, emission.clone());
            emissions.push(emission);
        }
        Ok(emissions)
    }

    /// The answer a rule engine would read for `key`: the most recently
    /// emitted pane (stale by up to one hop — the Figure 1 inaccuracy).
    pub fn answer(&self, key: &[u8]) -> Option<&Emission> {
        self.last_emitted.get(key)
    }

    /// Work counters.
    pub fn stats(&self) -> HoppingStats {
        self.stats
    }

    /// Currently registered (open) panes — the memory the paper calls
    /// "number of active window states" (§2.2).
    pub fn open_panes(&self) -> usize {
        self.registered.len()
    }

    /// State-store statistics.
    pub fn store_stats(&self) -> railgun_store::DbStats {
        self.db.stats()
    }
}

fn pane_state_key(key: &[u8], start: Timestamp) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.len() + 9);
    out.extend_from_slice(&(key.len() as u32).to_be_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(&start.as_millis().to_be_bytes());
    out
}

fn encode_states(states: &[AggState]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(states.len() * 16);
    for s in states {
        let mut one = Vec::new();
        s.encode(&mut one);
        buf.extend_from_slice(&(one.len() as u32).to_le_bytes());
        buf.extend_from_slice(&one);
    }
    buf
}

fn decode_states(mut raw: &[u8]) -> Result<Vec<AggState>> {
    let mut out = Vec::new();
    while raw.len() >= 4 {
        let len = u32::from_le_bytes(raw[..4].try_into().expect("4b")) as usize;
        raw = &raw[4..];
        if raw.len() < len {
            return Err(RailgunError::Corruption("truncated pane state".into()));
        }
        out.push(AggState::decode(&raw[..len])?);
        raw = &raw[len..];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("railgun-hop-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn engine(name: &str, window_min: i64, hop_min: i64) -> HoppingEngine {
        HoppingEngine::open(
            &fresh(name),
            HoppingConfig {
                window: TimeDelta::from_minutes(window_min),
                hop: TimeDelta::from_minutes(hop_min),
                aggs: vec![(AggFunc::Count, None), (AggFunc::Sum, Some(0))],
                store: DbOptions::default(),
            },
        )
        .unwrap()
    }

    const MIN: i64 = 60_000;

    #[test]
    fn pane_count_matches_paper_formula() {
        // §2.2: 60-min window, 5-min hop => 12 panes; 1-second hop => 3600.
        let e = engine("panes", 60, 5);
        assert_eq!(e.cfg.pane_count(), 12);
        let cfg = HoppingConfig {
            window: TimeDelta::from_minutes(60),
            hop: TimeDelta::from_secs(1),
            aggs: vec![],
            store: DbOptions::default(),
        };
        assert_eq!(cfg.pane_count(), 3600);
    }

    #[test]
    fn per_event_pane_updates_equal_pane_count() {
        let mut e = engine("cost", 10, 2); // 5 panes
        e.process(b"k", Timestamp::from_millis(20 * MIN), &[Value::Float(1.0)])
            .unwrap();
        // First event at a "fresh" region touches all 5 covering panes.
        assert_eq!(e.stats().pane_updates, 5);
    }

    #[test]
    fn figure_1_hopping_windows_miss_the_five_events() {
        // Figure 1's geometry: five events spanning 4.8 minutes (inside a
        // 5-minute window), but placed so that a covering pane would have
        // to start inside (1.2, 1.4] minutes — which contains no 1-minute
        // hop boundary. No physical window ever counts all 5.
        let mut e = engine("fig1", 5, 1);
        let times = [1.4, 2.5, 3.5, 4.5, 6.2];
        let mut max_emitted_count = 0i64;
        for (i, m) in times.iter().enumerate() {
            let _ = i;
            let ts = Timestamp::from_millis((m * MIN as f64) as i64);
            for em in e.process(b"card", ts, &[Value::Float(1.0)]).unwrap() {
                if let Some(Value::Int(c)) = em.values.first() {
                    max_emitted_count = max_emitted_count.max(*c);
                }
            }
        }
        // Drain remaining panes far in the future.
        for em in e
            .process(b"other", Timestamp::from_millis(20 * MIN), &[Value::Float(0.0)])
            .unwrap()
        {
            if em.key == b"card" {
                if let Some(Value::Int(c)) = em.values.first() {
                    max_emitted_count = max_emitted_count.max(*c);
                }
            }
        }
        assert!(
            max_emitted_count <= 4,
            "hopping windows must never see all 5 events, saw {max_emitted_count}"
        );
    }

    #[test]
    fn emissions_cover_correct_ranges() {
        let mut e = engine("ranges", 4, 2); // panes of 4 min every 2 min
        // Events at t=1min and t=3min for one key.
        e.process(b"k", Timestamp::from_millis(MIN), &[Value::Float(10.0)])
            .unwrap();
        e.process(b"k", Timestamp::from_millis(3 * MIN), &[Value::Float(20.0)])
            .unwrap();
        // Advance far: all panes emit.
        let emissions = e
            .process(b"z", Timestamp::from_millis(30 * MIN), &[Value::Float(0.0)])
            .unwrap();
        let for_k: Vec<&Emission> = emissions.iter().filter(|e| e.key == b"k").collect();
        assert!(!for_k.is_empty());
        for em in &for_k {
            // Pane [-2, 2): only the 1-min event (count 1, sum 10).
            if em.pane_start == Timestamp::from_millis(-2 * MIN) {
                assert_eq!(em.values[0], Value::Int(1));
                assert_eq!(em.values[1], Value::Float(10.0));
            }
            // Pane [0, 4): both events (count 2, sum 30).
            if em.pane_start == Timestamp::from_millis(0) {
                assert_eq!(em.values[0], Value::Int(2));
                assert_eq!(em.values[1], Value::Float(30.0));
            }
            // Pane [2, 6): only the 3-min event.
            if em.pane_start == Timestamp::from_millis(2 * MIN) {
                assert_eq!(em.values[0], Value::Int(1));
                assert_eq!(em.values[1], Value::Float(20.0));
            }
        }
    }

    #[test]
    fn emitted_states_are_deleted() {
        let mut e = engine("cleanup", 2, 1);
        for i in 0..10 {
            e.process(
                b"k",
                Timestamp::from_millis(i * MIN),
                &[Value::Float(1.0)],
            )
            .unwrap();
        }
        assert!(e.stats().expirations > 0);
        // Open panes bounded by pane_count (+1 during transitions) per key.
        assert!(
            e.open_panes() <= 3,
            "open panes {} should stay bounded",
            e.open_panes()
        );
    }

    #[test]
    fn answers_come_from_last_emission() {
        let mut e = engine("answers", 2, 1);
        e.process(b"k", Timestamp::from_millis(0), &[Value::Float(5.0)])
            .unwrap();
        assert!(e.answer(b"k").is_none(), "nothing emitted yet");
        // Watermark to 2min fires the pane [-1min, 1min) and [0, 2min).
        e.process(b"k", Timestamp::from_millis(2 * MIN), &[Value::Float(7.0)])
            .unwrap();
        let ans = e.answer(b"k").expect("emitted");
        assert_eq!(ans.values[0], Value::Int(1));
        assert_eq!(ans.values[1], Value::Float(5.0));
    }

    #[test]
    fn rejects_bad_config() {
        assert!(HoppingEngine::open(
            &fresh("bad1"),
            HoppingConfig {
                window: TimeDelta::from_minutes(5),
                hop: TimeDelta::from_minutes(2), // does not divide
                aggs: vec![],
                store: DbOptions::default(),
            }
        )
        .is_err());
        assert!(HoppingEngine::open(
            &fresh("bad2"),
            HoppingConfig {
                window: TimeDelta::from_minutes(5),
                hop: TimeDelta::ZERO,
                aggs: vec![],
                store: DbOptions::default(),
            }
        )
        .is_err());
    }

    #[test]
    fn distinct_keys_have_independent_panes() {
        let mut e = engine("keys", 4, 2);
        e.process(b"a", Timestamp::from_millis(MIN), &[Value::Float(1.0)])
            .unwrap();
        e.process(b"b", Timestamp::from_millis(MIN), &[Value::Float(2.0)])
            .unwrap();
        let emissions = e
            .process(b"c", Timestamp::from_millis(30 * MIN), &[Value::Float(0.0)])
            .unwrap();
        let a_total: i64 = emissions
            .iter()
            .filter(|e| e.key == b"a")
            .filter_map(|e| e.values.first().and_then(Value::as_i64))
            .max()
            .unwrap_or(0);
        let b_sum: f64 = emissions
            .iter()
            .filter(|e| e.key == b"b")
            .filter_map(|e| e.values.get(1).and_then(Value::as_f64))
            .fold(0.0, f64::max);
        assert_eq!(a_total, 1);
        assert_eq!(b_sum, 2.0);
    }
}
