//! Property tests for the consumer-group coordinator: under arbitrary
//! membership churn, the Kafka guarantees Railgun depends on (§3.3) must
//! hold at every generation.

use std::collections::HashSet;
use std::sync::Arc;

use proptest::prelude::*;

use railgun_messaging::{
    Consumer, MessageBus, Producer, RoundRobinStrategy, StickyStrategy, TopicPartition,
};

/// A scripted churn step.
#[derive(Debug, Clone)]
enum Step {
    Join,
    Leave(usize),
    Produce(u16),
    PollAll,
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            3 => Just(Step::Join),
            2 => (0usize..8).prop_map(Step::Leave),
            3 => any::<u16>().prop_map(Step::Produce),
            3 => Just(Step::PollAll),
        ],
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// After any churn sequence: every partition has exactly one owner
    /// among live members, and every produced record is consumed **at
    /// least once** across the group (no loss). Duplicate delivery across
    /// a rebalance is legal — Kafka is at-least-once, and Railgun layers
    /// id-based dedup on top (§3.3); the test asserts the coverage set.
    #[test]
    fn group_assignment_stays_complete_and_exclusive(
        steps in arb_steps(),
        partitions in 1u32..8,
        sticky in any::<bool>(),
    ) {
        let bus = MessageBus::with_defaults();
        bus.create_topic("t", partitions, 1).unwrap();
        let producer = Producer::new(bus.clone());
        let mut consumers: Vec<Consumer> = Vec::new();
        let strategy = || -> Arc<dyn railgun_messaging::AssignmentStrategy> {
            if sticky { Arc::new(StickyStrategy) } else { Arc::new(RoundRobinStrategy) }
        };
        // Start with one member.
        let mut c = Consumer::new(bus.clone());
        c.subscribe("g", &["t"], vec![], strategy()).unwrap();
        consumers.push(c);
        let mut produced: Vec<(TopicPartition, u64)> = Vec::new();
        let mut consumed: HashSet<(TopicPartition, u64)> = HashSet::new();

        let drain = |consumers: &mut Vec<Consumer>,
                         consumed: &mut HashSet<(TopicPartition, u64)>| {
            // Poll in rounds so everybody sees its new assignment first.
            for _ in 0..3 {
                for c in consumers.iter_mut() {
                    if let Ok(polled) = c.poll(1024) {
                        for m in &polled.messages {
                            consumed.insert((m.topic_partition(), m.offset));
                            c.commit(&m.topic_partition(), m.offset + 1).ok();
                        }
                    }
                }
            }
        };

        for step in steps {
            match step {
                Step::Join => {
                    if consumers.len() < 8 {
                        let mut c = Consumer::new(bus.clone());
                        c.subscribe("g", &["t"], vec![], strategy()).unwrap();
                        consumers.push(c);
                    }
                }
                Step::Leave(i) => {
                    if consumers.len() > 1 {
                        let idx = i % consumers.len();
                        let mut gone = consumers.remove(idx);
                        // Drain before leaving so no in-flight positions are
                        // lost (graceful shutdown commits first).
                        if let Ok(polled) = gone.poll(1024) {
                            for m in &polled.messages {
                                consumed.insert((m.topic_partition(), m.offset));
                                gone.commit(&m.topic_partition(), m.offset + 1).ok();
                            }
                        }
                        gone.unsubscribe();
                    }
                }
                Step::Produce(k) => {
                    let (tp, offset) = producer
                        .send("t", &k.to_le_bytes(), vec![1, 2, 3])
                        .unwrap();
                    produced.push((tp, offset));
                }
                Step::PollAll => drain(&mut consumers, &mut consumed),
            }
            // Invariant: the group's assignment covers every partition
            // exactly once across live members.
            let assignment = bus.group_assignment("g");
            let mut seen: HashSet<TopicPartition> = HashSet::new();
            for tps in assignment.values() {
                for tp in tps {
                    prop_assert!(seen.insert(tp.clone()), "{tp} owned twice");
                }
            }
            prop_assert_eq!(
                seen.len() as u32,
                partitions,
                "every partition must be owned"
            );
        }
        // Final drain: every produced record must have been delivered to
        // the group at least once (no loss).
        drain(&mut consumers, &mut consumed);
        drain(&mut consumers, &mut consumed);
        for rec in &produced {
            prop_assert!(consumed.contains(rec), "lost record {rec:?}");
        }
    }
}
