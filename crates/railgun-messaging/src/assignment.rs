//! Pluggable partition-assignment strategies for consumer groups.
//!
//! Kafka lets the group coordinator delegate partition assignment to a
//! strategy agreed by the group (§4.2). Railgun installs its own sticky,
//! locality-aware strategy (in `railgun-core`); this module defines the
//! interface plus two reference strategies used in tests and ablations.

use std::collections::HashMap;

use crate::record::TopicPartition;

/// Identifier of a group member (consumer).
pub type MemberId = u64;

/// What the coordinator knows about one member at rebalance time.
#[derive(Debug, Clone)]
pub struct MemberInfo {
    pub id: MemberId,
    /// Opaque metadata supplied at subscribe time. Railgun encodes the
    /// physical node and processor-unit identity here so its strategy can
    /// enforce the one-copy-per-node invariant.
    pub metadata: Vec<u8>,
    /// The member's assignment in the previous generation (empty for new
    /// members). Sticky strategies minimize movement against this.
    pub previous: Vec<TopicPartition>,
}

/// Everything a strategy sees when computing an assignment.
#[derive(Debug, Clone)]
pub struct AssignmentContext {
    /// Live members, in joining order.
    pub members: Vec<MemberInfo>,
    /// Every partition of every subscribed topic, sorted.
    pub partitions: Vec<TopicPartition>,
}

/// A partition-assignment strategy. Must assign every partition to exactly
/// one member (the coordinator verifies this).
pub trait AssignmentStrategy: Send + Sync {
    /// Compute the assignment for a new generation.
    fn assign(&self, ctx: &AssignmentContext) -> HashMap<MemberId, Vec<TopicPartition>>;

    /// Human-readable name for diagnostics.
    fn name(&self) -> &str;
}

/// Round-robin assignment: partitions dealt to members in order. Simple,
/// fair, maximally *non*-sticky — the ablation baseline against Railgun's
/// strategy in the `micro_rebalance` bench.
#[derive(Debug, Default, Clone, Copy)]
pub struct RoundRobinStrategy;

impl AssignmentStrategy for RoundRobinStrategy {
    fn assign(&self, ctx: &AssignmentContext) -> HashMap<MemberId, Vec<TopicPartition>> {
        let mut out: HashMap<MemberId, Vec<TopicPartition>> = ctx
            .members
            .iter()
            .map(|m| (m.id, Vec::new()))
            .collect();
        if ctx.members.is_empty() {
            return out;
        }
        for (i, tp) in ctx.partitions.iter().enumerate() {
            let member = &ctx.members[i % ctx.members.len()];
            out.get_mut(&member.id).expect("seeded above").push(tp.clone());
        }
        out
    }

    fn name(&self) -> &str {
        "round-robin"
    }
}

/// Kafka-style sticky assignment: keep previous owners where possible,
/// then spread unassigned partitions to the least-loaded members, capping
/// per-member load at ceil(partitions / members).
#[derive(Debug, Default, Clone, Copy)]
pub struct StickyStrategy;

impl AssignmentStrategy for StickyStrategy {
    fn assign(&self, ctx: &AssignmentContext) -> HashMap<MemberId, Vec<TopicPartition>> {
        let mut out: HashMap<MemberId, Vec<TopicPartition>> = ctx
            .members
            .iter()
            .map(|m| (m.id, Vec::new()))
            .collect();
        if ctx.members.is_empty() {
            return out;
        }
        let cap = ctx.partitions.len().div_ceil(ctx.members.len());
        let mut unassigned: Vec<TopicPartition> = Vec::new();
        // Phase 1: stickiness under the load cap.
        let mut owner: HashMap<&TopicPartition, MemberId> = HashMap::new();
        for m in &ctx.members {
            for tp in &m.previous {
                owner.entry(tp).or_insert(m.id);
            }
        }
        for tp in &ctx.partitions {
            match owner.get(tp) {
                Some(&m) if out.get(&m).map(Vec::len).unwrap_or(usize::MAX) < cap => {
                    out.get_mut(&m).expect("member exists").push(tp.clone());
                }
                _ => unassigned.push(tp.clone()),
            }
        }
        // Phase 2: least-loaded fill.
        for tp in unassigned {
            let target = ctx
                .members
                .iter()
                .map(|m| m.id)
                .min_by_key(|id| out[id].len())
                .expect("non-empty members");
            out.get_mut(&target).expect("member exists").push(tp);
        }
        out
    }

    fn name(&self) -> &str {
        "sticky"
    }
}

/// Count how many partitions moved owners between two generations — the
/// data-shuffle metric minimized by sticky strategies (§4.2).
pub fn moved_partitions(
    before: &HashMap<MemberId, Vec<TopicPartition>>,
    after: &HashMap<MemberId, Vec<TopicPartition>>,
) -> usize {
    let mut prev_owner: HashMap<&TopicPartition, MemberId> = HashMap::new();
    for (m, tps) in before {
        for tp in tps {
            prev_owner.insert(tp, *m);
        }
    }
    let mut moved = 0;
    for (m, tps) in after {
        for tp in tps {
            if prev_owner.get(tp).is_some_and(|old| old != m) {
                moved += 1;
            }
        }
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(members: &[(u64, Vec<TopicPartition>)], parts: usize) -> AssignmentContext {
        AssignmentContext {
            members: members
                .iter()
                .map(|(id, prev)| MemberInfo {
                    id: *id,
                    metadata: Vec::new(),
                    previous: prev.clone(),
                })
                .collect(),
            partitions: (0..parts as u32)
                .map(|p| TopicPartition::new("t", p))
                .collect(),
        }
    }

    fn assert_complete(
        assignment: &HashMap<MemberId, Vec<TopicPartition>>,
        parts: usize,
    ) {
        let mut seen = std::collections::HashSet::new();
        for tps in assignment.values() {
            for tp in tps {
                assert!(seen.insert(tp.clone()), "{tp} assigned twice");
            }
        }
        assert_eq!(seen.len(), parts, "every partition assigned exactly once");
    }

    #[test]
    fn round_robin_is_fair_and_complete() {
        let a = RoundRobinStrategy.assign(&ctx(&[(1, vec![]), (2, vec![]), (3, vec![])], 9));
        assert_complete(&a, 9);
        for tps in a.values() {
            assert_eq!(tps.len(), 3);
        }
    }

    #[test]
    fn sticky_respects_previous_owners() {
        let prev1: Vec<_> = (0..3u32).map(|p| TopicPartition::new("t", p)).collect();
        let prev2: Vec<_> = (3..6u32).map(|p| TopicPartition::new("t", p)).collect();
        let a = StickyStrategy.assign(&ctx(&[(1, prev1.clone()), (2, prev2.clone())], 6));
        assert_complete(&a, 6);
        assert_eq!(a[&1], prev1);
        assert_eq!(a[&2], prev2);
    }

    #[test]
    fn sticky_moves_minimum_on_member_join() {
        let prev1: Vec<_> = (0..6u32).map(|p| TopicPartition::new("t", p)).collect();
        let before: HashMap<_, _> = [(1u64, prev1.clone())].into();
        let a = StickyStrategy.assign(&ctx(&[(1, prev1), (2, vec![])], 6));
        assert_complete(&a, 6);
        // Cap = 3, so exactly 3 move to the new member.
        assert_eq!(a[&1].len(), 3);
        assert_eq!(a[&2].len(), 3);
        assert_eq!(moved_partitions(&before, &a), 3);
    }

    #[test]
    fn sticky_reassigns_dead_members_partitions() {
        // Member 2 left; its partitions spread over the survivors.
        let prev1: Vec<_> = (0..2u32).map(|p| TopicPartition::new("t", p)).collect();
        let a = StickyStrategy.assign(&ctx(&[(1, prev1.clone())], 6));
        assert_complete(&a, 6);
        assert!(a[&1].starts_with(&prev1));
    }

    #[test]
    fn empty_members_yields_empty_assignment() {
        let a = StickyStrategy.assign(&ctx(&[], 4));
        assert!(a.is_empty());
        let a = RoundRobinStrategy.assign(&ctx(&[], 4));
        assert!(a.is_empty());
    }

    #[test]
    fn moved_partitions_counts_only_changes() {
        let tp = |p| TopicPartition::new("t", p);
        let before: HashMap<_, _> = [(1u64, vec![tp(0), tp(1)]), (2u64, vec![tp(2)])].into();
        let after: HashMap<_, _> = [(1u64, vec![tp(0)]), (2u64, vec![tp(2), tp(1)])].into();
        assert_eq!(moved_partitions(&before, &after), 1);
    }
}
