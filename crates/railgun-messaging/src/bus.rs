//! The in-process message bus: topics, partitions, and group coordination.
//!
//! This is the reproduction's stand-in for a Kafka broker cluster (§3.3,
//! DESIGN.md substitution #1). It provides exactly the abstractions Railgun
//! exploits:
//!
//! * partitioned topics with **pull-based, offset-addressed consumption**
//!   (rewind & replay for recovery);
//! * **key-hash routing** so one entity always lands in one partition;
//! * **consumer groups** with heartbeats, liveness expiry, generations and
//!   a pluggable assignment strategy — exactly one active consumer per
//!   (topic, partition) per group;
//! * **manual assignment** outside any group (used by replica consumers,
//!   which by design all subscribe to the same partitions, §4.2).
//!
//! Time is logical: the harness advances the bus clock explicitly with
//! [`MessageBus::advance_to`], which makes failure detection deterministic
//! in tests and lets the simulation drive everything from virtual time.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use railgun_types::{RailgunError, Result};

use crate::assignment::{
    AssignmentContext, AssignmentStrategy, MemberId, MemberInfo,
};
use crate::log::PartitionLog;
use crate::record::TopicPartition;

/// Bus-wide configuration.
#[derive(Debug, Clone)]
pub struct BusConfig {
    /// Expel a group member if it has not heartbeated for this long.
    pub session_timeout_ms: u64,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            session_timeout_ms: 10_000,
        }
    }
}

/// Counters for benches and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    pub records_produced: u64,
    pub bytes_produced: u64,
    pub records_consumed: u64,
    pub rebalances: u64,
}

pub(crate) struct TopicState {
    pub partitions: Vec<PartitionLog>,
    /// Declared replication factor — recorded for fidelity with the paper's
    /// deployment (replication 3 in production, 1 in the small benches);
    /// the in-process broker does not lose data so it is informational.
    pub replication: u32,
}

pub(crate) struct GroupMember {
    pub info: MemberInfo,
    pub last_heartbeat_ms: u64,
    pub topics: Vec<String>,
    /// Assignment for the current generation.
    pub assignment: Vec<TopicPartition>,
    /// Generation the member has acknowledged (via poll).
    pub seen_generation: u64,
}

pub(crate) struct GroupState {
    pub members: HashMap<MemberId, GroupMember>,
    pub strategy: Arc<dyn AssignmentStrategy>,
    pub generation: u64,
    pub committed: HashMap<TopicPartition, u64>,
    pub needs_rebalance: bool,
}

pub(crate) struct BusInner {
    pub topics: HashMap<String, TopicState>,
    pub groups: HashMap<String, GroupState>,
    pub now_ms: u64,
    pub next_member_id: MemberId,
    pub stats: BusStats,
    pub config: BusConfig,
}

/// Handle to the shared in-process bus. Cheap to clone.
#[derive(Clone)]
pub struct MessageBus {
    pub(crate) inner: Arc<Mutex<BusInner>>,
}

impl MessageBus {
    /// Create a bus with the given configuration.
    pub fn new(config: BusConfig) -> Self {
        MessageBus {
            inner: Arc::new(Mutex::new(BusInner {
                topics: HashMap::new(),
                groups: HashMap::new(),
                now_ms: 0,
                next_member_id: 1,
                stats: BusStats::default(),
                config,
            })),
        }
    }

    /// Create a bus with default configuration.
    pub fn with_defaults() -> Self {
        Self::new(BusConfig::default())
    }

    /// Create `partitions` partitions under `topic`.
    pub fn create_topic(&self, topic: &str, partitions: u32, replication: u32) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.topics.contains_key(topic) {
            return Err(RailgunError::InvalidArgument(format!(
                "topic `{topic}` already exists"
            )));
        }
        if partitions == 0 {
            return Err(RailgunError::InvalidArgument(
                "topics need at least one partition".into(),
            ));
        }
        inner.topics.insert(
            topic.to_owned(),
            TopicState {
                partitions: (0..partitions).map(|_| PartitionLog::new()).collect(),
                replication,
            },
        );
        // Topic changes trigger rebalances for groups subscribed to it.
        for g in inner.groups.values_mut() {
            if g.members.values().any(|m| m.topics.iter().any(|t| t == topic)) {
                g.needs_rebalance = true;
            }
        }
        Ok(())
    }

    /// Delete a topic (streams removed by the client, §3.1).
    pub fn delete_topic(&self, topic: &str) -> Result<()> {
        let mut inner = self.inner.lock();
        inner
            .topics
            .remove(topic)
            .ok_or_else(|| RailgunError::NotFound(format!("topic `{topic}`")))?;
        for g in inner.groups.values_mut() {
            g.needs_rebalance = true;
        }
        Ok(())
    }

    /// Names of all topics.
    pub fn topics(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.lock().topics.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of partitions of `topic`.
    pub fn partition_count(&self, topic: &str) -> Result<u32> {
        let inner = self.inner.lock();
        inner
            .topics
            .get(topic)
            .map(|t| t.partitions.len() as u32)
            .ok_or_else(|| RailgunError::NotFound(format!("topic `{topic}`")))
    }

    /// Declared replication factor of `topic` (§3.3 — informational in the
    /// in-process broker, which does not lose data).
    pub fn replication_factor(&self, topic: &str) -> Result<u32> {
        let inner = self.inner.lock();
        inner
            .topics
            .get(topic)
            .map(|t| t.replication)
            .ok_or_else(|| RailgunError::NotFound(format!("topic `{topic}`")))
    }

    /// Every (topic, partition) of the given topics, sorted.
    pub fn partitions_of(&self, topics: &[String]) -> Vec<TopicPartition> {
        let inner = self.inner.lock();
        let mut out = Vec::new();
        for t in topics {
            if let Some(ts) = inner.topics.get(t) {
                for p in 0..ts.partitions.len() as u32 {
                    out.push(TopicPartition::new(t.clone(), p));
                }
            }
        }
        out.sort();
        out
    }

    /// Advance the logical clock; expels members whose heartbeats expired
    /// and recomputes assignments for affected groups.
    pub fn advance_to(&self, now_ms: u64) {
        let mut inner = self.inner.lock();
        if now_ms <= inner.now_ms {
            return;
        }
        inner.now_ms = now_ms;
        let timeout = inner.config.session_timeout_ms;
        let mut any_expired = false;
        for g in inner.groups.values_mut() {
            let before = g.members.len();
            g.members
                .retain(|_, m| now_ms.saturating_sub(m.last_heartbeat_ms) <= timeout);
            if g.members.len() != before {
                g.needs_rebalance = true;
                any_expired = true;
            }
        }
        if any_expired {
            Self::run_pending_rebalances(&mut inner);
        }
    }

    /// Current logical time.
    pub fn now_ms(&self) -> u64 {
        self.inner.lock().now_ms
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> BusStats {
        self.inner.lock().stats
    }

    /// The current generation of `group` (0 if unknown).
    pub fn group_generation(&self, group: &str) -> u64 {
        self.inner
            .lock()
            .groups
            .get(group)
            .map(|g| g.generation)
            .unwrap_or(0)
    }

    /// The full current assignment of `group`, by member.
    pub fn group_assignment(&self, group: &str) -> HashMap<MemberId, Vec<TopicPartition>> {
        self.inner
            .lock()
            .groups
            .get(group)
            .map(|g| {
                g.members
                    .iter()
                    .map(|(id, m)| (*id, m.assignment.clone()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Committed offset for (group, tp), if any.
    pub fn committed_offset(&self, group: &str, tp: &TopicPartition) -> Option<u64> {
        self.inner
            .lock()
            .groups
            .get(group)
            .and_then(|g| g.committed.get(tp).copied())
    }

    /// Truncate a partition's log below `offset` (retention management).
    pub fn truncate_partition(&self, tp: &TopicPartition, offset: u64) -> Result<()> {
        let mut inner = self.inner.lock();
        let topic = inner
            .topics
            .get_mut(&tp.topic)
            .ok_or_else(|| RailgunError::NotFound(format!("topic `{}`", tp.topic)))?;
        let log = topic
            .partitions
            .get_mut(tp.partition as usize)
            .ok_or_else(|| RailgunError::NotFound(format!("partition {tp}")))?;
        log.truncate_before(offset);
        Ok(())
    }

    /// End offset (next to be written) of a partition.
    pub fn end_offset(&self, tp: &TopicPartition) -> Result<u64> {
        let inner = self.inner.lock();
        let topic = inner
            .topics
            .get(&tp.topic)
            .ok_or_else(|| RailgunError::NotFound(format!("topic `{}`", tp.topic)))?;
        topic
            .partitions
            .get(tp.partition as usize)
            .map(PartitionLog::end_offset)
            .ok_or_else(|| RailgunError::NotFound(format!("partition {tp}")))
    }

    /// Recompute assignments for every group flagged for rebalance.
    pub(crate) fn run_pending_rebalances(inner: &mut BusInner) {
        // Collect topic partition lists first (borrow split).
        let topic_parts: HashMap<String, u32> = inner
            .topics
            .iter()
            .map(|(name, t)| (name.clone(), t.partitions.len() as u32))
            .collect();
        for g in inner.groups.values_mut() {
            if !g.needs_rebalance {
                continue;
            }
            g.needs_rebalance = false;
            g.generation += 1;
            inner.stats.rebalances += 1;
            // Union of subscribed topics across members.
            let mut partitions: Vec<TopicPartition> = Vec::new();
            let mut topics: Vec<&String> = g
                .members
                .values()
                .flat_map(|m| m.topics.iter())
                .collect();
            topics.sort();
            topics.dedup();
            for t in topics {
                if let Some(&n) = topic_parts.get(t.as_str()) {
                    for p in 0..n {
                        partitions.push(TopicPartition::new(t.clone(), p));
                    }
                }
            }
            partitions.sort();
            let mut members: Vec<MemberInfo> = g
                .members
                .values()
                .map(|m| MemberInfo {
                    id: m.info.id,
                    metadata: m.info.metadata.clone(),
                    previous: m.assignment.clone(),
                })
                .collect();
            members.sort_by_key(|m| m.id);
            let ctx = AssignmentContext {
                members,
                partitions: partitions.clone(),
            };
            let assignment = g.strategy.assign(&ctx);
            // Verify the strategy's contract: each partition exactly once.
            let mut seen = std::collections::HashSet::new();
            let valid = assignment
                .values()
                .flatten()
                .all(|tp| seen.insert(tp.clone()))
                && seen.len() == partitions.len();
            debug_assert!(valid, "strategy produced an invalid assignment");
            for m in g.members.values_mut() {
                m.assignment = assignment.get(&m.info.id).cloned().unwrap_or_default();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_lifecycle() {
        let bus = MessageBus::with_defaults();
        bus.create_topic("card", 4, 1).unwrap();
        assert!(bus.create_topic("card", 4, 1).is_err());
        assert!(bus.create_topic("bad", 0, 1).is_err());
        assert_eq!(bus.partition_count("card").unwrap(), 4);
        assert_eq!(bus.replication_factor("card").unwrap(), 1);
        assert_eq!(bus.topics(), vec!["card".to_string()]);
        assert_eq!(
            bus.partitions_of(&["card".to_string()]).len(),
            4
        );
        bus.delete_topic("card").unwrap();
        assert!(bus.delete_topic("card").is_err());
        assert!(bus.partition_count("card").is_err());
    }

    #[test]
    fn clock_is_monotonic() {
        let bus = MessageBus::with_defaults();
        bus.advance_to(100);
        bus.advance_to(50); // ignored
        assert_eq!(bus.now_ms(), 100);
    }

    #[test]
    fn end_offset_and_truncate() {
        let bus = MessageBus::with_defaults();
        bus.create_topic("t", 1, 1).unwrap();
        let tp = TopicPartition::new("t", 0);
        assert_eq!(bus.end_offset(&tp).unwrap(), 0);
        let producer = crate::producer::Producer::new(bus.clone());
        producer.send("t", b"k", b"v".to_vec()).unwrap();
        producer.send("t", b"k", b"v".to_vec()).unwrap();
        assert_eq!(bus.end_offset(&tp).unwrap(), 2);
        bus.truncate_partition(&tp, 1).unwrap();
        assert_eq!(bus.end_offset(&tp).unwrap(), 2);
    }
}
