//! The in-process message bus: topics, partitions, and group coordination.
//!
//! This is the reproduction's stand-in for a Kafka broker cluster (§3.3,
//! DESIGN.md substitution #1). It provides exactly the abstractions Railgun
//! exploits:
//!
//! * partitioned topics with **pull-based, offset-addressed consumption**
//!   (rewind & replay for recovery);
//! * **key-hash routing** so one entity always lands in one partition;
//! * **consumer groups** with heartbeats, liveness expiry, generations and
//!   a pluggable assignment strategy — exactly one active consumer per
//!   (topic, partition) per group;
//! * **manual assignment** outside any group (used by replica consumers,
//!   which by design all subscribe to the same partitions, §4.2).
//!
//! Time is logical by default: the harness advances the bus clock
//! explicitly with [`MessageBus::advance_to`], which makes failure
//! detection deterministic in tests and lets the simulation drive
//! everything from virtual time. The threaded runtime instead switches the
//! bus to [`BusClock::Auto`], where the clock follows wall time (with a
//! monotonic guard) so heartbeats and session expiry work without an
//! external driver.
//!
//! The bus also carries a blocking wakeup path for worker threads: every
//! mutation that could unblock a consumer (produce, assignment change,
//! topic change, member expiry) bumps an internal version counter and
//! signals a [`std::sync::Condvar`], so parked workers
//! ([`crate::Consumer::poll_blocking`], [`MessageBus::wait_for_activity`])
//! wake immediately instead of spinning.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use railgun_types::{RailgunError, Result};

use crate::assignment::{
    AssignmentContext, AssignmentStrategy, MemberId, MemberInfo,
};
use crate::log::PartitionLog;
use crate::record::TopicPartition;

/// How the bus clock advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BusClock {
    /// Logical time, driven explicitly by [`MessageBus::advance_to`]
    /// (deterministic tests, discrete-event simulation).
    #[default]
    Manual,
    /// Wall-clock time: `now_ms` follows a monotonic `Instant` anchored
    /// when the mode was entered, and every clock read runs heartbeat
    /// expiry. Used by the threaded runtime where no harness pumps time.
    Auto,
}

/// Bus-wide configuration.
#[derive(Debug, Clone)]
pub struct BusConfig {
    /// Expel a group member if it has not heartbeated for this long.
    pub session_timeout_ms: u64,
    /// Clock mode the bus starts in (switchable via
    /// [`MessageBus::set_clock`]).
    pub clock: BusClock,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            session_timeout_ms: 10_000,
            clock: BusClock::Manual,
        }
    }
}

/// Counters for benches and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    pub records_produced: u64,
    pub bytes_produced: u64,
    pub records_consumed: u64,
    /// Multi-record [`crate::Producer::send_batch`] calls — each covered
    /// N records with one lock acquisition and one wakeup.
    pub batches_produced: u64,
    pub rebalances: u64,
}

pub(crate) struct TopicState {
    pub partitions: Vec<PartitionLog>,
    /// Declared replication factor — recorded for fidelity with the paper's
    /// deployment (replication 3 in production, 1 in the small benches);
    /// the in-process broker does not lose data so it is informational.
    pub replication: u32,
}

pub(crate) struct GroupMember {
    pub info: MemberInfo,
    pub last_heartbeat_ms: u64,
    pub topics: Vec<String>,
    /// Assignment for the current generation.
    pub assignment: Vec<TopicPartition>,
    /// Generation the member has acknowledged (via poll).
    pub seen_generation: u64,
}

pub(crate) struct GroupState {
    pub members: HashMap<MemberId, GroupMember>,
    pub strategy: Arc<dyn AssignmentStrategy>,
    pub generation: u64,
    pub committed: HashMap<TopicPartition, u64>,
    pub needs_rebalance: bool,
}

/// Anchor for [`BusClock::Auto`]: wall time elapsed since `epoch` is added
/// to `base_ms` (the logical time when auto mode was entered), keeping the
/// clock continuous and monotonic across mode switches.
pub(crate) struct AutoClock {
    epoch: Instant,
    base_ms: u64,
}

pub(crate) struct BusInner {
    pub topics: HashMap<String, TopicState>,
    pub groups: HashMap<String, GroupState>,
    pub now_ms: u64,
    pub next_member_id: MemberId,
    pub stats: BusStats,
    pub config: BusConfig,
    /// Bumped on every mutation that could unblock a consumer; waiters
    /// compare against the value they observed to avoid missed wakeups.
    pub version: u64,
    pub auto: Option<AutoClock>,
}

/// Handle to the shared in-process bus. Cheap to clone.
#[derive(Clone)]
pub struct MessageBus {
    pub(crate) inner: Arc<Mutex<BusInner>>,
    /// Signaled (with `inner`'s mutex) whenever `inner.version` changes.
    pub(crate) wakeup: Arc<std::sync::Condvar>,
}

impl MessageBus {
    /// Create a bus with the given configuration.
    pub fn new(config: BusConfig) -> Self {
        let auto = match config.clock {
            BusClock::Manual => None,
            BusClock::Auto => Some(AutoClock {
                epoch: Instant::now(),
                base_ms: 0,
            }),
        };
        MessageBus {
            inner: Arc::new(Mutex::new(BusInner {
                topics: HashMap::new(),
                groups: HashMap::new(),
                now_ms: 0,
                next_member_id: 1,
                stats: BusStats::default(),
                config,
                version: 0,
                auto,
            })),
            wakeup: Arc::new(std::sync::Condvar::new()),
        }
    }

    /// Create a bus with default configuration.
    pub fn with_defaults() -> Self {
        Self::new(BusConfig::default())
    }

    /// Create `partitions` partitions under `topic`.
    pub fn create_topic(&self, topic: &str, partitions: u32, replication: u32) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.topics.contains_key(topic) {
            return Err(RailgunError::InvalidArgument(format!(
                "topic `{topic}` already exists"
            )));
        }
        if partitions == 0 {
            return Err(RailgunError::InvalidArgument(
                "topics need at least one partition".into(),
            ));
        }
        inner.topics.insert(
            topic.to_owned(),
            TopicState {
                partitions: (0..partitions).map(|_| PartitionLog::new()).collect(),
                replication,
            },
        );
        // Topic changes trigger rebalances for groups subscribed to it —
        // run them now rather than leaving the flag for the next
        // membership event, so subscribed consumers see the new
        // partitions on their very next poll (rebalance-detection latency
        // is part of the elastic-membership downtime budget).
        for g in inner.groups.values_mut() {
            if g.members.values().any(|m| m.topics.iter().any(|t| t == topic)) {
                g.needs_rebalance = true;
            }
        }
        Self::run_pending_rebalances(&mut inner);
        Self::bump(&mut inner);
        drop(inner);
        self.wakeup.notify_all();
        Ok(())
    }

    /// Delete a topic (streams removed by the client, §3.1).
    pub fn delete_topic(&self, topic: &str) -> Result<()> {
        let mut inner = self.inner.lock();
        inner
            .topics
            .remove(topic)
            .ok_or_else(|| RailgunError::NotFound(format!("topic `{topic}`")))?;
        for g in inner.groups.values_mut() {
            g.needs_rebalance = true;
        }
        // As with create_topic: rebalance immediately so stale assignments
        // to the deleted topic do not linger until the next join/leave.
        Self::run_pending_rebalances(&mut inner);
        Self::bump(&mut inner);
        drop(inner);
        self.wakeup.notify_all();
        Ok(())
    }

    /// Names of all topics.
    pub fn topics(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.lock().topics.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of partitions of `topic`.
    pub fn partition_count(&self, topic: &str) -> Result<u32> {
        let inner = self.inner.lock();
        inner
            .topics
            .get(topic)
            .map(|t| t.partitions.len() as u32)
            .ok_or_else(|| RailgunError::NotFound(format!("topic `{topic}`")))
    }

    /// Declared replication factor of `topic` (§3.3 — informational in the
    /// in-process broker, which does not lose data).
    pub fn replication_factor(&self, topic: &str) -> Result<u32> {
        let inner = self.inner.lock();
        inner
            .topics
            .get(topic)
            .map(|t| t.replication)
            .ok_or_else(|| RailgunError::NotFound(format!("topic `{topic}`")))
    }

    /// Every (topic, partition) of the given topics, sorted.
    pub fn partitions_of(&self, topics: &[String]) -> Vec<TopicPartition> {
        let inner = self.inner.lock();
        let mut out = Vec::new();
        for t in topics {
            if let Some(ts) = inner.topics.get(t) {
                for p in 0..ts.partitions.len() as u32 {
                    out.push(TopicPartition::new(t.clone(), p));
                }
            }
        }
        out.sort();
        out
    }

    /// Advance the logical clock; expels members whose heartbeats expired
    /// and recomputes assignments for affected groups.
    ///
    /// The clock is **monotonic**: a `now_ms` at or before the current
    /// time is ignored, so a misbehaving driver can never rewind liveness
    /// deadlines (a member heartbeated at t=100 must not be judged against
    /// a clock that moved back to t=50).
    pub fn advance_to(&self, now_ms: u64) {
        let mut inner = self.inner.lock();
        if now_ms <= inner.now_ms {
            return;
        }
        let expired = Self::advance_locked(&mut inner, now_ms);
        if expired {
            // Assignment changed — wake parked consumers so they pick up
            // the new generation promptly.
            Self::bump(&mut inner);
            drop(inner);
            self.wakeup.notify_all();
        }
    }

    /// Move the (already-validated, strictly larger) clock forward and run
    /// heartbeat expiry. Returns true iff any member was expelled.
    pub(crate) fn advance_locked(inner: &mut BusInner, now_ms: u64) -> bool {
        debug_assert!(now_ms > inner.now_ms);
        inner.now_ms = now_ms;
        let timeout = inner.config.session_timeout_ms;
        let mut any_expired = false;
        for g in inner.groups.values_mut() {
            let before = g.members.len();
            g.members
                .retain(|_, m| now_ms.saturating_sub(m.last_heartbeat_ms) <= timeout);
            if g.members.len() != before {
                g.needs_rebalance = true;
                any_expired = true;
            }
        }
        if any_expired {
            Self::run_pending_rebalances(inner);
        }
        any_expired
    }

    /// In [`BusClock::Auto`], pull `now_ms` up to wall time (monotonic) and
    /// run heartbeat expiry; no-op under [`BusClock::Manual`]. Returns true
    /// iff any member was expelled (callers should then notify waiters).
    pub(crate) fn refresh_clock_locked(inner: &mut BusInner) -> bool {
        let Some(auto) = &inner.auto else {
            return false;
        };
        let wall_ms = auto
            .base_ms
            .saturating_add(auto.epoch.elapsed().as_millis() as u64);
        if wall_ms > inner.now_ms {
            let expired = Self::advance_locked(inner, wall_ms);
            if expired {
                Self::bump(inner);
            }
            expired
        } else {
            false
        }
    }

    /// Bump the bus version (call with the lock held before waking).
    pub(crate) fn bump(inner: &mut BusInner) {
        inner.version = inner.version.wrapping_add(1);
    }

    /// Switch the clock mode. Entering [`BusClock::Auto`] anchors wall time
    /// at the current logical time; returning to [`BusClock::Manual`]
    /// freezes the clock at its latest value. Both transitions preserve
    /// monotonicity.
    pub fn set_clock(&self, clock: BusClock) {
        let mut inner = self.inner.lock();
        match clock {
            BusClock::Auto => {
                if inner.auto.is_none() {
                    inner.auto = Some(AutoClock {
                        epoch: Instant::now(),
                        base_ms: inner.now_ms,
                    });
                    inner.config.clock = BusClock::Auto;
                }
            }
            BusClock::Manual => {
                Self::refresh_clock_locked(&mut inner);
                inner.auto = None;
                inner.config.clock = BusClock::Manual;
            }
        }
        Self::bump(&mut inner);
        drop(inner);
        self.wakeup.notify_all();
    }

    /// Current clock mode.
    pub fn clock(&self) -> BusClock {
        self.inner.lock().config.clock
    }

    /// Configured session timeout.
    pub fn session_timeout_ms(&self) -> u64 {
        self.inner.lock().config.session_timeout_ms
    }

    /// Current bus version: changes whenever anything a consumer could
    /// observe changed (produce, assignment, topics, expiry).
    pub fn version(&self) -> u64 {
        let mut inner = self.inner.lock();
        let expired = Self::refresh_clock_locked(&mut inner);
        let v = inner.version;
        drop(inner);
        if expired {
            self.wakeup.notify_all();
        }
        v
    }

    /// Bump the version and wake every parked consumer (used by runtimes
    /// to broadcast a stop signal through the blocking poll path).
    pub fn wake_all(&self) {
        let mut inner = self.inner.lock();
        Self::bump(&mut inner);
        drop(inner);
        self.wakeup.notify_all();
    }

    /// Park the caller until the bus version moves past `seen` or `timeout`
    /// elapses; returns the current version. Spurious wakeups are possible
    /// (callers re-poll regardless). In [`BusClock::Auto`] the clock is
    /// refreshed on both edges so expiry keeps running while workers park.
    pub fn wait_for_activity(&self, seen: u64, timeout: Duration) -> u64 {
        let mut inner = self.inner.lock();
        let mut expired = Self::refresh_clock_locked(&mut inner);
        let mut v = inner.version;
        if v == seen && !expired {
            let (mut guard, _timed_out) = match self.wakeup.wait_timeout(inner, timeout) {
                Ok(pair) => pair,
                Err(poisoned) => poisoned.into_inner(),
            };
            expired = Self::refresh_clock_locked(&mut guard);
            v = guard.version;
            drop(guard);
        } else {
            drop(inner);
        }
        if expired {
            self.wakeup.notify_all();
        }
        v
    }

    /// Current logical time (refreshed first under [`BusClock::Auto`]).
    pub fn now_ms(&self) -> u64 {
        let mut inner = self.inner.lock();
        let expired = Self::refresh_clock_locked(&mut inner);
        let now = inner.now_ms;
        drop(inner);
        if expired {
            self.wakeup.notify_all();
        }
        now
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> BusStats {
        self.inner.lock().stats
    }

    /// The current generation of `group` (0 if unknown).
    pub fn group_generation(&self, group: &str) -> u64 {
        self.inner
            .lock()
            .groups
            .get(group)
            .map(|g| g.generation)
            .unwrap_or(0)
    }

    /// Number of live members of `group` (0 if unknown). Elastic
    /// membership uses this to verify a drained node's consumers have
    /// actually left before the node is removed.
    pub fn group_members(&self, group: &str) -> usize {
        self.inner
            .lock()
            .groups
            .get(group)
            .map(|g| g.members.len())
            .unwrap_or(0)
    }

    /// The full current assignment of `group`, by member.
    pub fn group_assignment(&self, group: &str) -> HashMap<MemberId, Vec<TopicPartition>> {
        self.inner
            .lock()
            .groups
            .get(group)
            .map(|g| {
                g.members
                    .iter()
                    .map(|(id, m)| (*id, m.assignment.clone()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Committed offset for (group, tp), if any.
    pub fn committed_offset(&self, group: &str, tp: &TopicPartition) -> Option<u64> {
        self.inner
            .lock()
            .groups
            .get(group)
            .and_then(|g| g.committed.get(tp).copied())
    }

    /// Truncate a partition's log below `offset` (retention management).
    pub fn truncate_partition(&self, tp: &TopicPartition, offset: u64) -> Result<()> {
        let mut inner = self.inner.lock();
        let topic = inner
            .topics
            .get_mut(&tp.topic)
            .ok_or_else(|| RailgunError::NotFound(format!("topic `{}`", tp.topic)))?;
        let log = topic
            .partitions
            .get_mut(tp.partition as usize)
            .ok_or_else(|| RailgunError::NotFound(format!("partition {tp}")))?;
        log.truncate_before(offset);
        Ok(())
    }

    /// End offset (next to be written) of a partition.
    pub fn end_offset(&self, tp: &TopicPartition) -> Result<u64> {
        let inner = self.inner.lock();
        let topic = inner
            .topics
            .get(&tp.topic)
            .ok_or_else(|| RailgunError::NotFound(format!("topic `{}`", tp.topic)))?;
        topic
            .partitions
            .get(tp.partition as usize)
            .map(PartitionLog::end_offset)
            .ok_or_else(|| RailgunError::NotFound(format!("partition {tp}")))
    }

    /// Recompute assignments for every group flagged for rebalance.
    pub(crate) fn run_pending_rebalances(inner: &mut BusInner) {
        // Collect topic partition lists first (borrow split).
        let topic_parts: HashMap<String, u32> = inner
            .topics
            .iter()
            .map(|(name, t)| (name.clone(), t.partitions.len() as u32))
            .collect();
        for g in inner.groups.values_mut() {
            if !g.needs_rebalance {
                continue;
            }
            g.needs_rebalance = false;
            g.generation += 1;
            inner.stats.rebalances += 1;
            // Union of subscribed topics across members.
            let mut partitions: Vec<TopicPartition> = Vec::new();
            let mut topics: Vec<&String> = g
                .members
                .values()
                .flat_map(|m| m.topics.iter())
                .collect();
            topics.sort();
            topics.dedup();
            for t in topics {
                if let Some(&n) = topic_parts.get(t.as_str()) {
                    for p in 0..n {
                        partitions.push(TopicPartition::new(t.clone(), p));
                    }
                }
            }
            partitions.sort();
            let mut members: Vec<MemberInfo> = g
                .members
                .values()
                .map(|m| MemberInfo {
                    id: m.info.id,
                    metadata: m.info.metadata.clone(),
                    previous: m.assignment.clone(),
                })
                .collect();
            members.sort_by_key(|m| m.id);
            let ctx = AssignmentContext {
                members,
                partitions: partitions.clone(),
            };
            let assignment = g.strategy.assign(&ctx);
            // Verify the strategy's contract: each partition exactly once.
            let mut seen = std::collections::HashSet::new();
            let valid = assignment
                .values()
                .flatten()
                .all(|tp| seen.insert(tp.clone()))
                && seen.len() == partitions.len();
            debug_assert!(valid, "strategy produced an invalid assignment");
            for m in g.members.values_mut() {
                m.assignment = assignment.get(&m.info.id).cloned().unwrap_or_default();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_lifecycle() {
        let bus = MessageBus::with_defaults();
        bus.create_topic("card", 4, 1).unwrap();
        assert!(bus.create_topic("card", 4, 1).is_err());
        assert!(bus.create_topic("bad", 0, 1).is_err());
        assert_eq!(bus.partition_count("card").unwrap(), 4);
        assert_eq!(bus.replication_factor("card").unwrap(), 1);
        assert_eq!(bus.topics(), vec!["card".to_string()]);
        assert_eq!(
            bus.partitions_of(&["card".to_string()]).len(),
            4
        );
        bus.delete_topic("card").unwrap();
        assert!(bus.delete_topic("card").is_err());
        assert!(bus.partition_count("card").is_err());
    }

    #[test]
    fn clock_is_monotonic() {
        let bus = MessageBus::with_defaults();
        bus.advance_to(100);
        bus.advance_to(50); // ignored
        assert_eq!(bus.now_ms(), 100);
    }

    #[test]
    fn regressing_clock_does_not_rewind_liveness_deadlines() {
        // A clock driven backwards must not expel members whose heartbeats
        // are fresh relative to the *real* (monotonic) clock, nor extend
        // the life of stale ones.
        use crate::assignment::StickyStrategy;
        use crate::consumer::Consumer;
        let bus = MessageBus::new(BusConfig {
            session_timeout_ms: 1_000,
            ..BusConfig::default()
        });
        bus.create_topic("t", 2, 1).unwrap();
        let mut c1 = Consumer::new(bus.clone());
        let mut c2 = Consumer::new(bus.clone());
        c1.subscribe("g", &["t"], vec![], std::sync::Arc::new(StickyStrategy))
            .unwrap();
        c2.subscribe("g", &["t"], vec![], std::sync::Arc::new(StickyStrategy))
            .unwrap();
        bus.advance_to(800);
        c1.heartbeat(); // c1 fresh at t=800; c2 last heartbeated at t=0
        bus.advance_to(100); // regress: ignored, deadlines unchanged
        assert_eq!(bus.now_ms(), 800);
        assert_eq!(bus.group_assignment("g").len(), 2, "nobody expelled yet");
        // t=1200: c2 (last heartbeat 0) is stale, c1 (800) is alive. Were
        // the regress honored, now-last_heartbeat would underflow/clamp and
        // c2 would survive.
        bus.advance_to(1_200);
        let members = bus.group_assignment("g");
        assert_eq!(members.len(), 1, "stale member expelled");
        assert!(members.contains_key(&c1.member_id()));
    }

    #[test]
    fn version_changes_on_produce_and_topic_changes() {
        let bus = MessageBus::with_defaults();
        let v0 = bus.version();
        bus.create_topic("t", 1, 1).unwrap();
        let v1 = bus.version();
        assert_ne!(v0, v1);
        let producer = crate::producer::Producer::new(bus.clone());
        producer.send("t", b"k", b"v".to_vec()).unwrap();
        let v2 = bus.version();
        assert_ne!(v1, v2);
        bus.delete_topic("t").unwrap();
        assert_ne!(v2, bus.version());
    }

    #[test]
    fn wait_for_activity_wakes_on_produce() {
        let bus = MessageBus::with_defaults();
        bus.create_topic("t", 1, 1).unwrap();
        let seen = bus.version();
        let waiter = {
            let bus = bus.clone();
            std::thread::spawn(move || {
                let start = Instant::now();
                bus.wait_for_activity(seen, Duration::from_secs(10));
                start.elapsed()
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        crate::producer::Producer::new(bus.clone())
            .send("t", b"k", b"v".to_vec())
            .unwrap();
        let waited = waiter.join().unwrap();
        assert!(
            waited < Duration::from_secs(5),
            "waiter should be woken by the produce, waited {waited:?}"
        );
    }

    #[test]
    fn wait_for_activity_respects_timeout() {
        let bus = MessageBus::with_defaults();
        let seen = bus.version();
        let start = Instant::now();
        let v = bus.wait_for_activity(seen, Duration::from_millis(20));
        assert!(start.elapsed() >= Duration::from_millis(10));
        assert_eq!(v, seen, "nothing happened");
    }

    #[test]
    fn auto_clock_advances_and_expels_without_advance_to() {
        use crate::assignment::StickyStrategy;
        use crate::consumer::Consumer;
        let bus = MessageBus::new(BusConfig {
            session_timeout_ms: 40,
            clock: BusClock::Auto,
        });
        bus.create_topic("t", 2, 1).unwrap();
        let mut c1 = Consumer::new(bus.clone());
        let mut c2 = Consumer::new(bus.clone());
        c1.subscribe("g", &["t"], vec![], std::sync::Arc::new(StickyStrategy))
            .unwrap();
        c2.subscribe("g", &["t"], vec![], std::sync::Arc::new(StickyStrategy))
            .unwrap();
        c1.poll(1).unwrap();
        c2.poll(1).unwrap();
        let t0 = bus.now_ms();
        // c2 goes silent; keep c1 heartbeating past the session timeout.
        // One of these polls observes the expiry-driven rebalance.
        let mut takeover = None;
        for _ in 0..8 {
            std::thread::sleep(Duration::from_millis(10));
            if let Some(a) = c1.poll(1).unwrap().rebalanced {
                takeover = Some(a);
            }
        }
        assert!(bus.now_ms() > t0, "auto clock advances on its own");
        assert_eq!(
            takeover.map(|a| a.len()),
            Some(2),
            "silent member expelled by wall-clock expiry; survivor owns all"
        );
        assert!(c2.poll(1).is_err(), "expelled consumer errors");
    }

    #[test]
    fn set_clock_round_trip_keeps_monotonic_time() {
        let bus = MessageBus::with_defaults();
        bus.advance_to(500);
        bus.set_clock(BusClock::Auto);
        assert_eq!(bus.clock(), BusClock::Auto);
        std::thread::sleep(Duration::from_millis(15));
        let in_auto = bus.now_ms();
        assert!(in_auto >= 500, "auto clock anchored at the logical time");
        bus.set_clock(BusClock::Manual);
        let frozen = bus.now_ms();
        assert!(frozen >= in_auto);
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(bus.now_ms(), frozen, "manual clock is frozen again");
        bus.advance_to(frozen.saturating_sub(10)); // regress still ignored
        assert_eq!(bus.now_ms(), frozen);
    }

    #[test]
    fn end_offset_and_truncate() {
        let bus = MessageBus::with_defaults();
        bus.create_topic("t", 1, 1).unwrap();
        let tp = TopicPartition::new("t", 0);
        assert_eq!(bus.end_offset(&tp).unwrap(), 0);
        let producer = crate::producer::Producer::new(bus.clone());
        producer.send("t", b"k", b"v".to_vec()).unwrap();
        producer.send("t", b"k", b"v".to_vec()).unwrap();
        assert_eq!(bus.end_offset(&tp).unwrap(), 2);
        bus.truncate_partition(&tp, 1).unwrap();
        assert_eq!(bus.end_offset(&tp).unwrap(), 2);
    }
}
