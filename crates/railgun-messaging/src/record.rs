//! Wire-level record types.

use std::fmt;

use bytes::Bytes;

/// A (topic, partition) pair — Railgun's minimal unit of work (§4).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TopicPartition {
    pub topic: String,
    pub partition: u32,
}

impl TopicPartition {
    pub fn new(topic: impl Into<String>, partition: u32) -> Self {
        TopicPartition {
            topic: topic.into(),
            partition,
        }
    }
}

impl fmt::Display for TopicPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.topic, self.partition)
    }
}

/// A record as stored in a partition log.
///
/// The payload is a [`Bytes`] view — typically a zero-copy slice of a
/// batch frame encoded once at the producer — so cloning a record on
/// fetch bumps a reference count instead of copying payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Position in the partition log; consumers poll by offset.
    pub offset: u64,
    /// Partitioning key (e.g. the partitioner entity id, §4).
    pub key: Vec<u8>,
    /// Opaque payload (Railgun serializes events/replies here).
    pub payload: Bytes,
}

/// A record as delivered to a consumer, with its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    pub topic: String,
    pub partition: u32,
    pub offset: u64,
    pub key: Vec<u8>,
    pub payload: Bytes,
}

impl Message {
    /// The (topic, partition) this message came from.
    pub fn topic_partition(&self) -> TopicPartition {
        TopicPartition::new(self.topic.clone(), self.partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_partition_display_and_ordering() {
        let a = TopicPartition::new("card", 0);
        let b = TopicPartition::new("card", 1);
        let c = TopicPartition::new("merchant", 0);
        assert_eq!(a.to_string(), "card/0");
        assert!(a < b && b < c);
    }

    #[test]
    fn message_back_to_topic_partition() {
        let m = Message {
            topic: "t".into(),
            partition: 3,
            offset: 9,
            key: vec![1],
            payload: vec![2].into(),
        };
        assert_eq!(m.topic_partition(), TopicPartition::new("t", 3));
    }
}
