//! Producers: key-hashed publishing into partitioned topics.

use bytes::Bytes;
use railgun_types::{RailgunError, Result};

use crate::bus::MessageBus;
use crate::record::TopicPartition;

/// Publishes records to the bus. Cheap to clone.
#[derive(Clone)]
pub struct Producer {
    bus: MessageBus,
}

/// One record of a [`Producer::send_batch`] call: an explicit partition
/// (hashed once by the caller — see [`partition_for_key`]) plus key and a
/// payload that is typically a zero-copy slice of a shared batch frame.
#[derive(Debug, Clone)]
pub struct BatchEntry {
    pub partition: u32,
    pub key: Vec<u8>,
    pub payload: Bytes,
}

/// Stable key hash (FNV-1a 64) — the same key always routes to the same
/// partition, Kafka's delivery guarantee Railgun builds entity affinity on
/// (§4: "messages with the same key will always be delivered to the same
/// (topic, partition)").
#[inline]
pub fn partition_for_key(key: &[u8], partitions: u32) -> u32 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h % u64::from(partitions)) as u32
}

impl Producer {
    /// Create a producer over `bus`.
    pub fn new(bus: MessageBus) -> Self {
        Producer { bus }
    }

    /// Publish to the partition selected by hashing `key`.
    /// Returns the (topic, partition) and offset of the appended record.
    pub fn send(
        &self,
        topic: &str,
        key: &[u8],
        payload: impl Into<Bytes>,
    ) -> Result<(TopicPartition, u64)> {
        let payload = payload.into();
        let mut inner = self.bus.inner.lock();
        let nparts = inner
            .topics
            .get(topic)
            .map(|t| t.partitions.len() as u32)
            .ok_or_else(|| RailgunError::NotFound(format!("topic `{topic}`")))?;
        let partition = partition_for_key(key, nparts);
        let out = self.append_locked(&mut inner, topic, partition, key, payload);
        drop(inner);
        if out.is_ok() {
            self.bus.wakeup.notify_all();
        }
        out
    }

    /// Publish to an explicit partition (reply topics use one partition per
    /// front-end consumer).
    pub fn send_to_partition(
        &self,
        topic: &str,
        partition: u32,
        key: &[u8],
        payload: impl Into<Bytes>,
    ) -> Result<(TopicPartition, u64)> {
        let payload = payload.into();
        let mut inner = self.bus.inner.lock();
        let out = self.append_locked(&mut inner, topic, partition, key, payload);
        drop(inner);
        if out.is_ok() {
            self.bus.wakeup.notify_all();
        }
        out
    }

    /// Publish a whole batch to `topic` under **one** bus lock
    /// acquisition, one version bump, and one condvar wakeup — the
    /// amortization the batched ingest path is built on. Entries carry
    /// explicit partitions (hash once per event with
    /// [`partition_for_key`] and reuse; see the front-end).
    ///
    /// `entries` is drained so callers can reuse its allocation. The batch
    /// is all-or-nothing: every partition is validated before the first
    /// append, so an invalid entry fails the call without publishing
    /// anything. Returns the number of records appended; an empty batch
    /// is a no-op (no lock, no wakeup).
    pub fn send_batch(&self, topic: &str, entries: &mut Vec<BatchEntry>) -> Result<u64> {
        if entries.is_empty() {
            return Ok(0);
        }
        let mut inner = self.bus.inner.lock();
        let out = (|| {
            let t = inner
                .topics
                .get_mut(topic)
                .ok_or_else(|| RailgunError::NotFound(format!("topic `{topic}`")))?;
            let nparts = t.partitions.len() as u32;
            if let Some(bad) = entries.iter().find(|e| e.partition >= nparts) {
                return Err(RailgunError::NotFound(format!(
                    "partition {topic}/{}",
                    bad.partition
                )));
            }
            let n = entries.len() as u64;
            let mut bytes = 0u64;
            for e in entries.drain(..) {
                bytes += (e.key.len() + e.payload.len()) as u64;
                t.partitions[e.partition as usize].append(e.key, e.payload);
            }
            inner.stats.records_produced += n;
            inner.stats.bytes_produced += bytes;
            inner.stats.batches_produced += 1;
            MessageBus::bump(&mut inner);
            Ok(n)
        })();
        drop(inner);
        if out.is_ok() {
            self.bus.wakeup.notify_all();
        }
        out
    }

    fn append_locked(
        &self,
        inner: &mut crate::bus::BusInner,
        topic: &str,
        partition: u32,
        key: &[u8],
        payload: Bytes,
    ) -> Result<(TopicPartition, u64)> {
        let bytes = (key.len() + payload.len()) as u64;
        let t = inner
            .topics
            .get_mut(topic)
            .ok_or_else(|| RailgunError::NotFound(format!("topic `{topic}`")))?;
        let log = t.partitions.get_mut(partition as usize).ok_or_else(|| {
            RailgunError::NotFound(format!("partition {topic}/{partition}"))
        })?;
        let offset = log.append(key.to_vec(), payload);
        inner.stats.records_produced += 1;
        inner.stats.bytes_produced += bytes;
        MessageBus::bump(inner);
        Ok((TopicPartition::new(topic, partition), offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_partition() {
        let bus = MessageBus::with_defaults();
        bus.create_topic("card", 10, 1).unwrap();
        let p = Producer::new(bus);
        let (tp1, o1) = p.send("card", b"card-42", b"a".to_vec()).unwrap();
        let (tp2, o2) = p.send("card", b"card-42", b"b".to_vec()).unwrap();
        assert_eq!(tp1, tp2);
        assert_eq!(o2, o1 + 1);
    }

    #[test]
    fn keys_spread_over_partitions() {
        let bus = MessageBus::with_defaults();
        bus.create_topic("card", 8, 1).unwrap();
        let p = Producer::new(bus.clone());
        for i in 0..800 {
            p.send("card", format!("card-{i}").as_bytes(), vec![]).unwrap();
        }
        // Every partition should get a decent share.
        for part in 0..8u32 {
            let tp = TopicPartition::new("card", part);
            let n = bus.end_offset(&tp).unwrap();
            assert!(n > 40, "partition {part} got only {n} records");
        }
    }

    #[test]
    fn unknown_topic_and_partition_error() {
        let bus = MessageBus::with_defaults();
        bus.create_topic("t", 1, 1).unwrap();
        let p = Producer::new(bus);
        assert!(p.send("nope", b"k", vec![]).is_err());
        assert!(p.send_to_partition("t", 5, b"k", vec![]).is_err());
    }

    #[test]
    fn explicit_partition_routing() {
        let bus = MessageBus::with_defaults();
        bus.create_topic("reply", 4, 1).unwrap();
        let p = Producer::new(bus);
        let (tp, _) = p.send_to_partition("reply", 2, b"", b"x".to_vec()).unwrap();
        assert_eq!(tp.partition, 2);
    }

    #[test]
    fn stats_count_produced() {
        let bus = MessageBus::with_defaults();
        bus.create_topic("t", 1, 1).unwrap();
        let p = Producer::new(bus.clone());
        p.send("t", b"k", vec![0u8; 10]).unwrap();
        let s = bus.stats();
        assert_eq!(s.records_produced, 1);
        assert_eq!(s.bytes_produced, 11);
    }

    #[test]
    fn send_batch_appends_all_under_one_version_bump() {
        let bus = MessageBus::with_defaults();
        bus.create_topic("t", 2, 1).unwrap();
        let p = Producer::new(bus.clone());
        let v0 = bus.version();
        let mut entries: Vec<BatchEntry> = (0..6u8)
            .map(|i| BatchEntry {
                partition: u32::from(i % 2),
                key: vec![i],
                payload: vec![i, i].into(),
            })
            .collect();
        assert_eq!(p.send_batch("t", &mut entries).unwrap(), 6);
        assert!(entries.is_empty(), "entries drained for reuse");
        assert_eq!(bus.version(), v0 + 1, "one bump for the whole batch");
        assert_eq!(bus.end_offset(&TopicPartition::new("t", 0)).unwrap(), 3);
        assert_eq!(bus.end_offset(&TopicPartition::new("t", 1)).unwrap(), 3);
        let s = bus.stats();
        assert_eq!(s.records_produced, 6);
        assert_eq!(s.batches_produced, 1);
        assert_eq!(s.bytes_produced, 6 * 3);
    }

    #[test]
    fn send_batch_empty_is_a_no_op() {
        let bus = MessageBus::with_defaults();
        bus.create_topic("t", 1, 1).unwrap();
        let p = Producer::new(bus.clone());
        let v0 = bus.version();
        assert_eq!(p.send_batch("t", &mut Vec::new()).unwrap(), 0);
        assert_eq!(bus.version(), v0);
        assert_eq!(bus.stats().batches_produced, 0);
    }

    #[test]
    fn send_batch_validates_before_appending() {
        let bus = MessageBus::with_defaults();
        bus.create_topic("t", 2, 1).unwrap();
        let p = Producer::new(bus.clone());
        let mut entries = vec![
            BatchEntry { partition: 0, key: vec![], payload: vec![1].into() },
            BatchEntry { partition: 9, key: vec![], payload: vec![2].into() },
        ];
        assert!(p.send_batch("t", &mut entries).is_err());
        // All-or-nothing: the valid first entry was not published.
        assert_eq!(bus.end_offset(&TopicPartition::new("t", 0)).unwrap(), 0);
        assert!(p.send_batch("nope", &mut entries).is_err());
    }

    #[test]
    fn send_batch_preserves_per_partition_order() {
        let bus = MessageBus::with_defaults();
        bus.create_topic("t", 1, 1).unwrap();
        let p = Producer::new(bus.clone());
        let mut entries: Vec<BatchEntry> = (0..5u8)
            .map(|i| BatchEntry { partition: 0, key: vec![], payload: vec![i].into() })
            .collect();
        p.send_batch("t", &mut entries).unwrap();
        let mut c = crate::consumer::Consumer::new(bus);
        c.assign(vec![TopicPartition::new("t", 0)]);
        let msgs = c.poll(100).unwrap().messages;
        let got: Vec<u8> = msgs.iter().map(|m| m.payload[0]).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
