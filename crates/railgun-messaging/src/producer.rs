//! Producers: key-hashed publishing into partitioned topics.

use railgun_types::{RailgunError, Result};

use crate::bus::MessageBus;
use crate::record::TopicPartition;

/// Publishes records to the bus. Cheap to clone.
#[derive(Clone)]
pub struct Producer {
    bus: MessageBus,
}

/// Stable key hash (FNV-1a 64) — the same key always routes to the same
/// partition, Kafka's delivery guarantee Railgun builds entity affinity on
/// (§4: "messages with the same key will always be delivered to the same
/// (topic, partition)").
#[inline]
pub fn partition_for_key(key: &[u8], partitions: u32) -> u32 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h % u64::from(partitions)) as u32
}

impl Producer {
    /// Create a producer over `bus`.
    pub fn new(bus: MessageBus) -> Self {
        Producer { bus }
    }

    /// Publish to the partition selected by hashing `key`.
    /// Returns the (topic, partition) and offset of the appended record.
    pub fn send(&self, topic: &str, key: &[u8], payload: Vec<u8>) -> Result<(TopicPartition, u64)> {
        let mut inner = self.bus.inner.lock();
        let nparts = inner
            .topics
            .get(topic)
            .map(|t| t.partitions.len() as u32)
            .ok_or_else(|| RailgunError::NotFound(format!("topic `{topic}`")))?;
        let partition = partition_for_key(key, nparts);
        let out = self.append_locked(&mut inner, topic, partition, key, payload);
        drop(inner);
        if out.is_ok() {
            self.bus.wakeup.notify_all();
        }
        out
    }

    /// Publish to an explicit partition (reply topics use one partition per
    /// front-end consumer).
    pub fn send_to_partition(
        &self,
        topic: &str,
        partition: u32,
        key: &[u8],
        payload: Vec<u8>,
    ) -> Result<(TopicPartition, u64)> {
        let mut inner = self.bus.inner.lock();
        let out = self.append_locked(&mut inner, topic, partition, key, payload);
        drop(inner);
        if out.is_ok() {
            self.bus.wakeup.notify_all();
        }
        out
    }

    fn append_locked(
        &self,
        inner: &mut crate::bus::BusInner,
        topic: &str,
        partition: u32,
        key: &[u8],
        payload: Vec<u8>,
    ) -> Result<(TopicPartition, u64)> {
        let bytes = (key.len() + payload.len()) as u64;
        let t = inner
            .topics
            .get_mut(topic)
            .ok_or_else(|| RailgunError::NotFound(format!("topic `{topic}`")))?;
        let log = t.partitions.get_mut(partition as usize).ok_or_else(|| {
            RailgunError::NotFound(format!("partition {topic}/{partition}"))
        })?;
        let offset = log.append(key.to_vec(), payload);
        inner.stats.records_produced += 1;
        inner.stats.bytes_produced += bytes;
        MessageBus::bump(inner);
        Ok((TopicPartition::new(topic, partition), offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_partition() {
        let bus = MessageBus::with_defaults();
        bus.create_topic("card", 10, 1).unwrap();
        let p = Producer::new(bus);
        let (tp1, o1) = p.send("card", b"card-42", b"a".to_vec()).unwrap();
        let (tp2, o2) = p.send("card", b"card-42", b"b".to_vec()).unwrap();
        assert_eq!(tp1, tp2);
        assert_eq!(o2, o1 + 1);
    }

    #[test]
    fn keys_spread_over_partitions() {
        let bus = MessageBus::with_defaults();
        bus.create_topic("card", 8, 1).unwrap();
        let p = Producer::new(bus.clone());
        for i in 0..800 {
            p.send("card", format!("card-{i}").as_bytes(), vec![]).unwrap();
        }
        // Every partition should get a decent share.
        for part in 0..8u32 {
            let tp = TopicPartition::new("card", part);
            let n = bus.end_offset(&tp).unwrap();
            assert!(n > 40, "partition {part} got only {n} records");
        }
    }

    #[test]
    fn unknown_topic_and_partition_error() {
        let bus = MessageBus::with_defaults();
        bus.create_topic("t", 1, 1).unwrap();
        let p = Producer::new(bus);
        assert!(p.send("nope", b"k", vec![]).is_err());
        assert!(p.send_to_partition("t", 5, b"k", vec![]).is_err());
    }

    #[test]
    fn explicit_partition_routing() {
        let bus = MessageBus::with_defaults();
        bus.create_topic("reply", 4, 1).unwrap();
        let p = Producer::new(bus);
        let (tp, _) = p.send_to_partition("reply", 2, b"", b"x".to_vec()).unwrap();
        assert_eq!(tp.partition, 2);
    }

    #[test]
    fn stats_count_produced() {
        let bus = MessageBus::with_defaults();
        bus.create_topic("t", 1, 1).unwrap();
        let p = Producer::new(bus.clone());
        p.send("t", b"k", vec![0u8; 10]).unwrap();
        let s = bus.stats();
        assert_eq!(s.records_produced, 1);
        assert_eq!(s.bytes_produced, 11);
    }
}
