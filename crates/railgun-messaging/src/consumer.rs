//! Consumers: group-managed or manually-assigned offset readers.
//!
//! Group-managed consumers (`subscribe`) participate in the coordinator's
//! rebalance protocol: polling heartbeats, and the first poll after a new
//! generation surfaces the new assignment so the engine can react (Railgun
//! recovers/reassigns task processors at exactly that point, §4.2).
//! Manually-assigned consumers (`assign`) read whatever they are told —
//! replica task consumers use this so several processors can follow the
//! same (topic, partition) (§3.3).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use railgun_types::{RailgunError, Result};

use crate::assignment::{AssignmentStrategy, MemberId, MemberInfo};
use crate::bus::{GroupMember, GroupState, MessageBus};
use crate::record::{Message, TopicPartition};

/// Result of one poll.
#[derive(Debug, Default)]
pub struct PollResult {
    /// Present when the group moved to a new generation since the last
    /// poll: the consumer's new assignment.
    pub rebalanced: Option<Vec<TopicPartition>>,
    /// Messages fetched this round.
    pub messages: Vec<Message>,
}

enum Mode {
    Unattached,
    Group { name: String },
    Manual,
}

/// A polling consumer.
pub struct Consumer {
    bus: MessageBus,
    id: MemberId,
    mode: Mode,
    assignment: Vec<TopicPartition>,
    positions: HashMap<TopicPartition, u64>,
    seen_generation: u64,
    /// Bus version observed by the last poll — the anchor
    /// [`Consumer::poll_blocking`] parks against so a produce between poll
    /// and park can never be missed.
    last_poll_version: u64,
}

impl Consumer {
    /// Create an unattached consumer; call [`Consumer::subscribe`] or
    /// [`Consumer::assign`] before polling.
    pub fn new(bus: MessageBus) -> Self {
        let id = {
            let mut inner = bus.inner.lock();
            let id = inner.next_member_id;
            inner.next_member_id += 1;
            id
        };
        Consumer {
            bus,
            id,
            mode: Mode::Unattached,
            assignment: Vec::new(),
            positions: HashMap::new(),
            seen_generation: 0,
            last_poll_version: 0,
        }
    }

    /// This consumer's member id.
    pub fn member_id(&self) -> MemberId {
        self.id
    }

    /// Join consumer group `group` subscribed to `topics`.
    ///
    /// `metadata` travels to the group's assignment strategy (Railgun puts
    /// node/processor locality there). `strategy` is installed if the group
    /// does not exist yet; later joiners inherit the group's strategy.
    pub fn subscribe(
        &mut self,
        group: &str,
        topics: &[&str],
        metadata: Vec<u8>,
        strategy: std::sync::Arc<dyn AssignmentStrategy>,
    ) -> Result<()> {
        let mut inner = self.bus.inner.lock();
        let now = inner.now_ms;
        let g = inner
            .groups
            .entry(group.to_owned())
            .or_insert_with(|| GroupState {
                members: HashMap::new(),
                strategy,
                generation: 0,
                committed: HashMap::new(),
                needs_rebalance: false,
            });
        g.members.insert(
            self.id,
            GroupMember {
                info: MemberInfo {
                    id: self.id,
                    metadata,
                    previous: Vec::new(),
                },
                last_heartbeat_ms: now,
                topics: topics.iter().map(|s| (*s).to_owned()).collect(),
                assignment: Vec::new(),
                seen_generation: 0,
            },
        );
        g.needs_rebalance = true;
        MessageBus::run_pending_rebalances(&mut inner);
        MessageBus::bump(&mut inner);
        drop(inner);
        self.bus.wakeup.notify_all();
        self.mode = Mode::Group {
            name: group.to_owned(),
        };
        self.seen_generation = 0;
        self.assignment.clear();
        self.positions.clear();
        Ok(())
    }

    /// Leave the group gracefully (triggers an immediate rebalance).
    pub fn unsubscribe(&mut self) {
        if let Mode::Group { name } = &self.mode {
            let mut inner = self.bus.inner.lock();
            if let Some(g) = inner.groups.get_mut(name) {
                if g.members.remove(&self.id).is_some() {
                    g.needs_rebalance = true;
                }
            }
            MessageBus::run_pending_rebalances(&mut inner);
            MessageBus::bump(&mut inner);
            drop(inner);
            self.bus.wakeup.notify_all();
        }
        self.mode = Mode::Unattached;
        self.assignment.clear();
        self.positions.clear();
    }

    /// Manually assign partitions (no group management).
    pub fn assign(&mut self, partitions: Vec<TopicPartition>) {
        self.mode = Mode::Manual;
        self.positions
            .retain(|tp, _| partitions.contains(tp));
        for tp in &partitions {
            self.positions.entry(tp.clone()).or_insert(0);
        }
        self.assignment = partitions;
    }

    /// Reposition consumption of `tp` to `offset`.
    pub fn seek(&mut self, tp: &TopicPartition, offset: u64) {
        self.positions.insert(tp.clone(), offset);
    }

    /// Current consumption position of `tp`.
    pub fn position(&self, tp: &TopicPartition) -> Option<u64> {
        self.positions.get(tp).copied()
    }

    /// The partitions currently assigned.
    pub fn assignment(&self) -> &[TopicPartition] {
        &self.assignment
    }

    /// Poll for messages (up to `max_records`), heartbeat, and pick up any
    /// new assignment generation.
    pub fn poll(&mut self, max_records: usize) -> Result<PollResult> {
        let mut result = PollResult::default();
        result.rebalanced = self.poll_into(max_records, &mut result.messages)?;
        Ok(result)
    }

    /// Like [`Consumer::poll`], but appends fetched messages to `out`
    /// (which the caller typically reuses across polls) instead of
    /// allocating a fresh `Vec` on every call — the processor-unit pump
    /// loop's hot path. Returns the new assignment if the group moved to a
    /// new generation since the last poll.
    pub fn poll_into(
        &mut self,
        max_records: usize,
        out: &mut Vec<Message>,
    ) -> Result<Option<Vec<TopicPartition>>> {
        let mut rebalanced = None;
        let mut inner = self.bus.inner.lock();
        // If refresh expels someone, parked peers are woken after the lock
        // drops (every exit path below funnels through that notify).
        let expired = MessageBus::refresh_clock_locked(&mut inner);
        let now = inner.now_ms;
        let outcome = 'poll: {
            if let Mode::Group { name } = &self.mode {
                let name = name.clone();
                let Some(g) = inner.groups.get_mut(&name) else {
                    break 'poll Err(RailgunError::Messaging(format!(
                        "group `{name}` vanished"
                    )));
                };
                let generation = g.generation;
                let committed = if let Some(m) = g.members.get_mut(&self.id) {
                    m.last_heartbeat_ms = now;
                    if m.seen_generation != generation {
                        m.seen_generation = generation;
                        Some((m.assignment.clone(), g.committed.clone()))
                    } else {
                        None
                    }
                } else {
                    // Expelled (heartbeat timeout). Rejoin with empty state.
                    break 'poll Err(RailgunError::Messaging(format!(
                        "consumer {} expelled from group `{name}`",
                        self.id
                    )));
                };
                if let Some((assignment, committed)) = committed {
                    self.seen_generation = generation;
                    // Keep positions of retained partitions; new ones start
                    // at the committed offset (or 0).
                    self.positions.retain(|tp, _| assignment.contains(tp));
                    for tp in &assignment {
                        let start = committed.get(tp).copied().unwrap_or(0);
                        self.positions.entry(tp.clone()).or_insert(start);
                    }
                    self.assignment = assignment.clone();
                    rebalanced = Some(assignment);
                }
            }
            // Fetch round-robin across assigned partitions.
            let mut remaining = max_records;
            let mut fetched = 0u64;
            for tp in &self.assignment {
                if remaining == 0 {
                    break;
                }
                let Some(topic) = inner.topics.get(&tp.topic) else {
                    continue;
                };
                let Some(log) = topic.partitions.get(tp.partition as usize) else {
                    continue;
                };
                let pos = self.positions.entry(tp.clone()).or_insert(0);
                let records = log.read_from(*pos, remaining);
                if let Some(last) = records.last() {
                    *pos = last.offset + 1;
                }
                remaining -= records.len();
                fetched += records.len() as u64;
                for r in records {
                    out.push(Message {
                        topic: tp.topic.clone(),
                        partition: tp.partition,
                        offset: r.offset,
                        key: r.key,
                        payload: r.payload,
                    });
                }
            }
            inner.stats.records_consumed += fetched;
            self.last_poll_version = inner.version;
            Ok(rebalanced)
        };
        drop(inner);
        if expired {
            self.bus.wakeup.notify_all();
        }
        outcome
    }

    /// Poll, parking on the bus wakeup path when nothing is available:
    /// returns as soon as messages or a new assignment arrive, or with an
    /// empty result after `timeout`. While parked the consumer still wakes
    /// at a heartbeat interval (a quarter of the session timeout) so group
    /// membership cannot lapse, and under [`crate::BusClock::Auto`] those
    /// wakes also drive session expiry.
    pub fn poll_blocking(&mut self, max_records: usize, timeout: Duration) -> Result<PollResult> {
        let deadline = Instant::now() + timeout;
        let heartbeat = Duration::from_millis(
            (self.bus.session_timeout_ms() / 4).clamp(1, 1_000),
        );
        loop {
            let result = self.poll(max_records)?;
            if !result.messages.is_empty() || result.rebalanced.is_some() {
                return Ok(result);
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(result);
            }
            let wait = (deadline - now).min(heartbeat);
            self.bus.wait_for_activity(self.last_poll_version, wait);
        }
    }

    /// Commit a consumed offset (the *next* offset to read) for `tp`.
    pub fn commit(&self, tp: &TopicPartition, offset: u64) -> Result<()> {
        if let Mode::Group { name } = &self.mode {
            let mut inner = self.bus.inner.lock();
            let g = inner
                .groups
                .get_mut(name)
                .ok_or_else(|| RailgunError::Messaging(format!("group `{name}` vanished")))?;
            g.committed.insert(tp.clone(), offset);
            Ok(())
        } else {
            Err(RailgunError::Messaging(
                "commit requires a group subscription".into(),
            ))
        }
    }

    /// Explicit heartbeat without fetching.
    pub fn heartbeat(&self) {
        if let Mode::Group { name } = &self.mode {
            let mut inner = self.bus.inner.lock();
            MessageBus::refresh_clock_locked(&mut inner);
            let now = inner.now_ms;
            if let Some(g) = inner.groups.get_mut(name) {
                if let Some(m) = g.members.get_mut(&self.id) {
                    m.last_heartbeat_ms = now;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{RoundRobinStrategy, StickyStrategy};
    use crate::producer::Producer;
    use std::sync::Arc;

    fn bus_with_topic(parts: u32) -> (MessageBus, Producer) {
        let bus = MessageBus::with_defaults();
        bus.create_topic("events", parts, 1).unwrap();
        let p = Producer::new(bus.clone());
        (bus, p)
    }

    #[test]
    fn manual_assignment_reads_from_zero() {
        let (bus, p) = bus_with_topic(1);
        for i in 0..5u8 {
            p.send("events", b"k", vec![i]).unwrap();
        }
        let mut c = Consumer::new(bus);
        c.assign(vec![TopicPartition::new("events", 0)]);
        let r = c.poll(100).unwrap();
        assert_eq!(r.messages.len(), 5);
        assert!(r.rebalanced.is_none());
        // Subsequent poll sees nothing new.
        assert!(c.poll(100).unwrap().messages.is_empty());
    }

    #[test]
    fn poll_respects_max_records() {
        let (bus, p) = bus_with_topic(1);
        for i in 0..10u8 {
            p.send("events", b"k", vec![i]).unwrap();
        }
        let mut c = Consumer::new(bus);
        c.assign(vec![TopicPartition::new("events", 0)]);
        assert_eq!(c.poll(4).unwrap().messages.len(), 4);
        assert_eq!(c.poll(100).unwrap().messages.len(), 6);
    }

    #[test]
    fn seek_replays_history() {
        let (bus, p) = bus_with_topic(1);
        for i in 0..5u8 {
            p.send("events", b"k", vec![i]).unwrap();
        }
        let mut c = Consumer::new(bus);
        let tp = TopicPartition::new("events", 0);
        c.assign(vec![tp.clone()]);
        assert_eq!(c.poll(100).unwrap().messages.len(), 5);
        c.seek(&tp, 2);
        let r = c.poll(100).unwrap();
        assert_eq!(r.messages.len(), 3);
        assert_eq!(r.messages[0].offset, 2);
    }

    #[test]
    fn group_splits_partitions_exclusively() {
        let (bus, p) = bus_with_topic(4);
        for i in 0..100u32 {
            p.send("events", format!("k{i}").as_bytes(), vec![]).unwrap();
        }
        let mut c1 = Consumer::new(bus.clone());
        let mut c2 = Consumer::new(bus.clone());
        c1.subscribe("g", &["events"], vec![], Arc::new(RoundRobinStrategy))
            .unwrap();
        c2.subscribe("g", &["events"], vec![], Arc::new(RoundRobinStrategy))
            .unwrap();
        let r1 = c1.poll(1000).unwrap();
        let r2 = c2.poll(1000).unwrap();
        let a1 = r1.rebalanced.unwrap();
        let a2 = r2.rebalanced.unwrap();
        assert_eq!(a1.len() + a2.len(), 4);
        assert!(a1.iter().all(|tp| !a2.contains(tp)), "no overlap allowed");
        assert_eq!(r1.messages.len() + r2.messages.len(), 100);
    }

    #[test]
    fn member_leave_triggers_rebalance_and_takeover() {
        let (bus, p) = bus_with_topic(2);
        let mut c1 = Consumer::new(bus.clone());
        let mut c2 = Consumer::new(bus.clone());
        c1.subscribe("g", &["events"], vec![], Arc::new(StickyStrategy))
            .unwrap();
        c2.subscribe("g", &["events"], vec![], Arc::new(StickyStrategy))
            .unwrap();
        c1.poll(10).unwrap();
        c2.poll(10).unwrap();
        let gen_before = bus.group_generation("g");
        c2.unsubscribe();
        for i in 0..10u8 {
            p.send("events", &[i], vec![i]).unwrap();
        }
        let r1 = c1.poll(100).unwrap();
        assert!(bus.group_generation("g") > gen_before);
        assert_eq!(r1.rebalanced.as_ref().map(Vec::len), Some(2));
        assert_eq!(r1.messages.len(), 10, "survivor consumes everything");
    }

    #[test]
    fn heartbeat_timeout_expels_member() {
        let bus = MessageBus::new(crate::bus::BusConfig {
            session_timeout_ms: 1_000,
            ..Default::default()
        });
        bus.create_topic("events", 2, 1).unwrap();
        let mut c1 = Consumer::new(bus.clone());
        let mut c2 = Consumer::new(bus.clone());
        c1.subscribe("g", &["events"], vec![], Arc::new(StickyStrategy))
            .unwrap();
        c2.subscribe("g", &["events"], vec![], Arc::new(StickyStrategy))
            .unwrap();
        c1.poll(1).unwrap();
        c2.poll(1).unwrap();
        // c2 goes silent; c1 keeps heartbeating.
        bus.advance_to(600);
        c1.heartbeat();
        bus.advance_to(1_400); // c2's last heartbeat (t=0) is now stale
        let r1 = c1.poll(10).unwrap();
        assert_eq!(
            r1.rebalanced.map(|a| a.len()),
            Some(2),
            "survivor owns all partitions after expulsion"
        );
        // The dead consumer's next poll errors (it was expelled).
        assert!(c2.poll(10).is_err());
    }

    #[test]
    fn committed_offsets_resume_new_member() {
        let (bus, p) = bus_with_topic(1);
        let tp = TopicPartition::new("events", 0);
        for i in 0..10u8 {
            p.send("events", b"k", vec![i]).unwrap();
        }
        {
            let mut c1 = Consumer::new(bus.clone());
            c1.subscribe("g", &["events"], vec![], Arc::new(StickyStrategy))
                .unwrap();
            let r = c1.poll(100).unwrap();
            assert_eq!(r.messages.len(), 10);
            c1.commit(&tp, 7).unwrap();
            c1.unsubscribe();
        }
        let mut c2 = Consumer::new(bus.clone());
        c2.subscribe("g", &["events"], vec![], Arc::new(StickyStrategy))
            .unwrap();
        let r = c2.poll(100).unwrap();
        // Resumes from committed offset 7, not 0 and not the end.
        assert_eq!(r.messages.len(), 3);
        assert_eq!(r.messages[0].offset, 7);
        assert_eq!(bus.committed_offset("g", &tp), Some(7));
    }

    #[test]
    fn commit_requires_group() {
        let (bus, _) = bus_with_topic(1);
        let mut c = Consumer::new(bus);
        c.assign(vec![TopicPartition::new("events", 0)]);
        assert!(c.commit(&TopicPartition::new("events", 0), 1).is_err());
    }

    #[test]
    fn replicas_follow_same_partition_in_different_groups() {
        // Paper §3.3: replica consumers use distinct groups so multiple
        // processors can consume the same (topic, partition) — here modeled
        // with manual assignment, plus one active group consumer.
        let (bus, p) = bus_with_topic(1);
        let tp = TopicPartition::new("events", 0);
        let mut active = Consumer::new(bus.clone());
        active
            .subscribe("railgun-active", &["events"], vec![], Arc::new(StickyStrategy))
            .unwrap();
        let mut replica1 = Consumer::new(bus.clone());
        replica1.assign(vec![tp.clone()]);
        let mut replica2 = Consumer::new(bus.clone());
        replica2.assign(vec![tp.clone()]);
        for i in 0..5u8 {
            p.send("events", b"k", vec![i]).unwrap();
        }
        let a = active.poll(100).unwrap().messages;
        let r1 = replica1.poll(100).unwrap().messages;
        let r2 = replica2.poll(100).unwrap().messages;
        assert_eq!(a.len(), 5);
        // All copies see the same records in the same order (consistency of
        // replicas, §4.2).
        assert_eq!(a, r1);
        assert_eq!(r1, r2);
    }

    #[test]
    fn unattached_consumer_polls_nothing() {
        let (bus, p) = bus_with_topic(1);
        p.send("events", b"k", vec![1]).unwrap();
        let mut c = Consumer::new(bus);
        assert!(c.poll(10).unwrap().messages.is_empty());
    }

    #[test]
    fn poll_into_reuses_scratch_and_matches_poll() {
        let (bus, p) = bus_with_topic(2);
        for i in 0..10u8 {
            p.send("events", &[i], vec![i]).unwrap();
        }
        let mut c = Consumer::new(bus.clone());
        c.assign(bus.partitions_of(&["events".to_string()]));
        let mut scratch = Vec::new();
        assert!(c.poll_into(4, &mut scratch).unwrap().is_none());
        assert_eq!(scratch.len(), 4);
        let cap = scratch.capacity();
        scratch.clear();
        assert!(c.poll_into(100, &mut scratch).unwrap().is_none());
        assert_eq!(scratch.len(), 6, "resumes where the first poll stopped");
        assert!(scratch.capacity() >= cap, "buffer reused, not reallocated away");
        scratch.clear();
        c.poll_into(100, &mut scratch).unwrap();
        assert!(scratch.is_empty());
    }

    #[test]
    fn poll_blocking_wakes_on_produce() {
        let (bus, p) = bus_with_topic(1);
        let mut c = Consumer::new(bus.clone());
        c.assign(vec![TopicPartition::new("events", 0)]);
        assert!(c.poll(10).unwrap().messages.is_empty());
        let producer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            p.send("events", b"k", vec![7]).unwrap();
        });
        let start = std::time::Instant::now();
        let r = c
            .poll_blocking(10, std::time::Duration::from_secs(10))
            .unwrap();
        producer.join().unwrap();
        assert_eq!(r.messages.len(), 1);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "woken by the produce, not the timeout"
        );
    }

    #[test]
    fn poll_blocking_times_out_empty() {
        let (bus, _p) = bus_with_topic(1);
        let mut c = Consumer::new(bus);
        c.assign(vec![TopicPartition::new("events", 0)]);
        let start = std::time::Instant::now();
        let r = c
            .poll_blocking(10, std::time::Duration::from_millis(25))
            .unwrap();
        assert!(r.messages.is_empty());
        assert!(start.elapsed() >= std::time::Duration::from_millis(20));
    }

    #[test]
    fn poll_blocking_returns_on_rebalance() {
        let (bus, _p) = bus_with_topic(2);
        let mut c1 = Consumer::new(bus.clone());
        c1.subscribe("g", &["events"], vec![], Arc::new(StickyStrategy))
            .unwrap();
        c1.poll(1).unwrap();
        let joiner = {
            let bus = bus.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(30));
                let mut c2 = Consumer::new(bus);
                c2.subscribe("g", &["events"], vec![], Arc::new(StickyStrategy))
                    .unwrap();
                c2
            })
        };
        let r = c1
            .poll_blocking(10, std::time::Duration::from_secs(10))
            .unwrap();
        let _c2 = joiner.join().unwrap();
        assert!(r.rebalanced.is_some(), "woken by the generation change");
    }
}
