//! # railgun-messaging — the Kafka-substitute messaging layer
//!
//! Railgun's messaging layer (paper §3.3) serves three purposes: inter-node
//! communication (events in, aggregation replies out), failure detection
//! (consumer heartbeats), and recovery (offset-addressed replay). The paper
//! uses Apache Kafka; this crate is an in-process substitute implementing
//! exactly the abstractions Railgun relies on — see DESIGN.md,
//! substitution #1:
//!
//! * **partitioned topics** over append-only, replayable logs ([`log`]);
//! * **producers** with stable key-hash partitioning ([`producer`]);
//! * **pull-based consumers** with per-consumer offsets, seek, and commit
//!   ([`consumer`]);
//! * **consumer groups** with heartbeats, session timeouts, generations and
//!   pluggable assignment strategies ([`assignment`], [`bus`]) — the hook
//!   Railgun's custom sticky strategy (in `railgun-core`) plugs into;
//! * **manual assignment** for replica consumers that must follow the same
//!   partitions as the active consumer.
//!
//! Time is logical and driven by the harness ([`MessageBus::advance_to`])
//! by default, which makes failure-detection tests and discrete-event
//! simulations deterministic; the threaded runtime switches to
//! [`BusClock::Auto`] so heartbeats and session expiry follow wall time
//! with no external driver. Consumers can also **block** instead of
//! spinning: [`Consumer::poll_blocking`] parks on the bus's internal
//! wakeup path (a version counter + condvar signaled by every produce,
//! assignment change and expiry) until something observable happens.
//! Broker network latency is *not* modeled here — the `railgun-sim`
//! crate owns latency models and injects them where the benches measure
//! end-to-end time.
//!
//! ```
//! use railgun_messaging::{Consumer, MessageBus, Producer, StickyStrategy, TopicPartition};
//! use std::sync::Arc;
//!
//! let bus = MessageBus::with_defaults();
//! bus.create_topic("payments-card", 4, 1).unwrap();
//!
//! let producer = Producer::new(bus.clone());
//! producer.send("payments-card", b"card-42", b"event-bytes".to_vec()).unwrap();
//!
//! let mut consumer = Consumer::new(bus);
//! consumer.subscribe("railgun-active", &["payments-card"], vec![],
//!                    Arc::new(StickyStrategy)).unwrap();
//! let polled = consumer.poll(64).unwrap();
//! assert_eq!(polled.rebalanced.map(|a| a.len()), Some(4)); // sole member owns all
//! assert_eq!(polled.messages.len(), 1);
//! ```

pub mod assignment;
pub mod bus;
pub mod consumer;
pub mod log;
pub mod producer;
pub mod record;

pub use assignment::{
    moved_partitions, AssignmentContext, AssignmentStrategy, MemberId, MemberInfo,
    RoundRobinStrategy, StickyStrategy,
};
pub use bus::{BusClock, BusConfig, BusStats, MessageBus};
pub use consumer::{Consumer, PollResult};
pub use producer::{partition_for_key, BatchEntry, Producer};
pub use record::{Message, Record, TopicPartition};
