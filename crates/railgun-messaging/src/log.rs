//! Append-only partition logs.
//!
//! Kafka's core abstraction (§3.3): an ordered, replayable log per
//! (topic, partition). Consumers pull by offset, so a recovering Railgun
//! node can rewind and replay unprocessed messages without affecting other
//! consumers — the property the paper picked Kafka for.

use bytes::Bytes;

use crate::record::Record;

/// One partition's log. The broker keeps it in memory; durability of the
/// *messaging layer* is out of scope for the reproduction (the paper treats
/// Kafka as reliable infrastructure) but retention is configurable so
/// replay windows stay bounded.
#[derive(Debug, Default)]
pub struct PartitionLog {
    /// `records[i].offset == base_offset + i`.
    records: Vec<Record>,
    base_offset: u64,
    total_bytes: u64,
}

impl PartitionLog {
    /// Create an empty log.
    pub fn new() -> Self {
        PartitionLog::default()
    }

    /// Append a record, returning its offset. The payload is stored as a
    /// [`Bytes`] view, so a producer handing out slices of a shared batch
    /// frame appends without copying payload bytes.
    pub fn append(&mut self, key: Vec<u8>, payload: impl Into<Bytes>) -> u64 {
        let payload = payload.into();
        let offset = self.base_offset + self.records.len() as u64;
        self.total_bytes += (key.len() + payload.len()) as u64;
        self.records.push(Record {
            offset,
            key,
            payload,
        });
        offset
    }

    /// Read up to `max` records starting at `from` (inclusive).
    ///
    /// Offsets below the retention floor yield records from the floor
    /// upward — like Kafka's `auto.offset.reset = earliest`.
    pub fn read_from(&self, from: u64, max: usize) -> Vec<Record> {
        let start = from.max(self.base_offset) - self.base_offset;
        let start = start as usize;
        if start >= self.records.len() {
            return Vec::new();
        }
        let end = (start + max).min(self.records.len());
        self.records[start..end].to_vec()
    }

    /// Next offset to be assigned (== log end offset).
    pub fn end_offset(&self) -> u64 {
        self.base_offset + self.records.len() as u64
    }

    /// Oldest retained offset.
    pub fn start_offset(&self) -> u64 {
        self.base_offset
    }

    /// Drop records below `offset` (retention).
    pub fn truncate_before(&mut self, offset: u64) {
        if offset <= self.base_offset {
            return;
        }
        let drop = ((offset - self.base_offset) as usize).min(self.records.len());
        for r in &self.records[..drop] {
            self.total_bytes -= (r.key.len() + r.payload.len()) as u64;
        }
        self.records.drain(..drop);
        self.base_offset += drop as u64;
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total retained payload+key bytes.
    pub fn bytes(&self) -> u64 {
        self.total_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_assigns_sequential_offsets() {
        let mut log = PartitionLog::new();
        assert_eq!(log.append(vec![], b"a".to_vec()), 0);
        assert_eq!(log.append(vec![], b"b".to_vec()), 1);
        assert_eq!(log.end_offset(), 2);
    }

    #[test]
    fn read_from_respects_bounds() {
        let mut log = PartitionLog::new();
        for i in 0..10u8 {
            log.append(vec![], vec![i]);
        }
        let r = log.read_from(3, 4);
        assert_eq!(r.len(), 4);
        assert_eq!(r[0].offset, 3);
        assert_eq!(r[3].offset, 6);
        assert!(log.read_from(10, 5).is_empty());
        assert_eq!(log.read_from(8, 100).len(), 2);
    }

    #[test]
    fn replay_from_zero_is_full_history() {
        let mut log = PartitionLog::new();
        for i in 0..5u8 {
            log.append(vec![i], vec![i]);
        }
        assert_eq!(log.read_from(0, 100).len(), 5);
    }

    #[test]
    fn truncation_moves_floor() {
        let mut log = PartitionLog::new();
        for i in 0..10u8 {
            log.append(vec![], vec![i; 10]);
        }
        let bytes_before = log.bytes();
        log.truncate_before(4);
        assert_eq!(log.start_offset(), 4);
        assert_eq!(log.len(), 6);
        assert!(log.bytes() < bytes_before);
        // Reads below the floor clamp to the floor.
        let r = log.read_from(0, 2);
        assert_eq!(r[0].offset, 4);
        // Appends continue with correct offsets.
        assert_eq!(log.append(vec![], vec![]), 10);
    }

    #[test]
    fn truncate_beyond_end_empties_log() {
        let mut log = PartitionLog::new();
        log.append(vec![], vec![1]);
        log.truncate_before(100);
        assert!(log.is_empty());
        assert_eq!(log.append(vec![], vec![2]), 1);
    }
}
