//! Microbenchmarks & ablation: incremental aggregators vs recompute-from-
//! scratch.
//!
//! The ablation quantifies the core §4.1.3 design choice: O(1)
//! insert/evict aggregators against the Flink-custom-solution approach
//! [21] of recomputing each aggregation by iterating the stored window.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use railgun_core::agg::{AggContext, AggState};
use railgun_core::lang::AggFunc;
use railgun_store::{Db, DbOptions};
use railgun_types::Value;

fn bench_db(tag: &str) -> Db {
    let dir = std::env::temp_dir().join(format!("railgun-maggs-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    Db::open(&dir, DbOptions::default()).expect("db")
}

fn incremental_insert_evict(c: &mut Criterion) {
    let db = bench_db("incr");
    let aux = db.create_cf("aux").expect("cf");
    let mut group = c.benchmark_group("aggregator_insert_evict");
    for func in [
        AggFunc::Count,
        AggFunc::Sum,
        AggFunc::Avg,
        AggFunc::StdDev,
        AggFunc::Max,
        AggFunc::Min,
        AggFunc::Last,
        AggFunc::Prev,
    ] {
        group.bench_function(BenchmarkId::from_parameter(func.name()), |b| {
            let ctx = AggContext {
                db: &db,
                aux_cf: aux,
                state_key: b"leaf/card-1",
            };
            let mut state = AggState::new(func);
            let mut i = 0u64;
            b.iter(|| {
                let v = Value::Float((i % 97) as f64);
                state.insert(Some(&v), &ctx).expect("insert");
                // Steady-state window: one eviction per insertion.
                if i >= 64 {
                    let old = Value::Float(((i - 64) % 97) as f64);
                    state.evict(Some(&old), &ctx).expect("evict");
                }
                i += 1;
                black_box(state.value())
            });
        });
    }
    group.finish();
}

fn count_distinct_with_aux_cf(c: &mut Criterion) {
    let db = bench_db("distinct");
    let aux = db.create_cf("aux").expect("cf");
    c.bench_function("aggregator_insert_evict/countDistinct", |b| {
        let ctx = AggContext {
            db: &db,
            aux_cf: aux,
            state_key: b"leaf/card-1",
        };
        let mut state = AggState::new(AggFunc::CountDistinct);
        let mut i = 0u64;
        b.iter(|| {
            let v = Value::Str(format!("addr-{}", i % 500));
            state.insert(Some(&v), &ctx).expect("insert");
            if i >= 64 {
                let old = Value::Str(format!("addr-{}", (i - 64) % 500));
                state.evict(Some(&old), &ctx).expect("evict");
            }
            i += 1;
            black_box(state.value())
        });
    });
}

/// Ablation: what the Flink custom solution pays — recomputing a sum by
/// iterating the whole window population instead of O(1) updates.
fn recompute_from_scratch_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_recompute_vs_incremental");
    for window_events in [100usize, 1_000, 10_000] {
        let values: Vec<f64> = (0..window_events).map(|i| (i % 97) as f64).collect();
        group.bench_function(
            BenchmarkId::new("recompute_sum", window_events),
            |b| {
                b.iter(|| {
                    // The [21] approach: walk every stored event.
                    black_box(values.iter().copied().sum::<f64>())
                });
            },
        );
    }
    // The incremental equivalent never depends on window population.
    group.bench_function("incremental_sum_any_window", |b| {
        let mut sum = 0.0f64;
        let mut i = 0u64;
        b.iter(|| {
            sum += (i % 97) as f64;
            sum -= ((i + 31) % 97) as f64;
            i += 1;
            black_box(sum)
        });
    });
    group.finish();
}

fn state_codec(c: &mut Criterion) {
    let db = bench_db("codec");
    let ctx = AggContext {
        db: &db,
        aux_cf: Db::DEFAULT_CF,
        state_key: b"k",
    };
    let mut state = AggState::new(AggFunc::StdDev);
    for i in 0..100 {
        state
            .insert(Some(&Value::Float(i as f64)), &ctx)
            .expect("insert");
    }
    c.bench_function("agg_state_encode_decode", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(64);
            state.encode(&mut buf);
            black_box(AggState::decode(&buf).expect("decode"))
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = incremental_insert_evict, count_distinct_with_aux_cf, recompute_from_scratch_ablation, state_codec
);
criterion_main!(benches);
