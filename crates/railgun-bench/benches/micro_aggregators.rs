//! Microbenchmarks & ablation: incremental aggregators vs recompute-from-
//! scratch.
//!
//! The ablation quantifies the core §4.1.3 design choice: O(1)
//! insert/evict aggregators against the Flink-custom-solution approach
//! [21] of recomputing each aggregation by iterating the stored window.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use railgun_core::agg::sketch::{hll::Hll, quantile::QuantSketch, topk::TopKSketch, PaneSketch};
use railgun_core::agg::{AggContext, AggScratch, AggState};
use railgun_core::lang::AggFunc;
use railgun_store::{Db, DbOptions};
use railgun_types::Value;

fn bench_db(tag: &str) -> Db {
    let dir = std::env::temp_dir().join(format!("railgun-maggs-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    Db::open(&dir, DbOptions::default()).expect("db")
}

fn incremental_insert_evict(c: &mut Criterion) {
    let db = bench_db("incr");
    let aux = db.create_cf("aux").expect("cf");
    let mut group = c.benchmark_group("aggregator_insert_evict");
    for func in [
        AggFunc::Count,
        AggFunc::Sum,
        AggFunc::Avg,
        AggFunc::StdDev,
        AggFunc::Max,
        AggFunc::Min,
        AggFunc::Last,
        AggFunc::Prev,
    ] {
        group.bench_function(BenchmarkId::from_parameter(func.name()), |b| {
            let scratch = AggScratch::default();
            let ctx = AggContext::new(&db, aux, b"leaf/card-1", &scratch);
            let mut state = AggState::new(func);
            let mut i = 0u64;
            b.iter(|| {
                let v = Value::Float((i % 97) as f64);
                state.insert(Some(&v), &ctx).expect("insert");
                // Steady-state window: one eviction per insertion.
                if i >= 64 {
                    let old = Value::Float(((i - 64) % 97) as f64);
                    state.evict(Some(&old), &ctx).expect("evict");
                }
                i += 1;
                black_box(state.value())
            });
        });
    }
    group.finish();
}

fn count_distinct_with_aux_cf(c: &mut Criterion) {
    let db = bench_db("distinct");
    let aux = db.create_cf("aux").expect("cf");
    c.bench_function("aggregator_insert_evict/countDistinct", |b| {
        let scratch = AggScratch::default();
        let ctx = AggContext::new(&db, aux, b"leaf/card-1", &scratch);
        let mut state = AggState::new(AggFunc::CountDistinct);
        let mut i = 0u64;
        b.iter(|| {
            let v = Value::Str(format!("addr-{}", i % 500));
            state.insert(Some(&v), &ctx).expect("insert");
            if i >= 64 {
                let old = Value::Str(format!("addr-{}", (i - 64) % 500));
                state.evict(Some(&old), &ctx).expect("evict");
            }
            i += 1;
            black_box(state.value())
        });
    });
}

/// Ablation: what the Flink custom solution pays — recomputing a sum by
/// iterating the whole window population instead of O(1) updates.
fn recompute_from_scratch_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_recompute_vs_incremental");
    for window_events in [100usize, 1_000, 10_000] {
        let values: Vec<f64> = (0..window_events).map(|i| (i % 97) as f64).collect();
        group.bench_function(
            BenchmarkId::new("recompute_sum", window_events),
            |b| {
                b.iter(|| {
                    // The [21] approach: walk every stored event.
                    black_box(values.iter().copied().sum::<f64>())
                });
            },
        );
    }
    // The incremental equivalent never depends on window population.
    group.bench_function("incremental_sum_any_window", |b| {
        let mut sum = 0.0f64;
        let mut i = 0u64;
        b.iter(|| {
            sum += (i % 97) as f64;
            sum -= ((i + 31) % 97) as f64;
            i += 1;
            black_box(sum)
        });
    });
    group.finish();
}

fn state_codec(c: &mut Criterion) {
    let db = bench_db("codec");
    let scratch = AggScratch::default();
    let ctx = AggContext::new(&db, Db::DEFAULT_CF, b"k", &scratch);
    let mut state = AggState::new(AggFunc::StdDev);
    for i in 0..100 {
        state
            .insert(Some(&Value::Float(i as f64)), &ctx)
            .expect("insert");
    }
    c.bench_function("agg_state_encode_decode", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(64);
            state.encode(&mut buf);
            black_box(AggState::decode(&buf).expect("decode"))
        });
    });
}

/// Sketch kernels in isolation: per-item cost of the HLL register
/// update, the SpaceSaving slot maintenance, and the KLL-lite compaction
/// cascade — no store, no [`AggState`] wrapper.
fn sketch_kernels(c: &mut Criterion) {
    use railgun_core::agg::sketch::finalize;
    let mut group = c.benchmark_group("sketch_kernel");
    group.bench_function("hll_insert_p14", |b| {
        let mut s = Hll::new(14);
        let mut i = 0u64;
        b.iter(|| {
            s.insert_hash(finalize(i));
            i += 1;
            black_box(s.estimate())
        });
    });
    group.bench_function("topk_insert_k10", |b| {
        let mut s = TopKSketch::new(10);
        let mut i = 0u64;
        b.iter(|| {
            // 997 distinct values under a cap of 80 keeps the eviction
            // path (the expensive part) hot.
            let v = Value::Int((i % 997) as i64);
            s.insert(&v, finalize(i % 997));
            i += 1;
            black_box(&s);
        });
    });
    group.bench_function("quantile_insert", |b| {
        let mut s = QuantSketch::default();
        let mut i = 0u64;
        b.iter(|| {
            s.insert((i % 9973) as f64);
            i += 1;
        });
    });
    group.bench_function("hll_merge_p14", |b| {
        let mut even = Hll::new(14);
        let mut odd = Hll::new(14);
        for i in 0..100_000u64 {
            if i % 2 == 0 {
                even.insert_hash(finalize(i));
            } else {
                odd.insert_hash(finalize(i));
            }
        }
        b.iter(|| {
            let mut m = even.clone();
            m.merge_from(&odd);
            black_box(m.estimate())
        });
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = incremental_insert_evict, count_distinct_with_aux_cf, recompute_from_scratch_ablation, state_codec, sketch_kernels
);
criterion_main!(benches);
