//! Hot-path throughput baseline: reservoir ingest + cursor drain.
//!
//! This is the repo's recorded perf trajectory for the §4.1.1 claim that
//! per-event reservoir cost is constant and tiny. Four scenarios:
//!
//! * `ingest_inorder`  — append N strictly in-order events (the fast path);
//! * `ingest_late10`   — same, but 10% of events arrive late (within the
//!   transition hold), exercising the sorted-insert path;
//! * `drain_cold`      — a cold cursor drains the whole reservoir from
//!   disk through a small cache (read-miss path: load + decompress);
//! * `contended`       — one thread appends while a cold cursor drains
//!   durable chunks; reports both sides' throughput under contention.
//!
//! Run modes:
//!
//! * `cargo bench -p railgun-bench --bench fig_hotpath` — full run, prints
//!   a result JSON object to stdout;
//! * `-- --test` — smoke mode (tiny N, used by CI);
//! * `-- --out <path>` — additionally write the JSON object to `<path>`.
//!
//! Methodology and the committed before/after numbers live in
//! EXPERIMENTS.md and BENCH_hotpath.json.

use std::sync::Barrier;
use std::time::Instant;

use railgun_bench::{compact_schema, FraudGenerator, WorkloadConfig};
use railgun_reservoir::{Reservoir, ReservoirConfig};
use railgun_types::{Event, EventId, TimeDelta, Timestamp};

struct Metrics {
    ingest_inorder_eps: f64,
    ingest_late10_eps: f64,
    drain_cold_eps: f64,
    ingest_contended_eps: f64,
    drain_contended_eps: f64,
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("railgun-hotpath-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Pre-generate compact events so generator cost stays out of the timings.
/// `late_pct` percent of events get a timestamp pulled back (but inside the
/// transition hold, so they land in a transition chunk via sorted insert).
fn make_events(n: u64, late_pct: u64, seed_tag: u64) -> Vec<Event> {
    let mut gen = FraudGenerator::new(WorkloadConfig {
        seed: 0xB0B0 + seed_tag,
        ..WorkloadConfig::default()
    });
    let mut out = Vec::with_capacity(n as usize);
    for i in 0..n {
        let base = i as i64;
        let ts = if late_pct > 0 && i % 100 < late_pct && base > 4_000 {
            // Deterministic lateness in (0, 4000) ms — inside the hold.
            base - 1 - ((i * 2_654_435_761) % 3_999) as i64
        } else {
            base
        };
        out.push(Event::new(
            EventId(i),
            Timestamp::from_millis(ts),
            gen.next_compact(),
        ));
    }
    out
}

fn ingest(dir: &std::path::Path, cfg: ReservoirConfig, events: Vec<Event>) -> (f64, Reservoir) {
    let res = Reservoir::open(dir, compact_schema(), cfg).expect("open reservoir");
    let n = events.len() as f64;
    let start = Instant::now();
    for e in events {
        res.append(e).expect("append");
    }
    let eps = n / start.elapsed().as_secs_f64();
    (eps, res)
}

/// Drain everything through a cold cursor in bound steps, returning
/// (events/sec, total yielded).
fn drain_all(res: &Reservoir, step_ms: i64, max_ts: i64) -> (f64, u64) {
    let cursor = res.cursor_at_start();
    let mut buf = Vec::new();
    let mut yielded = 0u64;
    let start = Instant::now();
    let mut bound = step_ms;
    while bound < max_ts + step_ms {
        buf.clear();
        cursor.advance_upto_into(Timestamp::from_millis(bound), &mut buf);
        yielded += buf.len() as u64;
        bound += step_ms;
    }
    buf.clear();
    cursor.advance_upto_into(Timestamp::MAX, &mut buf);
    yielded += buf.len() as u64;
    (yielded as f64 / start.elapsed().as_secs_f64(), yielded)
}

fn run(n: u64) -> Metrics {
    let cold_cfg = || ReservoirConfig {
        cache_capacity_chunks: 16,
        ..ReservoirConfig::default()
    };

    // --- ingest, in-order ------------------------------------------------
    let dir_inorder = fresh_dir("inorder");
    let (ingest_inorder_eps, res) = ingest(
        &dir_inorder,
        ReservoirConfig::default(),
        make_events(n, 0, 1),
    );
    res.flush_open_chunk().expect("flush");
    res.flush_io().expect("io");
    drop(res);

    // --- ingest, 10% late -----------------------------------------------
    let dir_late = fresh_dir("late10");
    let (ingest_late10_eps, res) = ingest(
        &dir_late,
        ReservoirConfig {
            transition_hold: TimeDelta::from_millis(5_000),
            ..ReservoirConfig::default()
        },
        make_events(n, 10, 2),
    );
    drop(res);

    // --- cold drain -------------------------------------------------------
    // Reopen the in-order reservoir: empty cache, everything on disk.
    let res = Reservoir::open(&dir_inorder, compact_schema(), cold_cfg()).expect("reopen");
    let (drain_cold_eps, yielded) = drain_all(&res, 4_096, n as i64);
    assert_eq!(yielded, n, "cold drain must see every ingested event");
    drop(res);

    // --- contended: cold drain vs live ingest -----------------------------
    let res = Reservoir::open(&dir_inorder, compact_schema(), cold_cfg()).expect("reopen");
    let fresh: Vec<Event> = {
        let mut gen = FraudGenerator::new(WorkloadConfig {
            seed: 0xC0C0,
            ..WorkloadConfig::default()
        });
        (0..n)
            .map(|i| {
                Event::new(
                    EventId(n + i),
                    Timestamp::from_millis(n as i64 + i as i64),
                    gen.next_compact(),
                )
            })
            .collect()
    };
    let barrier = Barrier::new(2);
    let (ingest_contended_eps, drain_contended_eps) = std::thread::scope(|s| {
        let res_ref = &res;
        let barrier_ref = &barrier;
        let appender = s.spawn(move || {
            let count = fresh.len() as f64;
            barrier_ref.wait();
            let start = Instant::now();
            for e in fresh {
                res_ref.append(e).expect("append");
            }
            count / start.elapsed().as_secs_f64()
        });
        barrier.wait();
        let (drain_eps, yielded) = drain_all(&res, 4_096, n as i64);
        assert!(yielded >= n, "contended drain lost events: {yielded} < {n}");
        (appender.join().expect("appender thread"), drain_eps)
    });
    drop(res);

    Metrics {
        ingest_inorder_eps,
        ingest_late10_eps,
        drain_cold_eps,
        ingest_contended_eps,
        drain_contended_eps,
    }
}

fn json(mode: &str, n: u64, m: &Metrics) -> String {
    let chunk_target = ReservoirConfig::default().chunk_target_events;
    format!(
        "{{\n  \"bench\": \"fig_hotpath\",\n  \"mode\": \"{mode}\",\n  \"events\": {n},\n  \
         \"chunk_target_events\": {chunk_target},\n  \"metrics\": {{\n    \
         \"ingest_inorder_eps\": {:.0},\n    \
         \"ingest_late10_eps\": {:.0},\n    \
         \"drain_cold_eps\": {:.0},\n    \
         \"ingest_contended_eps\": {:.0},\n    \
         \"drain_contended_eps\": {:.0}\n  }}\n}}\n",
        m.ingest_inorder_eps,
        m.ingest_late10_eps,
        m.drain_cold_eps,
        m.ingest_contended_eps,
        m.drain_contended_eps,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let n: u64 = std::env::var("RAILGUN_HOTPATH_EVENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 20_000 } else { 400_000 });

    let metrics = run(n);
    let doc = json(if smoke { "test" } else { "full" }, n, &metrics);
    print!("{doc}");
    if let Some(path) = out_path {
        if let Some(parent) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(parent).ok();
        }
        std::fs::write(&path, &doc).expect("write bench json");
        eprintln!("wrote {path}");
    }
}
