//! Figure 10 reproduction: per-node throughput and tail latency as the
//! cluster scales from 1 to 50 nodes (25 k ev/s per node target, 1 M ev/s
//! total at 50 nodes).
//!
//! Setup mirrors §5.3: three metrics (sum, avg, count of `amount` per
//! card) over a 5-minute window, 8 processor units per node, partitions
//! matched to consumers, Kafka replication 3. Per-event service time is
//! **measured on the real task processor**, then composed through the
//! fleet queueing model (DESIGN.md substitution #5) with:
//!
//! * the calibrated JVM allocation/GC model (the paper's measured per-node
//!   ceiling: ~5 GB/s allocation at 25 k ev/s against a 32 GB heap);
//! * a broker-contention surcharge growing with total partition count (the
//!   Kafka bottleneck the paper hits at 35+ nodes);
//! * the real fraud workload's key skew (load imbalance across units).
//!
//! For every node count the harness searches the highest sustainable rate
//! under the M requirement (<250 ms @ 99.9%) capped at the 25 k ev/s
//! target — the same protocol as §5.3 ("as much load as possible, in a
//! sustained way, without breaching the M requirement").
//!
//! Expected shape (paper): ~25 k ev/s per node up to ~20 nodes, slight
//! degradation from 35 nodes, ~20 k ev/s per node at 50 nodes (1 M ev/s
//! total), with p99.9 below 250 ms throughout.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use railgun_bench::{bench_scale, fmt_ms, ServicePool};
use railgun_bench::{FraudGenerator, WorkloadConfig};
use railgun_core::{TaskConfig, TaskProcessor};
use railgun_sim::{max_sustainable_rate, run_cluster, ClusterSimConfig, GcModel, KafkaHopModel};
use railgun_types::{Event, EventId, Timestamp};

/// §5.3 per-node target.
const TARGET_PER_NODE: f64 = 25_000.0;
/// Units per node (paper: "8 Railgun processors per node").
const UNITS_PER_NODE: u32 = 8;
/// Per-event JVM overhead (object churn at ~200 KB allocated per event)
/// added to the measured Rust service time — the dominant difference
/// between this Rust engine and the paper's JVM prototype (§5.3.1 blames
/// allocation rate and GC for the per-node ceiling). See EXPERIMENTS.md.
const JVM_EVENT_OVERHEAD_US: f64 = 230.0;
/// Broker contention per partition (30-broker fleet; calibrated so the
/// knee lands at ~35 nodes as in the paper).
const BROKER_INFLATION_PER_PARTITION: f64 = 0.0014;

fn bench_dir() -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("railgun-fig10-{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn main() {
    let scale = bench_scale();
    println!("# Figure 10 — Railgun node scaling, 25k ev/s per node target");
    println!("# units/node: {UNITS_PER_NODE}, metrics: sum/avg/count(amount) per card, 5-min window");

    // --- Measure real per-event service time on one task processor. ---
    let mut gen = FraudGenerator::new(WorkloadConfig::default());
    let schema = gen.schema().clone();
    let mut tp = TaskProcessor::open(
        &bench_dir(),
        "payments--cardId",
        0,
        schema,
        TaskConfig::default(),
    )
    .expect("task processor");
    tp.register_query(
        &railgun_core::parse_query(
            "SELECT sum(amount), avg(amount), count(amount) FROM payments \
             GROUP BY cardId OVER sliding 5 min",
        )
        .expect("query parses"),
    )
    .expect("register");
    let prefill = scale.measure_events;
    for seq in 0..prefill {
        let values = gen.next_values();
        tp.process_event(&Event::new(
            EventId(seq),
            Timestamp::from_millis(seq as i64 * 2),
            values,
        ))
        .expect("prefill");
    }
    tp.drain_reservoir_io().expect("drain io");
    let pool = ServicePool::measure(scale.measure_events, |seq| {
        let values = gen.next_values();
        tp.process_event(&Event::new(
            EventId(prefill + seq),
            Timestamp::from_millis((prefill + seq) as i64 * 2),
            values,
        ))
        .expect("measured event");
    });
    let service_mean = pool.mean_us() + JVM_EVENT_OVERHEAD_US;
    println!(
        "# measured Rust service mean: {:.1}µs; modeled JVM service mean: {:.1}µs",
        pool.mean_us(),
        service_mean
    );

    // --- Sweep node counts. ---
    println!();
    println!("=== Figure 10: throughput per node and tail latency vs cluster size ===");
    println!(
        "{:>6} {:>14} {:>16} {:>16} {:>12} {:>12} {:>10}",
        "nodes", "target (ev/s)", "sustained/node", "total (ev/s)", "p95 (ms)", "p99.9 (ms)", "M met?"
    );
    let sim_events = scale.sim_events / 4;
    for (i, &nodes) in [1u32, 3, 6, 12, 20, 35, 50].iter().enumerate() {
        let base = ClusterSimConfig {
            nodes,
            units_per_node: UNITS_PER_NODE,
            total_rate_ev_s: 0.0, // set by the search
            events: sim_events,
            warmup_events: sim_events / 7,
            kafka: KafkaHopModel::calibrated(),
            broker_inflation_per_partition: BROKER_INFLATION_PER_PARTITION,
            partitions_per_unit: 1,
            gc: GcModel::calibrated(),
            service_mean_us: service_mean,
            service_sigma: 0.35,
            load_skew: 0.04,
        };
        let sustainable =
            max_sustainable_rate(&base, 0xF16 + i as u64, 250, 0.999, 5_000.0, 40_000.0)
                .min(TARGET_PER_NODE);
        let mut cfg = base.clone();
        cfg.total_rate_ev_s = sustainable * f64::from(nodes);
        let mut rng = SmallRng::seed_from_u64(0xF16 + i as u64);
        let summary = run_cluster(&cfg, &mut rng);
        let p95 = summary.latencies.percentile(0.95);
        let p999 = summary.latencies.percentile(0.999);
        println!(
            "{nodes:>6} {TARGET_PER_NODE:>14.0} {sustainable:>16.0} {:>16.0} {:>12} {:>12} {:>10}",
            cfg.total_rate_ev_s,
            fmt_ms(p95),
            fmt_ms(p999),
            if p999 <= 250_000 { "MET" } else { "BREACH" }
        );
    }
    println!();
    println!("# Expected shape: near-linear scaling; ~25k ev/s per node through ~20 nodes,");
    println!("# degradation from 35 nodes (broker contention), ~20k ev/s per node at 50 nodes");
    println!("# (≈1M ev/s total), p99.9 < 250 ms throughout — the paper's Figure 10.");
}
