//! Figure 9(a) reproduction: Railgun latency vs window size (5 min → 7
//! days) at 500 ev/s, single machine.
//!
//! Setup mirrors §5.2(a): the same `sum(amount)` per card metric as §5.1,
//! with the window size swept from 5 minutes to 7 days. The paper starts
//! each run "after a data checkpoint load, to ensure that windows are
//! always iterating events for both its head and tail iterator" — we
//! reproduce that by prefilling the reservoir with a dense stretch of
//! events positioned exactly one window-length before the measured run, so
//! the tail cursor streams through disk-resident chunks at the same rate
//! for every window size.
//!
//! Expected shape (paper): latency distributions are indistinguishable
//! across window sizes — "windows of years are equivalent to windows of
//! seconds" — with only extreme-tail (>p99.9) scatter from messaging
//! hiccups. Reservoir memory must stay flat as the window grows 2000×.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use railgun_bench::{bench_scale, print_header, print_series, ServicePool};
use railgun_bench::{FraudGenerator, WorkloadConfig};
use railgun_core::{TaskConfig, TaskProcessor};
use railgun_sim::{run_open_loop, GcModel, InjectorConfig, KafkaHopModel};
use railgun_types::{Event, EventId, TimeDelta, Timestamp};

const RATE_EV_S: f64 = 500.0;
const INTERVAL_MS: i64 = 2;
const JVM_STATE_OP_US: f64 = 3.0;

fn bench_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("railgun-fig9a-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn main() {
    let scale = bench_scale();
    println!("# Figure 9(a) — Railgun latency vs window size @ 500 ev/s");
    println!(
        "# measured events/size: {}, simulated events: {}",
        scale.measure_events, scale.sim_events
    );
    print_header("Figure 9(a)", "vary window size, single machine");

    let sizes: [(&str, TimeDelta); 7] = [
        ("5min", TimeDelta::from_minutes(5)),
        ("30min", TimeDelta::from_minutes(30)),
        ("1h", TimeDelta::from_hours(1)),
        ("2h", TimeDelta::from_hours(2)),
        ("3h", TimeDelta::from_hours(3)),
        ("1day", TimeDelta::from_days(1)),
        ("7days", TimeDelta::from_days(7)),
    ];

    let mut memory_report = Vec::new();
    for (i, (label, ws)) in sizes.iter().enumerate() {
        let mut gen = FraudGenerator::new(WorkloadConfig::default());
        let schema = gen.schema().clone();
        let mut tp = TaskProcessor::open(
            &bench_dir(label),
            "payments--cardId",
            0,
            schema,
            TaskConfig::default(),
        )
        .expect("task processor");
        let mins = ws.as_millis() / 60_000;
        tp.register_query(
            &railgun_core::parse_query(&format!(
                "SELECT sum(amount) FROM payments GROUP BY cardId OVER sliding {mins} min"
            ))
            .expect("query parses"),
        )
        .expect("register");

        // Dense prefill covering the stretch the tail will traverse during
        // the run (events are expired 1:1 with arrivals for every size).
        let prefill = scale.measure_events + scale.measure_events / 5;
        for seq in 0..prefill {
            let values = gen.next_values();
            tp.process_event(&Event::new(
                EventId(seq),
                Timestamp::from_millis(seq as i64 * INTERVAL_MS),
                values,
            ))
            .expect("prefill");
        }
        tp.drain_reservoir_io().expect("drain io");
        // The run starts one window-length later.
        let run_start = ws.as_millis();
        let pool = ServicePool::measure(scale.measure_events, |seq| {
            let values = gen.next_values();
            tp.process_event(&Event::new(
                EventId(prefill + seq),
                Timestamp::from_millis(run_start + seq as i64 * INTERVAL_MS),
                values,
            ))
            .expect("measured event");
        });
        let surcharge = (3.0 * JVM_STATE_OP_US) as u64;
        let cfg = InjectorConfig {
            rate_ev_s: RATE_EV_S,
            events: scale.sim_events,
            warmup_events: scale.sim_events / 7,
            kafka: KafkaHopModel::calibrated(),
            gc: GcModel::calibrated(),
        };
        // Distinct seeds per size: the paper notes run-to-run scatter above
        // p99.9 ("in some runs we have 150ms in 99.99 percentile, while in
        // others 75ms") caused by messaging, not the window size.
        let mut rng = SmallRng::seed_from_u64(0x91A + i as u64);
        let summary = run_open_loop(&cfg, &mut rng, |seq| pool.sample(seq, surcharge));
        print_series(&format!("window {label}"), &summary.latencies);
        let rs = tp.reservoir_stats();
        memory_report.push((
            *label,
            rs.events_in_memory,
            rs.memory_bytes,
            rs.durable_chunks,
            pool.mean_us(),
        ));
    }

    println!();
    println!("# §5.2 memory claim: reservoir memory independent of window size");
    println!(
        "{:<10} {:>18} {:>14} {:>15} {:>18}",
        "window", "events in memory", "memory (KiB)", "durable chunks", "svc mean (µs)"
    );
    for (label, ev, bytes, chunks, mean) in memory_report {
        println!(
            "{label:<10} {ev:>18} {:>14} {chunks:>15} {mean:>18.1}",
            bytes / 1024
        );
    }
    println!();
    println!("# Expected shape: all rows statistically identical — window size is irrelevant");
    println!("# to both latency and memory (only >p99.9 scatter from messaging hiccups).");
}
