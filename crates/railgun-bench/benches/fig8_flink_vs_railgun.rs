//! Figure 8 reproduction: Flink hopping-window latency distributions vs
//! Railgun's real-time sliding window, at a sustained 500 ev/s.
//!
//! Setup mirrors §5.1: one computing node, one metric — `sum(amount)` per
//! card over a 60-minute window. Railgun uses a real-time sliding window;
//! the Flink baseline uses hopping windows with hops from 5 minutes down
//! to 5 seconds. Per-event *service times are measured on the real
//! engines* (both running on the same `railgun-store` LSM substrate), then
//! replayed through the open-loop queueing model with the calibrated
//! messaging-hop model and the JVM per-state-operation surcharge
//! (constants in EXPERIMENTS.md).
//!
//! Expected shape (paper): hops ≤ 10 s cannot sustain 500 ev/s (latencies
//! blow up into the 10⁴-10⁵ ms range); Railgun beats every hop ≤ 1 min at
//! every percentile and meets <250 ms @ 99.9%.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use railgun_baseline::{HoppingConfig, HoppingEngine};
use railgun_bench::{bench_scale, print_header, print_mad_check, print_series, ServicePool};
use railgun_bench::{FraudGenerator, WorkloadConfig};
use railgun_core::lang::AggFunc;
use railgun_core::{TaskConfig, TaskProcessor};
use railgun_sim::{run_open_loop, GcModel, InjectorConfig, KafkaHopModel};
use railgun_store::DbOptions;
use railgun_types::{Event, EventId, TimeDelta, Timestamp};

/// Injection rate of §5.1.
const RATE_EV_S: f64 = 500.0;
/// Virtual inter-arrival time at 500 ev/s.
const INTERVAL_MS: i64 = 2;
/// JVM per-state-operation surcharge (µs) applied per pane update /
/// state access — calibrates the Rust substrate to the JVM+RocksDB costs
/// of the paper's systems (see EXPERIMENTS.md, Fig. 8 calibration).
const JVM_STATE_OP_US: f64 = 3.0;

/// Store options sized for sustained bench runs: a larger memtable keeps
/// LSM flush/compaction cadence realistic for a long-running service
/// instead of thrashing on the bench's compressed timescale.
fn bench_store_options() -> DbOptions {
    DbOptions {
        memtable_budget_bytes: 64 << 20,
        compaction_trigger: 6,
        ..DbOptions::default()
    }
}

fn railgun_task_config() -> TaskConfig {
    TaskConfig {
        store: bench_store_options(),
        ..TaskConfig::default()
    }
}

fn bench_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("railgun-fig8-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn main() {
    let scale = bench_scale();
    let window = TimeDelta::from_minutes(60);
    println!("# Figure 8 — Flink hopping windows vs Railgun sliding window");
    println!(
        "# workload: sum(amount) per card, 60-min window, {} ev/s sustained",
        RATE_EV_S
    );
    println!(
        "# measured events/config: {}, simulated events: {} (RAILGUN_BENCH_SCALE=full for paper scale)",
        scale.measure_events, scale.sim_events
    );

    print_header(
        "Figure 8",
        "latency distributions @ 500 ev/s (60-min window)",
    );

    // --- Railgun: real-time sliding window on a task processor ---
    {
        let mut gen = FraudGenerator::new(WorkloadConfig::default());
        let schema = gen.schema().clone();
        let mut tp = TaskProcessor::open(
            &bench_dir("railgun"),
            "payments--cardId",
            0,
            schema,
            railgun_task_config(),
        )
        .expect("task processor");
        tp.register_query(
            &railgun_core::parse_query(
                "SELECT sum(amount) FROM payments GROUP BY cardId OVER sliding 60 min",
            )
            .expect("query parses"),
        )
        .expect("register");
        // Warm the reservoir so tails iterate steadily.
        let mut ts = 0i64;
        for i in 0..scale.prefill_events {
            let values = gen.next_values();
            tp.process_event(&Event::new(
                EventId(i),
                Timestamp::from_millis(ts),
                values,
            ))
            .expect("prefill");
            ts += INTERVAL_MS;
        }
        tp.drain_reservoir_io().expect("drain io");
        let base = scale.prefill_events;
        let pool = ServicePool::measure(scale.measure_events, |seq| {
            let values = gen.next_values();
            tp.process_event(&Event::new(
                EventId(base + seq),
                Timestamp::from_millis(ts + seq as i64 * INTERVAL_MS),
                values,
            ))
            .expect("measured event");
        });
        // Railgun touches 1 leaf per event: insert + expiry + result read
        // ≈ 3 state ops on the paper's JVM prototype.
        let surcharge = (3.0 * JVM_STATE_OP_US) as u64;
        let summary = simulate(&pool, surcharge, scale.sim_events, 1);
        print_series("Railgun (sliding 60min)", &summary.latencies);
        print_mad_check("Railgun", &summary.latencies);
        eprintln!(
            "  [railgun] measured service mean {:.1}µs p99 {}µs, sim utilization {:.2}",
            pool.mean_us(),
            pool.p99_us(),
            summary.server_utilization
        );
    }

    // --- Flink: hopping windows at decreasing hop sizes ---
    let hops: [(&str, TimeDelta); 6] = [
        ("5min", TimeDelta::from_minutes(5)),
        ("1min", TimeDelta::from_minutes(1)),
        ("30s", TimeDelta::from_secs(30)),
        ("15s", TimeDelta::from_secs(15)),
        ("10s", TimeDelta::from_secs(10)),
        ("5s", TimeDelta::from_secs(5)),
    ];
    for (label, hop) in hops {
        let panes = window / hop;
        let mut gen = FraudGenerator::new(WorkloadConfig::default());
        let mut engine = HoppingEngine::open(
            &bench_dir(&format!("flink-{label}")),
            HoppingConfig {
                window,
                hop,
                aggs: vec![(AggFunc::Sum, Some(0))],
                store: bench_store_options(),
            },
        )
        .expect("hopping engine");
        // Warm up pane population (shorter than Railgun's prefill: pane
        // state is bounded by panes × keys, not by history). Heavier pane
        // counts measure fewer events — per-event cost is stationary, so
        // a smaller sample loses nothing.
        let measure = scale
            .measure_events
            .min((2_400_000 / panes as u64).max(2_000));
        let warm = (scale.prefill_events / 8).clamp(1_000, 4_000);
        let mut ts = 0i64;
        for _ in 0..warm {
            let values = gen.next_values();
            let card = values[0].as_str().expect("card id").to_owned();
            let amount = vec![values[2].clone()];
            engine
                .process(card.as_bytes(), Timestamp::from_millis(ts), &amount)
                .expect("warmup");
            ts += INTERVAL_MS;
        }
        let updates_before = engine.stats().pane_updates;
        let pool = ServicePool::measure(measure, |seq| {
            let values = gen.next_values();
            let card = values[0].as_str().expect("card id").to_owned();
            let amount = vec![values[2].clone()];
            engine
                .process(
                    card.as_bytes(),
                    Timestamp::from_millis(ts + seq as i64 * INTERVAL_MS),
                    &amount,
                )
                .expect("measured event");
        });
        let updates = engine.stats().pane_updates - updates_before;
        let ops_per_event = updates as f64 / measure as f64;
        // Every pane update is a state read-modify-write on the JVM.
        let surcharge = (ops_per_event * 2.0 * JVM_STATE_OP_US) as u64;
        let summary = simulate(&pool, surcharge, scale.sim_events, 1);
        print_series(&format!("Flink hop {label} ({panes} panes)"), &summary.latencies);
        eprintln!(
            "  [flink {label}] pane updates/event {:.1}, measured mean {:.1}µs, surcharge {}µs, utilization {:.2}",
            ops_per_event,
            pool.mean_us(),
            surcharge,
            summary.server_utilization
        );
    }

    println!();
    println!(
        "# Expected shape: Railgun lowest at every percentile; Flink degrades as the hop"
    );
    println!(
        "# shrinks, and hops <=10s cannot sustain 500 ev/s (latency grows without bound)."
    );
}

fn simulate(
    pool: &ServicePool,
    surcharge_us: u64,
    events: u64,
    seed: u64,
) -> railgun_sim::RunSummary {
    let cfg = InjectorConfig {
        rate_ev_s: RATE_EV_S,
        events,
        warmup_events: events / 7, // the paper ignores the first 5 of 35 min
        kafka: KafkaHopModel::calibrated(),
        gc: GcModel::calibrated(),
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    run_open_loop(&cfg, &mut rng, |seq| pool.sample(seq, surcharge_us))
}
