//! Rebalance-downtime baseline (BENCH_rebalance.json).
//!
//! Measures what a planned reconfiguration costs a live client with and
//! without checkpoint-based state handover (the paper's §4.2 elasticity
//! story). Both arms preload the same per-card event log, then repeatedly
//! scale out (add a node) and back in, probing every card through the
//! surviving front-end after each step. Replies are in-order per task, so
//! a probe's latency is exactly the time its gained task still needs to
//! become current — the per-key downtime of the rebalance:
//!
//! * **full_replay** — periodic checkpoints off, scale-in via plain
//!   decommission: a gained task has no state image and must replay its
//!   partition from offset 0 (the pre-handover baseline);
//! * **handover** — periodic checkpoints on, scale-in via
//!   `Cluster::drain_node`: a gained task restores the newest published
//!   image and replays only the tail behind it.
//!
//! Every probe reply is also verified against the expected per-card
//! running count, so each run re-proves that no acked event is lost
//! across any of the reconfigurations (the drain zero-loss contract).
//!
//! Run modes mirror the other figure benches:
//!
//! * `cargo bench -p railgun-bench --bench fig_rebalance` — full run;
//! * `-- --test` — smoke mode (smaller workload, used by CI);
//! * `-- --out <path>` — additionally write the JSON to `<path>`.

use std::time::Instant;

use railgun_core::{Cluster, ClusterConfig, ElasticCounters};
use railgun_types::{FieldType, Schema, Timestamp, Value};

const PARTITIONS: u32 = 8;

struct ArmResult {
    latencies_us: Vec<u64>,
    elastic: ElasticCounters,
}

fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

/// One arm: preload the log, then `trials` × (add node → probe every
/// card → remove a node → probe every card), verifying every reply.
fn run_arm(
    tag: &str,
    events: u64,
    cards: u64,
    trials: u32,
    checkpoint_every: u64,
) -> ArmResult {
    let mut cfg = ClusterConfig {
        nodes: 1,
        units_per_node: 1,
        partitions: PARTITIONS,
        ..ClusterConfig::default()
    };
    cfg.data_root =
        std::env::temp_dir().join(format!("railgun-figrebalance-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&cfg.data_root).ok();
    cfg.checkpoint_every = checkpoint_every;
    // Full replay of tens of thousands of events takes many pump rounds;
    // never let a collect give up before the gained task catches up.
    cfg.max_pump_iterations = 1_000_000;
    let handover = checkpoint_every > 0;

    let mut cluster = Cluster::new(cfg).expect("cluster");
    let schema = Schema::from_pairs(&[
        ("cardId", FieldType::Str),
        ("amount", FieldType::Float),
    ])
    .expect("schema");
    cluster
        .create_stream("payments", schema, &["cardId"])
        .expect("stream");
    cluster
        .register_query("SELECT count(*) FROM payments GROUP BY cardId OVER infinite")
        .expect("query");

    // Preload: the log every gained task must catch up on.
    let mut counts = vec![0u64; cards as usize];
    let mut ts = 0i64;
    let mut send = |cluster: &mut Cluster, card: u64, ts: i64| -> i64 {
        let r = cluster
            .send_via(
                0,
                "payments",
                Timestamp::from_millis(ts),
                vec![Value::from(format!("card-{card}")), Value::from(1.0)],
            )
            .expect("send");
        counts[card as usize] += 1;
        let got = r.aggregations[0].value.as_i64().expect("count");
        assert_eq!(
            got as u64, counts[card as usize],
            "card {card}: acked event lost (expected {}, got {got})",
            counts[card as usize]
        );
        got
    };
    for i in 0..events {
        ts += 1;
        send(&mut cluster, i % cards, ts);
    }

    // Reconfiguration trials. Probes go through node 0, which never
    // leaves; each probe's latency is its card's remaining downtime.
    let mut latencies_us = Vec::with_capacity((trials as usize) * (cards as usize) * 2);
    let mut probe_all = |cluster: &mut Cluster, ts: &mut i64, latencies: &mut Vec<u64>| {
        for card in 0..cards {
            *ts += 1;
            let t0 = Instant::now();
            send(cluster, card, *ts);
            latencies.push(t0.elapsed().as_micros() as u64);
        }
    };
    for trial in 0..trials {
        eprintln!("#   {tag}: trial {}/{trials}", trial + 1);
        cluster.add_node().expect("add node");
        probe_all(&mut cluster, &mut ts, &mut latencies_us);
        if handover {
            cluster.drain_node(1).expect("drain node");
        } else {
            // The baseline arm must stay checkpoint-free: a drain would
            // publish images and turn the next trial into a handover.
            cluster.decommission_node(1).expect("decommission node");
        }
        probe_all(&mut cluster, &mut ts, &mut latencies_us);
    }

    let elastic = cluster.metrics_snapshot().elastic;
    latencies_us.sort_unstable();
    ArmResult {
        latencies_us,
        elastic,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (events, cards, trials, checkpoint_every) = if smoke {
        (4_000u64, 16u64, 3u32, 100u64)
    } else {
        (40_000u64, 16u64, 5u32, 250u64)
    };

    eprintln!(
        "# fig_rebalance: {events} preloaded events, {cards} cards, {PARTITIONS} partitions, \
         {trials} scale-out/in trials per arm"
    );
    eprintln!("#   arm 1/2: full replay (checkpoints off)");
    let full = run_arm("full", events, cards, trials, 0);
    eprintln!("#   arm 2/2: checkpoint handover (every {checkpoint_every} events)");
    let hand = run_arm("handover", events, cards, trials, checkpoint_every);

    let full_p50 = percentile(&full.latencies_us, 0.50);
    let full_p99 = percentile(&full.latencies_us, 0.99);
    let hand_p50 = percentile(&hand.latencies_us, 0.50);
    let hand_p99 = percentile(&hand.latencies_us, 0.99);
    let ratio = full_p99 as f64 / hand_p99.max(1) as f64;
    assert!(
        hand.elastic.handovers_completed > 0,
        "handover arm never restored from a checkpoint: {:?}",
        hand.elastic
    );
    assert_eq!(
        hand.elastic.handover_fallbacks, 0,
        "handover arm fell back to full replay: {:?}",
        hand.elastic
    );

    eprintln!("#   full replay:  p50 {full_p50} µs, p99 {full_p99} µs");
    eprintln!(
        "#   handover:     p50 {hand_p50} µs, p99 {hand_p99} µs \
         ({} handovers, {} tail events, {} drains)",
        hand.elastic.handovers_completed,
        hand.elastic.tail_events_replayed,
        hand.elastic.drains_completed
    );
    eprintln!("#   downtime p99 ratio (full replay / handover): {ratio:.1}x");

    // -- JSON ---------------------------------------------------------------
    let mode = if smoke { "test" } else { "full" };
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"bench\": \"fig_rebalance\",\n  \"schema_version\": 1,\n  \"mode\": \"{mode}\",\n"
    ));
    json.push_str(&format!(
        "  \"config\": {{ \"events\": {events}, \"cards\": {cards}, \"partitions\": {PARTITIONS}, \
         \"trials\": {trials}, \"checkpoint_every\": {checkpoint_every} }},\n"
    ));
    json.push_str("  \"measured\": {\n");
    json.push_str(
        "    \"note\": \"µs per probe send through a surviving front-end right after a \
         scale-out/in; replies are in-order per task, so probe latency is the card's remaining \
         rebalance downtime. Every reply is verified against the expected running count (zero \
         acked loss).\",\n",
    );
    json.push_str(&format!(
        "    \"full_replay\": {{ \"probes\": {}, \"p50_us\": {full_p50}, \"p99_us\": {full_p99} }},\n",
        full.latencies_us.len()
    ));
    json.push_str(&format!(
        "    \"handover\": {{ \"probes\": {}, \"p50_us\": {hand_p50}, \"p99_us\": {hand_p99}, \
         \"handovers\": {}, \"tail_events_replayed\": {}, \"fallbacks\": {}, \"drains\": {} }},\n",
        hand.latencies_us.len(),
        hand.elastic.handovers_completed,
        hand.elastic.tail_events_replayed,
        hand.elastic.handover_fallbacks,
        hand.elastic.drains_completed
    ));
    json.push_str(&format!(
        "    \"downtime_p99_ratio\": {ratio:.2},\n    \"acked_loss\": 0\n"
    ));
    json.push_str("  }\n}\n");

    print!("{json}");
    if let Some(path) = out_path {
        if let Some(parent) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(parent).ok();
        }
        std::fs::write(&path, &json).expect("write bench json");
        eprintln!("wrote {path}");
    }
}
