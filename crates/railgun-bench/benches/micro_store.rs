//! Microbenchmarks & ablations: the LSM state store.
//!
//! The engine's hot path is a read-modify-write per plan leaf (§4.1.3);
//! these benches pin those costs and the bloom-filter ablation DESIGN.md
//! calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use railgun_store::{Db, DbOptions};

fn fresh_db(tag: &str, opts: DbOptions) -> Db {
    let dir = std::env::temp_dir().join(format!("railgun-mstore-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    Db::open(&dir, opts).expect("db")
}

fn put_get_hot_path(c: &mut Criterion) {
    let db = fresh_db("hot", DbOptions::default());
    let mut group = c.benchmark_group("store_hot_path");
    let mut i = 0u64;
    group.bench_function("put_48B", |b| {
        b.iter(|| {
            let key = format!("leaf0/card-{:08}", i % 50_000);
            i += 1;
            db.put(Db::DEFAULT_CF, key.as_bytes(), &[7u8; 48]).expect("put")
        });
    });
    group.bench_function("get_memtable_hit", |b| {
        let mut j = 0u64;
        b.iter(|| {
            let key = format!("leaf0/card-{:08}", j % 50_000);
            j += 1;
            black_box(db.get(Db::DEFAULT_CF, key.as_bytes()).expect("get"))
        });
    });
    group.bench_function("read_modify_write", |b| {
        let mut j = 0u64;
        b.iter(|| {
            let key = format!("leaf0/card-{:08}", j % 50_000);
            j += 1;
            let mut v = db
                .get(Db::DEFAULT_CF, key.as_bytes())
                .expect("get")
                .unwrap_or_else(|| vec![0u8; 48]);
            v[0] = v[0].wrapping_add(1);
            db.put(Db::DEFAULT_CF, key.as_bytes(), &v).expect("put")
        });
    });
    group.finish();
}

fn sst_point_reads_bloom_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bloom_filters");
    for (label, bits) in [("bloom_10bits", 10usize), ("bloom_off", 0)] {
        let db = fresh_db(
            label,
            DbOptions {
                bloom_bits_per_key: bits.max(1),
                ..DbOptions::default()
            },
        );
        // Build several SSTs so point misses have runs to skip. A key that
        // exists only in the OLDEST run makes blooms matter most.
        for run in 0..4 {
            for k in 0..20_000u64 {
                let key = format!("r{run}/key-{k:08}");
                db.put(Db::DEFAULT_CF, key.as_bytes(), &[run as u8; 32])
                    .expect("put");
            }
            db.flush().expect("flush");
        }
        // Absent-key reads: blooms skip every run; without them each run
        // does an index + block probe. (bloom_off approximates "off" with
        // 1 bit/key, which has a very high false-positive rate.)
        group.bench_function(BenchmarkId::new("get_absent", label), |b| {
            let mut i = 0u64;
            b.iter(|| {
                let key = format!("absent-{i}");
                i += 1;
                black_box(db.get(Db::DEFAULT_CF, key.as_bytes()).expect("get"))
            });
        });
        group.bench_function(BenchmarkId::new("get_oldest_run", label), |b| {
            let mut i = 0u64;
            b.iter(|| {
                let key = format!("r0/key-{:08}", i % 20_000);
                i += 1;
                black_box(db.get(Db::DEFAULT_CF, key.as_bytes()).expect("get"))
            });
        });
    }
    group.finish();
}

fn scans_and_checkpoint(c: &mut Criterion) {
    let db = fresh_db("scan", DbOptions::default());
    for k in 0..50_000u64 {
        let key = format!("leaf{:02}/e-{k:08}", k % 8);
        db.put(Db::DEFAULT_CF, key.as_bytes(), &[1u8; 40]).expect("put");
    }
    db.flush().expect("flush");
    c.bench_function("store_prefix_scan_6k_rows", |b| {
        b.iter(|| {
            black_box(
                db.scan_prefix(Db::DEFAULT_CF, b"leaf03/")
                    .expect("scan")
                    .len(),
            )
        });
    });
    c.bench_function("store_checkpoint", |b| {
        let mut i = 0u32;
        b.iter(|| {
            let target = std::env::temp_dir().join(format!(
                "railgun-mstore-ckpt-{}-{i}",
                std::process::id()
            ));
            std::fs::remove_dir_all(&target).ok();
            i += 1;
            db.checkpoint(&target).expect("checkpoint")
        });
    });
}

fn wal_recovery(c: &mut Criterion) {
    c.bench_function("store_open_with_wal_replay_10k", |b| {
        let dir = std::env::temp_dir().join(format!("railgun-mstore-walr-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let db = Db::open(&dir, DbOptions::default()).expect("db");
            for k in 0..10_000u64 {
                db.put(Db::DEFAULT_CF, &k.to_le_bytes(), &[3u8; 32]).expect("put");
            }
            // No flush: everything stays in the WAL.
        }
        b.iter(|| black_box(Db::open(&dir, DbOptions::default()).expect("reopen")));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = put_get_hot_path, sst_point_reads_bloom_ablation, scans_and_checkpoint, wal_recovery
);
criterion_main!(benches);
