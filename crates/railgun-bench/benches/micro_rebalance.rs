//! Ablation: Railgun's sticky assignment strategy (Figure 7) vs plain
//! round-robin — how much data movement each rebalance causes.
//!
//! This is a `harness = false` report bench: it prints the task-movement
//! counts (the data-shuffle metric §4.2 minimizes) for node join, node
//! loss, and steady-state rebalances, then times the assignment itself.

use std::collections::HashMap;
use std::time::Instant;

use railgun_core::rebalance::{ProcessorIdentity, RailgunStrategy};
use railgun_messaging::{
    moved_partitions, AssignmentContext, AssignmentStrategy, MemberId, MemberInfo,
    RoundRobinStrategy, TopicPartition,
};

fn members(nodes: u32, units: u32) -> Vec<MemberInfo> {
    let mut out = Vec::new();
    let mut id: MemberId = 1;
    for n in 0..nodes {
        for u in 0..units {
            out.push(MemberInfo {
                id,
                metadata: ProcessorIdentity { node: n, unit: u }.encode(),
                previous: Vec::new(),
            });
            id += 1;
        }
    }
    out
}

fn partitions(n: u32) -> Vec<TopicPartition> {
    (0..n).map(|p| TopicPartition::new("payments--cardId", p)).collect()
}

fn with_previous(
    members: &[MemberInfo],
    assignment: &HashMap<MemberId, Vec<TopicPartition>>,
) -> Vec<MemberInfo> {
    members
        .iter()
        .map(|m| MemberInfo {
            id: m.id,
            metadata: m.metadata.clone(),
            previous: assignment.get(&m.id).cloned().unwrap_or_default(),
        })
        .collect()
}

fn scenario(strategy: &dyn AssignmentStrategy, label: &str) {
    let parts = partitions(64);
    // Generation 1: 8 nodes × 4 units.
    let gen1_members = members(8, 4);
    let a1 = strategy.assign(&AssignmentContext {
        members: gen1_members.clone(),
        partitions: parts.clone(),
    });
    // Generation 2: nothing changed.
    let gen2_members = with_previous(&gen1_members, &a1);
    let a2 = strategy.assign(&AssignmentContext {
        members: gen2_members.clone(),
        partitions: parts.clone(),
    });
    let steady = moved_partitions(&a1, &a2);
    // Generation 3: one node (4 units) dies.
    let survivors: Vec<MemberInfo> = with_previous(&gen1_members, &a2)
        .into_iter()
        .filter(|m| {
            ProcessorIdentity::decode(&m.metadata).map(|i| i.node) != Some(0)
        })
        .collect();
    let a3 = strategy.assign(&AssignmentContext {
        members: survivors.clone(),
        partitions: parts.clone(),
    });
    let lost_tasks: usize = a2
        .iter()
        .filter(|(id, _)| survivors.iter().all(|m| m.id != **id))
        .map(|(_, ts)| ts.len())
        .sum();
    let node_loss_moves = moved_partitions(&a2, &a3);
    // Generation 4: a fresh node joins.
    let mut grown = with_previous(&survivors, &a3);
    grown.extend(members(1, 4).into_iter().map(|mut m| {
        m.id += 1000;
        m.metadata = ProcessorIdentity { node: 9, unit: m.id as u32 % 4 }.encode();
        m
    }));
    let a4 = strategy.assign(&AssignmentContext {
        members: grown,
        partitions: parts.clone(),
    });
    let join_moves = moved_partitions(&a3, &a4);
    println!(
        "{label:<16} steady-state moves: {steady:>3}   node-loss moves: {node_loss_moves:>3} (minimum {lost_tasks})   node-join moves: {join_moves:>3}"
    );
}

fn main() {
    println!("# Ablation — task movement per rebalance (64 tasks, 8 nodes x 4 units)");
    println!("# Lower is better: every moved task implies data recovery (§4.2).");
    scenario(&RailgunStrategy::new(1), "railgun-sticky");
    scenario(&RoundRobinStrategy, "round-robin");
    println!();

    // With replication: failover should land on previous replicas.
    println!("# Railgun strategy with replication factor 3 (paper's deployment):");
    let strategy = RailgunStrategy::new(3);
    let parts = partitions(48);
    let gen1 = members(6, 4);
    let a1 = strategy.assign(&AssignmentContext {
        members: gen1.clone(),
        partitions: parts.clone(),
    });
    let survivors: Vec<MemberInfo> = with_previous(&gen1, &a1)
        .into_iter()
        .filter(|m| ProcessorIdentity::decode(&m.metadata).map(|i| i.node) != Some(0))
        .collect();
    let a2 = strategy.assign(&AssignmentContext {
        members: survivors,
        partitions: parts.clone(),
    });
    let moves = moved_partitions(&a1, &a2);
    println!(
        "  node loss with replicas: {moves} active tasks moved, {} cold assignments so far",
        strategy.cold_assignments()
    );

    // Timing: assignment latency at cluster scale.
    println!();
    println!("# Assignment latency (400 units, 400 partitions — the 50-node setup):");
    for (label, strategy) in [
        ("railgun-sticky", &RailgunStrategy::new(3) as &dyn AssignmentStrategy),
        ("round-robin", &RoundRobinStrategy),
    ] {
        let ms = members(50, 8);
        let ps = partitions(400);
        let t = Instant::now();
        let iters = 20;
        for _ in 0..iters {
            let _ = strategy.assign(&AssignmentContext {
                members: ms.clone(),
                partitions: ps.clone(),
            });
        }
        println!(
            "  {label:<16} {:>8.2} ms/assignment",
            t.elapsed().as_secs_f64() * 1e3 / f64::from(iters)
        );
    }
}
