//! Single-core ingest throughput baseline: batched vs single-message
//! front-end publishing (BENCH_ingest.json).
//!
//! The batched-ingest refactor (PR 6) encodes each event once into a
//! shared frame and moves whole record batches across the bus — one hop,
//! one wakeup, one reservoir lock per batch instead of per event. This
//! bench isolates that gain on **one core**: the cluster runs in pump
//! mode, so the front-end, the units and the reservoir all execute
//! inline on the bench thread and the only variable is how many messages
//! the same event stream becomes.
//!
//! Events are driven in bursts of `DEPTH` pipelined `send_async` calls
//! followed by a collect of the whole burst — the shape that lets the
//! front-end coalesce (a closed loop of synchronous sends is a batch of
//! one by design; see DESIGN.md § "Batched ingest").
//!
//! The sweep covers `max_batch_events` ∈ {1, 16, 64, 256}; `1` is the
//! pre-batching message-per-event path and is the committed baseline the
//! CI guard in `scripts/bench_baseline.sh` holds the batched path
//! against.
//!
//! Run modes mirror the other figure benches:
//!
//! * `cargo bench -p railgun-bench --bench fig_ingest` — full run;
//! * `-- --test` — smoke mode (tiny N, used by CI);
//! * `-- --out <path>` — additionally write the JSON to `<path>`;
//! * `FIG_INGEST_STAGES=1` — also enable engine telemetry and print
//!   per-stage latency totals (where the per-event budget goes).

use std::time::Instant;

use railgun_bench::{compact_schema, queries, FraudGenerator, WorkloadConfig};
use railgun_core::{BatchPolicy, Cluster, ClusterConfig};
use railgun_types::{Timestamp, Value};

/// Partitions per event topic.
const PARTITIONS: u32 = 4;
/// Pipelined burst size: events sent before the burst is collected. Also
/// the default coalescing bound, so the batched run publishes bursts as
/// single frames.
const DEPTH: usize = 64;

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("railgun-ingest-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

struct Measured {
    eps: f64,
    /// Largest batch or run observed (the engine's always-on batch-size
    /// histogram is shared between front-end publishes and unit runs).
    max_batch: u64,
    /// Events the front-end published in multi-event batches — zero in
    /// the single-message configuration by construction, which is the
    /// evidence the knob did what the label says.
    frontend_batched: u64,
}

/// Pump-mode run: everything inline on this thread. `events` are sent in
/// bursts of `DEPTH` `send_async` calls, then the burst is collected
/// (collect pumps until the reply is in).
fn run_pump(tag: &str, events: &[(Timestamp, Vec<Value>)], max_events: usize) -> Measured {
    let mut cfg = ClusterConfig {
        nodes: 1,
        units_per_node: 2,
        partitions: PARTITIONS,
        replication: 1,
        ..ClusterConfig::default()
    };
    cfg.data_root = fresh_dir(tag);
    cfg.max_in_flight = DEPTH * 2;
    cfg.collect_timeout_ms = 60_000;
    cfg.batch = BatchPolicy {
        max_events,
        ..BatchPolicy::default()
    };
    cfg.telemetry = std::env::var_os("FIG_INGEST_STAGES").is_some();
    let mut cluster = Cluster::new(cfg).expect("cluster boots");
    cluster
        .create_stream("payments", compact_schema(), &["cardId"])
        .expect("stream");
    cluster.register(&queries::per_card()).expect("q1");
    cluster
        .register(&queries::distinct_merchants())
        .expect("q2");

    let mut tickets = Vec::with_capacity(DEPTH);
    let start = Instant::now();
    for burst in events.chunks(DEPTH) {
        for (ts, values) in burst {
            tickets.push(
                cluster
                    .send_async("payments", *ts, values.clone())
                    .expect("send_async"),
            );
        }
        for t in tickets.drain(..) {
            cluster.collect(t).expect("collect");
        }
    }
    let wall = start.elapsed();
    if std::env::var_os("FIG_INGEST_STAGES").is_some() {
        let snap = cluster.metrics_snapshot();
        for (name, h) in [
            ("unit_process", &snap.stages.unit_process),
            ("reservoir_append", &snap.stages.reservoir_append),
            ("store_wal_append", &snap.stages.store_wal_append),
        ] {
            let l = railgun_types::LatencyLadder::from_histogram(h);
            eprintln!(
                "#     [{tag}] {name}: count {} p50 {} p99 {} mean {:.1} total_ms {:.0}",
                l.count,
                l.p50_us,
                l.p99_us,
                l.mean_us,
                l.mean_us * l.count as f64 / 1000.0
            );
        }
    }
    let batching = cluster.metrics_snapshot().batching;
    Measured {
        eps: events.len() as f64 / wall.as_secs_f64(),
        max_batch: batching.batch_size.max(),
        frontend_batched: batching.frontend_batched_events,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let total_events = if smoke { 2_000 } else { 20_000 };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // One pre-generated event stream, replayed identically per setting so
    // the sweep differs only in message framing. Timestamps advance 1 ms
    // per event — the same ramp workload (window filling, no eviction yet)
    // and event count as the committed BENCH_scaling.json in-flight sweep,
    // so the single-message row here is directly comparable to it.
    let mut gen = FraudGenerator::new(WorkloadConfig::default());
    let events: Vec<(Timestamp, Vec<Value>)> = (0..total_events)
        .map(|i| (Timestamp::from_millis(i as i64), gen.next_compact()))
        .collect();

    let batch_events: &[usize] = if smoke { &[1, 64] } else { &[1, 16, 64, 256] };
    eprintln!(
        "# fig_ingest: single-core pump-mode ingest, {total_events} events, burst depth {DEPTH} \
         ({cores} core(s) available)"
    );
    let mut sweep = Vec::new();
    for &b in batch_events {
        let m = run_pump(&format!("b{b}"), &events, b);
        eprintln!(
            "#   max_batch_events={b}: {:.0} ev/s (largest batch/run: {}, frontend-batched events: {})",
            m.eps, m.max_batch, m.frontend_batched
        );
        sweep.push((b, m));
    }
    let single = &sweep.first().expect("sweep ran").1;
    let batched = &sweep
        .iter()
        .find(|(b, _)| *b == DEPTH)
        .expect("default batch setting in sweep")
        .1;
    let speedup = batched.eps / single.eps;
    eprintln!(
        "#   batched ({DEPTH}) vs single-message: {:.0} vs {:.0} ev/s ({speedup:.2}x)",
        batched.eps, single.eps
    );

    // -- JSON ---------------------------------------------------------------
    let mode = if smoke { "test" } else { "full" };
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"bench\": \"fig_ingest\",\n  \"schema_version\": 1,\n  \"mode\": \"{mode}\",\n"
    ));
    json.push_str(&format!(
        "  \"machine\": {{ \"available_cores\": {cores} }},\n"
    ));
    json.push_str(&format!(
        "  \"config\": {{ \"units\": 2, \"partitions\": {PARTITIONS}, \"burst_depth\": {DEPTH}, \"events\": {total_events} }},\n"
    ));
    json.push_str("  \"measured\": {\n");
    json.push_str(
        "    \"note\": \"pump mode: front-end, units and reservoir inline on one thread; \
         max_batch_events = 1 is the pre-batching message-per-event baseline\",\n",
    );
    json.push_str("    \"by_max_events\": [\n");
    for (i, (b, m)) in sweep.iter().enumerate() {
        json.push_str(&format!(
            "      {{ \"max_batch_events\": {b}, \"eps\": {:.0}, \"largest_batch\": {}, \"frontend_batched_events\": {} }}{}\n",
            m.eps,
            m.max_batch,
            m.frontend_batched,
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    json.push_str("    ],\n");
    json.push_str(&format!(
        "    \"single_message_eps\": {:.0},\n    \"batched_eps\": {:.0},\n    \"speedup\": {speedup:.2}\n",
        single.eps, batched.eps
    ));
    json.push_str("  }\n}\n");

    print!("{json}");
    if let Some(path) = out_path {
        if let Some(parent) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(parent).ok();
        }
        std::fs::write(&path, &json).expect("write bench json");
        eprintln!("wrote {path}");
    }
}
