//! Crash-recovery wall-time baseline (BENCH_recovery.json).
//!
//! Runs the store's deterministic crash-torture sweep
//! (`railgun_store::torture`): a mixed put/delete/flush/compact/checkpoint
//! workload is crashed at every registered crash point, the frozen image
//! is reopened with the real filesystem, and the time from `Db::open` to
//! a verified, queryable store is measured. The interesting number for
//! the paper's availability story is the **worst-case** recovery time
//! across crash points — that is the pause a fraud-scoring node adds on
//! top of topic replay after an unclean exit, and the one
//! `scripts/bench_baseline.sh` sanity-checks against the committed
//! baseline.
//!
//! Every run also re-proves the sweep's correctness invariants (no acked
//! write lost, integrity verified, checkpoints restore exactly); this
//! bench only adds the stopwatch.
//!
//! Run modes mirror the other figure benches:
//!
//! * `cargo bench -p railgun-bench --bench fig_recovery` — full run;
//! * `-- --test` — smoke mode (smaller workload, used by CI);
//! * `-- --out <path>` — additionally write the JSON to `<path>`.

use std::collections::BTreeMap;

use railgun_store::torture;

/// Deterministic sweep parameters: same seed as the crash-torture test
/// suite so the bench exercises the exact images the tests prove safe.
const SEED: u64 = 0xC0FFEE;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (ops, hits_per_point) = if smoke { (150, 1) } else { (400, 3) };
    let root = std::env::temp_dir().join(format!("railgun-figrecovery-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();

    eprintln!(
        "# fig_recovery: crash-torture sweep, {ops} ops, {hits_per_point} hit(s) per crash point"
    );
    let report = torture::sweep(&root, ops, SEED, hits_per_point).expect("crash-torture sweep");
    std::fs::remove_dir_all(&root).ok();

    // Aggregate per crash point: runs, mean and max recovery time, and
    // which repair paths fired (so the JSON shows the sweep covered them).
    struct PointAgg {
        runs: u64,
        total_us: u128,
        max_us: u128,
        wal_truncated_bytes: u64,
        orphans: u64,
        tmp_removed: u64,
    }
    let mut by_point: BTreeMap<&str, PointAgg> = BTreeMap::new();
    for r in &report.results {
        let agg = by_point.entry(r.plan.point).or_insert(PointAgg {
            runs: 0,
            total_us: 0,
            max_us: 0,
            wal_truncated_bytes: 0,
            orphans: 0,
            tmp_removed: 0,
        });
        agg.runs += 1;
        agg.total_us += r.recovery_micros;
        agg.max_us = agg.max_us.max(r.recovery_micros);
        agg.wal_truncated_bytes += r.recovery.wal_truncated_bytes;
        agg.orphans += r.recovery.orphaned_sstables_quarantined;
        agg.tmp_removed += r.recovery.stale_tmp_removed;
    }
    let worst_us = report
        .results
        .iter()
        .map(|r| r.recovery_micros)
        .max()
        .unwrap_or(0);
    let clean_us = report.clean_recovery_micros;

    for (point, agg) in &by_point {
        eprintln!(
            "#   {point}: {} run(s), mean {} µs, max {} µs",
            agg.runs,
            agg.total_us / u128::from(agg.runs),
            agg.max_us
        );
    }
    eprintln!(
        "#   clean reopen {clean_us} µs; worst crash-point recovery {worst_us} µs \
         ({} crash runs over {} points)",
        report.results.len(),
        by_point.len()
    );

    // -- JSON ---------------------------------------------------------------
    let mode = if smoke { "test" } else { "full" };
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"bench\": \"fig_recovery\",\n  \"schema_version\": 1,\n  \"mode\": \"{mode}\",\n"
    ));
    json.push_str(&format!(
        "  \"config\": {{ \"ops\": {ops}, \"seed\": {SEED}, \"hits_per_point\": {hits_per_point} }},\n"
    ));
    json.push_str("  \"measured\": {\n");
    json.push_str(
        "    \"note\": \"µs from Db::open on a frozen crash image to a verified, queryable \
         store; every run also asserts no acked write was lost\",\n",
    );
    json.push_str(&format!(
        "    \"clean_recovery_us\": {clean_us},\n    \"worst_recovery_us\": {worst_us},\n    \"crash_runs\": {},\n",
        report.results.len()
    ));
    json.push_str("    \"by_point\": [\n");
    for (i, (point, agg)) in by_point.iter().enumerate() {
        json.push_str(&format!(
            "      {{ \"point\": \"{point}\", \"runs\": {}, \"mean_recovery_us\": {}, \
             \"max_recovery_us\": {}, \"wal_truncated_bytes\": {}, \
             \"orphaned_sstables\": {}, \"stale_tmp_removed\": {} }}{}\n",
            agg.runs,
            agg.total_us / u128::from(agg.runs),
            agg.max_us,
            agg.wal_truncated_bytes,
            agg.orphans,
            agg.tmp_removed,
            if i + 1 < by_point.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  }\n}\n");

    print!("{json}");
    if let Some(path) = out_path {
        if let Some(parent) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(parent).ok();
        }
        std::fs::write(&path, &json).expect("write bench json");
        eprintln!("wrote {path}");
    }
}
