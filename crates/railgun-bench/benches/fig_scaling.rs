//! Multi-core scaling baseline: throughput and tail latency of the
//! threaded cluster runtime vs worker-thread count and in-flight depth.
//!
//! Two complementary dimensions, recorded in BENCH_scaling.json:
//!
//! * **measured** — the real threaded runtime on this machine: an
//!   in-process cluster is `start()`ed (one OS thread per processor
//!   unit), concurrent `ClusterClient` threads pipeline events through
//!   `send_async`/`collect`, and wall-clock throughput plus per-request
//!   p50/p99 round-trip latency are reported for 1/2/4/8 units and for a
//!   sweep of in-flight depths. These numbers are whatever the hardware
//!   gives — on a single-core container the unit sweep is flat by
//!   physics, while the in-flight sweep still shows real pipelining gains
//!   (depth hides the request round-trip).
//! * **modeled** — per-event service time measured on the real task
//!   processor, composed through the fleet queueing model exactly like
//!   the Figure 10 reproduction (DESIGN.md substitution #5): U
//!   single-threaded FIFO servers, Zipf key skew routed by the real
//!   partition hash, max sustained rate searched under the paper's M
//!   requirement (p99.9 < 250 ms, §5.3 protocol). This is the multi-core
//!   scaling curve the threaded runtime delivers when each worker thread
//!   actually owns a core.
//!
//! Run modes mirror `fig_hotpath`:
//!
//! * `cargo bench -p railgun-bench --bench fig_scaling` — full run;
//! * `-- --test` — smoke mode (tiny N, used by CI);
//! * `-- --out <path>` — additionally write the JSON to `<path>`.

use std::sync::Barrier;
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use railgun_bench::{compact_schema, queries, FraudGenerator, ServicePool, WorkloadConfig, Zipf};
use railgun_core::{BatchPolicy, Cluster, ClusterConfig, TaskConfig, TaskProcessor};
use railgun_messaging::partition_for_key;
use railgun_sim::FifoServer;
use railgun_types::{Event, EventId, Timestamp, Value};

/// Partitions per event topic in every configuration (the concurrency
/// ceiling; units share them).
const PARTITIONS: u32 = 8;
/// The paper's M requirement: p99.9 under 250 ms (§2).
const M_LIMIT_US: u64 = 250_000;


fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("railgun-scaling-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn pct(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 * q) as usize).min(sorted.len() - 1);
    sorted[idx]
}

// --- measured: the real threaded runtime ---------------------------------

struct Measured {
    eps: f64,
    p50_us: u64,
    p99_us: u64,
}

/// Drive a started cluster with `clients` threads × `depth` in-flight
/// pipelined requests each, `events_per_client` events per thread.
fn run_real(
    tag: &str,
    units: u32,
    clients: usize,
    depth: usize,
    events_per_client: usize,
    batch: BatchPolicy,
) -> Measured {
    let mut cfg = ClusterConfig {
        nodes: 1,
        units_per_node: units,
        partitions: PARTITIONS,
        replication: 1,
        ..ClusterConfig::default()
    };
    cfg.data_root = fresh_dir(tag);
    cfg.max_in_flight = depth.max(1) * 2;
    cfg.collect_timeout_ms = 60_000;
    cfg.batch = batch;
    let mut cluster = Cluster::new(cfg).expect("cluster boots");
    cluster
        .create_stream("payments", compact_schema(), &["cardId"])
        .expect("stream");
    // Queries go through the typed builder path (plan-identical to their
    // text forms; keyed replies either way).
    cluster.register(&queries::per_card()).expect("q1");
    cluster
        .register(&queries::distinct_merchants())
        .expect("q2");
    cluster.start().expect("threaded start");

    let mut handles_input = Vec::new();
    for c in 0..clients {
        // Pre-generate this client's events so generator cost stays out of
        // the timed section.
        let mut gen = FraudGenerator::new(WorkloadConfig {
            seed: 0x5CA1E + c as u64,
            ..WorkloadConfig::default()
        });
        let events: Vec<(Timestamp, Vec<Value>)> = (0..events_per_client)
            .map(|i| {
                (
                    Timestamp::from_millis((i * clients + c) as i64),
                    gen.next_compact(),
                )
            })
            .collect();
        handles_input.push((cluster.client().expect("client"), events));
    }

    let barrier = Barrier::new(clients + 1);
    let total_events = (clients * events_per_client) as f64;
    let (wall, mut latencies) = std::thread::scope(|s| {
        let mut joins = Vec::new();
        for (mut client, events) in handles_input {
            let barrier = &barrier;
            joins.push(s.spawn(move || {
                let mut lats: Vec<u64> = Vec::with_capacity(events.len());
                let mut window: Vec<(u64, Instant)> = Vec::with_capacity(depth);
                barrier.wait();
                for (ts, values) in events {
                    let sent = Instant::now();
                    let id = client
                        .send_async("payments", ts, values)
                        .expect("send_async");
                    window.push((id, sent));
                    if window.len() >= depth {
                        let (oldest, at) = window.remove(0);
                        client.collect(oldest).expect("collect");
                        lats.push(at.elapsed().as_micros().max(1) as u64);
                    }
                }
                for (id, at) in window {
                    client.collect(id).expect("drain");
                    lats.push(at.elapsed().as_micros().max(1) as u64);
                }
                lats
            }));
        }
        barrier.wait();
        let start = Instant::now();
        let mut all = Vec::new();
        for j in joins {
            all.extend(j.join().expect("client thread"));
        }
        (start.elapsed(), all)
    });
    cluster.stop().expect("clean stop");
    latencies.sort_unstable();
    Measured {
        eps: total_events / wall.as_secs_f64(),
        p50_us: pct(&latencies, 0.50),
        p99_us: pct(&latencies, 0.99),
    }
}

// --- modeled: measured service time through the queueing model -----------

/// Measure per-event service time on one real task processor running the
/// same two queries the cluster runs (fig10 methodology).
fn measure_service(events: u64) -> ServicePool {
    let mut gen = FraudGenerator::new(WorkloadConfig::default());
    let mut tp = TaskProcessor::open(
        &fresh_dir("service"),
        "payments--cardId",
        0,
        compact_schema(),
        TaskConfig::default(),
    )
    .expect("task processor");
    for q in [queries::per_card(), queries::distinct_merchants()] {
        tp.register_query(&q).expect("register");
    }
    ServicePool::measure(events, |seq| {
        let values = gen.next_compact();
        tp.process_event(&Event::new(
            EventId(seq),
            Timestamp::from_millis(seq as i64 * 2),
            values,
        ))
        .expect("measured event");
    })
}

/// Simulate `events` arrivals at `rate_eps` over `units` FIFO servers with
/// the real partition hash and Zipf key skew; returns sojourn p99 and
/// p99.9 in µs plus the busiest server's utilization over the horizon.
/// The utilization term is what makes "sustained" mean steady-state: a
/// rate above a server's capacity can keep its p99.9 under the limit for
/// a finite horizon while its backlog diverges.
fn simulate(
    pool: &ServicePool,
    units: u32,
    rate_eps: f64,
    events: u64,
    seed: u64,
) -> (u64, u64, f64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let zipf = Zipf::new(50_000, 1.05);
    let mut servers: Vec<FifoServer> = (0..units).map(|_| FifoServer::new()).collect();
    let gap_us = 1.0e6 / rate_eps;
    let mut sojourns: Vec<u64> = Vec::with_capacity(events as usize);
    let mut arrival = 0.0f64;
    for seq in 0..events {
        // Jittered open-loop arrivals around the offered rate.
        arrival += gap_us * rng.gen_range(0.5..1.5);
        let key = format!("card-{:08}", zipf.sample(&mut rng));
        let partition = partition_for_key(key.as_bytes(), PARTITIONS);
        let unit = (partition % units) as usize;
        let service = pool.sample(seq, 0);
        let (_start, done) = servers[unit].offer(arrival as u64, service);
        sojourns.push(done - arrival as u64);
    }
    let horizon = arrival as u64;
    let max_util = servers
        .iter()
        .map(|s| s.utilization(horizon))
        .fold(0.0, f64::max);
    sojourns.sort_unstable();
    (pct(&sojourns, 0.99), pct(&sojourns, 0.999), max_util)
}

struct Modeled {
    sustained_eps: f64,
    p99_us: u64,
    p999_us: u64,
}

/// Highest offered rate whose p99.9 sojourn stays under the M requirement
/// *and* whose busiest server stays below saturation (the §5.3 protocol:
/// "as much load as possible, in a sustained way, without breaching the M
/// requirement" — "sustained" is the utilization guard).
fn modeled_sustained(pool: &ServicePool, units: u32, events: u64) -> Modeled {
    let cap = units as f64 * 1.0e6 / pool.mean_us();
    let (mut lo, mut hi) = (cap * 0.05, cap * 1.5);
    let mut best = Modeled {
        sustained_eps: lo,
        p99_us: 0,
        p999_us: 0,
    };
    for i in 0..14 {
        let rate = 0.5 * (lo + hi);
        let (p99, p999, max_util) = simulate(pool, units, rate, events, 0xF1C5 + i);
        if p999 < M_LIMIT_US && max_util < 0.98 {
            best = Modeled {
                sustained_eps: rate,
                p99_us: p99,
                p999_us: p999,
            };
            lo = rate;
        } else {
            hi = rate;
        }
    }
    best
}

// --- output ---------------------------------------------------------------

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let unit_counts: &[u32] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let depths: &[usize] = if smoke { &[1, 8] } else { &[1, 4, 16, 64] };
    let events_per_client = if smoke { 300 } else { 5_000 };
    let clients = if smoke { 2 } else { 4 };
    let service_events = if smoke { 3_000 } else { 50_000 };
    let sim_events = if smoke { 20_000 } else { 200_000 };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    eprintln!("# fig_scaling: measured threaded runtime ({cores} core(s) available)");
    let mut measured_units = Vec::new();
    for &u in unit_counts {
        let m = run_real(
            &format!("u{u}"),
            u,
            clients,
            16.min(events_per_client),
            events_per_client,
            BatchPolicy::default(),
        );
        eprintln!(
            "#   units={u}: {:.0} ev/s, p50 {} µs, p99 {} µs",
            m.eps, m.p50_us, m.p99_us
        );
        measured_units.push((u, m));
    }
    let mut measured_depth = Vec::new();
    for &d in depths {
        let m = run_real(
            &format!("d{d}"),
            4.min(*unit_counts.last().unwrap()),
            clients,
            d,
            events_per_client,
            BatchPolicy::default(),
        );
        eprintln!(
            "#   inflight={d}: {:.0} ev/s, p50 {} µs, p99 {} µs",
            m.eps, m.p50_us, m.p99_us
        );
        measured_depth.push((d, m));
    }
    // Batch-size sweep (PR 6): same deep-pipelined workload, sweeping the
    // front-end coalescing bound. max_events = 1 is the pre-batching
    // message-per-event path; the deepest setting shows where the
    // one-bus-hop-per-batch amortization tops out.
    let batch_events: &[usize] = if smoke { &[1, 64] } else { &[1, 16, 64, 256] };
    let batch_depth = *depths.last().unwrap();
    let batch_units = 4.min(*unit_counts.last().unwrap());
    eprintln!("# fig_scaling: batch-size sweep (inflight={batch_depth}, units={batch_units})");
    let mut measured_batch = Vec::new();
    for &b in batch_events {
        let m = run_real(
            &format!("b{b}"),
            batch_units,
            clients,
            batch_depth,
            events_per_client,
            BatchPolicy {
                max_events: b,
                ..BatchPolicy::default()
            },
        );
        eprintln!(
            "#   max_batch_events={b}: {:.0} ev/s, p50 {} µs, p99 {} µs",
            m.eps, m.p50_us, m.p99_us
        );
        measured_batch.push((b, m));
    }

    eprintln!("# fig_scaling: modeled multi-core composition (fig10 methodology)");
    let pool = measure_service(service_events);
    eprintln!("#   measured service mean: {:.1} µs/event", pool.mean_us());
    let mut modeled = Vec::new();
    for &u in unit_counts {
        let m = modeled_sustained(&pool, u, sim_events);
        eprintln!(
            "#   units={u}: sustained {:.0} ev/s (p99 {:.1} ms, p99.9 {:.1} ms)",
            m.sustained_eps,
            m.p99_us as f64 / 1000.0,
            m.p999_us as f64 / 1000.0
        );
        modeled.push((u, m));
    }
    let rate_of = |target: u32| {
        modeled
            .iter()
            .find(|(u, _)| *u == target)
            .map(|(_, m)| m.sustained_eps)
    };
    let speedup = match (rate_of(1), rate_of(4).or_else(|| rate_of(2))) {
        (Some(base), Some(top)) if base > 0.0 => top / base,
        _ => 0.0,
    };
    let speedup_units = if rate_of(4).is_some() { 4 } else { 2 };

    // -- JSON ---------------------------------------------------------------
    let mode = if smoke { "test" } else { "full" };
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"bench\": \"fig_scaling\",\n  \"mode\": \"{mode}\",\n"));
    json.push_str(&format!(
        "  \"machine\": {{ \"available_cores\": {cores} }},\n"
    ));
    json.push_str(&format!(
        "  \"measured\": {{\n    \"note\": \"real threaded runtime on this machine; unit scaling is bounded by available_cores, the in-flight sweep shows pipelining\",\n    \"clients\": {clients},\n    \"events_per_client\": {events_per_client},\n"
    ));
    json.push_str("    \"by_units\": [\n");
    for (i, (u, m)) in measured_units.iter().enumerate() {
        json.push_str(&format!(
            "      {{ \"units\": {u}, \"eps\": {:.0}, \"p50_us\": {}, \"p99_us\": {} }}{}\n",
            m.eps,
            m.p50_us,
            m.p99_us,
            if i + 1 < measured_units.len() { "," } else { "" }
        ));
    }
    json.push_str("    ],\n    \"by_inflight\": [\n");
    for (i, (d, m)) in measured_depth.iter().enumerate() {
        json.push_str(&format!(
            "      {{ \"inflight\": {d}, \"eps\": {:.0}, \"p50_us\": {}, \"p99_us\": {} }}{}\n",
            m.eps,
            m.p50_us,
            m.p99_us,
            if i + 1 < measured_depth.len() { "," } else { "" }
        ));
    }
    json.push_str("    ],\n    \"by_batch\": [\n");
    for (i, (b, m)) in measured_batch.iter().enumerate() {
        json.push_str(&format!(
            "      {{ \"max_batch_events\": {b}, \"eps\": {:.0}, \"p50_us\": {}, \"p99_us\": {} }}{}\n",
            m.eps,
            m.p50_us,
            m.p99_us,
            if i + 1 < measured_batch.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  },\n");
    json.push_str(&format!(
        "  \"modeled\": {{\n    \"note\": \"measured per-event service time composed through the fleet queueing model (DESIGN.md substitution #5), Zipf key skew, M requirement p99.9 < 250 ms\",\n    \"service_mean_us\": {:.1},\n",
        pool.mean_us()
    ));
    json.push_str("    \"by_units\": [\n");
    for (i, (u, m)) in modeled.iter().enumerate() {
        json.push_str(&format!(
            "      {{ \"units\": {u}, \"sustained_eps\": {:.0}, \"p99_ms\": {:.2}, \"p999_ms\": {:.2} }}{}\n",
            m.sustained_eps,
            m.p99_us as f64 / 1000.0,
            m.p999_us as f64 / 1000.0,
            if i + 1 < modeled.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "    ],\n    \"speedup_{speedup_units}u_vs_1u\": {speedup:.2}\n  }}\n}}\n"
    ));

    print!("{json}");
    if let Some(path) = out_path {
        if let Some(parent) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(parent).ok();
        }
        std::fs::write(&path, &json).expect("write bench json");
        eprintln!("wrote {path}");
    }
}
