//! Exact-vs-approximate aggregator sweep (BENCH_sketch.json).
//!
//! The paper's MAD workloads keep per-entity aggregation state tiny; the
//! one aggregator that breaks that promise is exact `countDistinct`,
//! whose aux-CF footprint grows with the number of distinct values. This
//! bench sweeps distinct-key cardinality and compares the exact path
//! (one aux-CF counter per value) against the HLL-backed
//! `countDistinct ... approx` path (one constant-size register blob per
//! (leaf, entity)) through the same [`AggState`] machinery the engine
//! runs:
//!
//! * **state bytes** — logical aux-CF footprint after the run (scanned
//!   from the store for the exact path; the flushed sketch blob for the
//!   approximate path);
//! * **per-event insert throughput** — the aggregator-level cost the hot
//!   path pays (store-backed read-modify-write vs cached register
//!   update);
//! * **relative error** of the estimate against the true cardinality.
//!
//! The exact arm is capped at 1M distinct keys (its LSM writes dominate
//! the run far beyond the point the comparison needs); the approximate
//! arm continues to 10M to show the constant-memory story. The cap is
//! recorded in the JSON — nothing is silently truncated.
//!
//! Run modes mirror the other figure benches:
//!
//! * `cargo bench -p railgun-bench --bench fig_sketch` — full run;
//! * `-- --test` — smoke mode (small cardinalities, used by CI);
//! * `-- --out <path>` — additionally write the JSON to `<path>`.

use std::time::Instant;

use railgun_core::agg::sketch::hll::precision_for_err_bp;
use railgun_core::agg::{AggContext, AggScratch, AggState};
use railgun_core::lang::AggFunc;
use railgun_store::{Db, DbOptions};
use railgun_types::Value;

/// Configured error for the approximate arm: `countDistinct(f) approx
/// 0.02` (200 basis points), the bound `scripts/bench_baseline.sh`
/// validates the measured error against.
const ERR_BP: u32 = 200;

/// Exact arm cap: beyond this the LSM writes dominate the wall clock
/// without adding information to the comparison.
const EXACT_CAP: u64 = 1_000_000;

struct ArmResult {
    events_per_s: f64,
    state_bytes: u64,
    value: i64,
}

fn bench_db(tag: &str) -> (Db, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("railgun-figsketch-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let db = Db::open(&dir, DbOptions::default()).expect("db");
    (db, dir)
}

/// Run `n` distinct inserts through one aggregator state and report the
/// throughput, final value, and aux-CF footprint.
fn run_arm(tag: &str, func: AggFunc, n: u64) -> ArmResult {
    let (db, dir) = bench_db(tag);
    let aux = db.create_cf("distinct-aux").expect("cf");
    let scratch = AggScratch::default();
    let ctx = AggContext::new(&db, aux, b"leaf0/entity0", &scratch);
    let mut state = AggState::new(func);
    let start = Instant::now();
    for i in 0..n {
        let v = Value::Int(i as i64);
        state.insert(Some(&v), &ctx).expect("insert");
    }
    let elapsed = start.elapsed().as_secs_f64();
    // The approximate path holds its blob in the scratch cache between
    // checkpoints; flush so the scan below sees what a checkpoint would.
    scratch.flush(&db, aux).expect("flush");
    let state_bytes: u64 = db
        .scan_prefix(aux, &[])
        .expect("scan")
        .iter()
        .map(|(k, v)| (k.len() + v.len()) as u64)
        .sum();
    let value = match state.value() {
        Value::Int(x) => x,
        other => panic!("unexpected aggregate value {other:?}"),
    };
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
    ArmResult {
        events_per_s: n as f64 / elapsed,
        state_bytes,
        value,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let cardinalities: &[u64] = if smoke {
        &[10_000, 50_000]
    } else {
        &[10_000, 100_000, 1_000_000, 10_000_000]
    };
    let precision = precision_for_err_bp(ERR_BP);
    eprintln!(
        "# fig_sketch: exact vs approx countDistinct, err {} (HLL precision {precision}), \
         exact arm capped at {EXACT_CAP} keys",
        ERR_BP as f64 / 10_000.0
    );

    struct Row {
        distinct: u64,
        exact: Option<ArmResult>,
        approx: ArmResult,
        rel_err: f64,
    }
    let mut rows: Vec<Row> = Vec::new();
    for &n in cardinalities {
        let exact = if n <= EXACT_CAP {
            let r = run_arm(&format!("exact-{n}"), AggFunc::CountDistinct, n);
            assert_eq!(r.value, n as i64, "exact arm must count exactly");
            Some(r)
        } else {
            eprintln!("#   {n}: exact arm skipped (above {EXACT_CAP}-key cap)");
            None
        };
        let approx = run_arm(
            &format!("approx-{n}"),
            AggFunc::ApproxCountDistinct { err_bp: ERR_BP },
            n,
        );
        let rel_err = (approx.value as f64 - n as f64).abs() / n as f64;
        eprintln!(
            "#   {n}: exact {} ev/s / {} B, approx {:.0} ev/s / {} B, estimate {} (err {:.3}%)",
            exact
                .as_ref()
                .map_or("-".to_string(), |e| format!("{:.0}", e.events_per_s)),
            exact
                .as_ref()
                .map_or("-".to_string(), |e| e.state_bytes.to_string()),
            approx.events_per_s,
            approx.state_bytes,
            approx.value,
            rel_err * 100.0
        );
        rows.push(Row {
            distinct: n,
            exact,
            approx,
            rel_err,
        });
    }

    // -- JSON ---------------------------------------------------------------
    let mode = if smoke { "test" } else { "full" };
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"bench\": \"fig_sketch\",\n  \"schema_version\": 1,\n  \"mode\": \"{mode}\",\n"
    ));
    json.push_str(&format!(
        "  \"config\": {{ \"err\": {}, \"err_bp\": {ERR_BP}, \"hll_precision\": {precision}, \
         \"exact_cap\": {EXACT_CAP} }},\n",
        ERR_BP as f64 / 10_000.0
    ));
    json.push_str("  \"measured\": {\n");
    json.push_str(
        "    \"note\": \"one (leaf, entity) aggregator; state_bytes is the logical aux-CF \
         footprint after a checkpoint flush; exact arm is null above exact_cap\",\n",
    );
    json.push_str("    \"sweep\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let exact = match &r.exact {
            Some(e) => format!(
                "{{ \"events_per_s\": {:.0}, \"state_bytes\": {}, \"count\": {} }}",
                e.events_per_s, e.state_bytes, e.value
            ),
            None => "null".to_string(),
        };
        json.push_str(&format!(
            "      {{ \"distinct\": {}, \"exact\": {exact}, \"approx\": {{ \
             \"events_per_s\": {:.0}, \"state_bytes\": {}, \"estimate\": {}, \
             \"rel_err\": {:.6} }} }}{}\n",
            r.distinct,
            r.approx.events_per_s,
            r.approx.state_bytes,
            r.approx.value,
            r.rel_err,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  }\n}\n");

    print!("{json}");
    if let Some(path) = out_path {
        if let Some(parent) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(parent).ok();
        }
        std::fs::write(&path, &json).expect("write bench json");
        eprintln!("wrote {path}");
    }
}
