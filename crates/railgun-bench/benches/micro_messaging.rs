//! Microbenchmarks: the messaging layer (produce/consume/rebalance paths).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use railgun_messaging::{
    Consumer, MessageBus, Producer, StickyStrategy, TopicPartition,
};

fn produce_consume(c: &mut Criterion) {
    let bus = MessageBus::with_defaults();
    bus.create_topic("bench", 8, 1).expect("topic");
    let producer = Producer::new(bus.clone());
    let mut i = 0u64;
    c.bench_function("messaging_produce_keyed", |b| {
        b.iter(|| {
            let key = format!("card-{:06}", i % 10_000);
            i += 1;
            black_box(
                producer
                    .send("bench", key.as_bytes(), vec![0u8; 256])
                    .expect("send"),
            )
        });
    });
    let mut consumer = Consumer::new(bus.clone());
    consumer.assign(
        (0..8).map(|p| TopicPartition::new("bench", p)).collect(),
    );
    c.bench_function("messaging_poll_batch_256", |b| {
        b.iter(|| {
            let r = consumer.poll(256).expect("poll");
            if r.messages.is_empty() {
                // Rewind so the bench keeps consuming.
                for p in 0..8 {
                    consumer.seek(&TopicPartition::new("bench", p), 0);
                }
            }
            black_box(r.messages.len())
        });
    });
}

fn end_to_end_roundtrip(c: &mut Criterion) {
    // Produce one event and consume it — the messaging cost per event on
    // the critical path (both hops happen per event in Railgun).
    let bus = MessageBus::with_defaults();
    bus.create_topic("events", 1, 1).expect("topic");
    bus.create_topic("replies", 1, 1).expect("topic");
    let producer = Producer::new(bus.clone());
    let mut events = Consumer::new(bus.clone());
    events.assign(vec![TopicPartition::new("events", 0)]);
    let mut replies = Consumer::new(bus.clone());
    replies.assign(vec![TopicPartition::new("replies", 0)]);
    c.bench_function("messaging_event_reply_roundtrip", |b| {
        b.iter(|| {
            producer
                .send("events", b"card-1", vec![1u8; 200])
                .expect("send");
            let polled = events.poll(16).expect("poll");
            for m in &polled.messages {
                producer
                    .send_to_partition("replies", 0, &[], m.payload.clone())
                    .expect("reply");
            }
            black_box(replies.poll(16).expect("poll").messages.len())
        });
    });
}

fn group_rebalance_cycle(c: &mut Criterion) {
    c.bench_function("messaging_group_join_rebalance_32_partitions", |b| {
        b.iter(|| {
            let bus = MessageBus::with_defaults();
            bus.create_topic("t", 32, 1).expect("topic");
            let mut c1 = Consumer::new(bus.clone());
            c1.subscribe("g", &["t"], vec![], Arc::new(StickyStrategy))
                .expect("subscribe");
            let mut c2 = Consumer::new(bus.clone());
            c2.subscribe("g", &["t"], vec![], Arc::new(StickyStrategy))
                .expect("subscribe");
            let a = c1.poll(1).expect("poll").rebalanced;
            let b2 = c2.poll(1).expect("poll").rebalanced;
            black_box((a, b2))
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = produce_consume, end_to_end_roundtrip, group_rebalance_cycle
);
criterion_main!(benches);
