//! Larger-than-RAM window state baseline (BENCH_capacity.json).
//!
//! Reproduces the shape of the paper's capacity argument (§5.2, Fig. 9):
//! per-event latency and on-disk state as tumbling-window state grows
//! past the memtable budget, comparing the two expiry mechanisms the
//! store supports:
//!
//! * **deletes** — the classic arm: every expired bucket key costs a
//!   point delete (WAL frame + memtable entry + tombstone that lives
//!   until the next compaction). Expiry work is O(buckets × entities)
//!   on the ingest thread at every bucket boundary.
//! * **filtered** — the capacity-layer arm: the ingest thread advances a
//!   shared [`StateHorizon`] watermark (one atomic store) and the
//!   [`StateKeyFilter`] installed on the column family drops dead keys
//!   during the compactions the store was doing anyway.
//!
//! Both arms write the identical key stream through identical budgets
//! (256 KiB memtable — far below the live state of the larger spans, so
//! both spill continuously) and compact on the identical explicit
//! schedule (once per full window turnover; the organic trigger is
//! disabled so compaction cadence is a controlled variable rather than a
//! side effect of the deletes arm's ~2× write rate). Measured per span:
//! put-latency percentiles, the **expiry stall** at bucket boundaries
//! (the delete storm vs the atomic store), state bytes (sampled every
//! bucket, plus the end-of-run value), and the filter's drop counter.
//! Between compactions the deletes arm carries strictly more garbage —
//! every dead entry *plus* the tombstone shadowing it — so its state
//! curve rides above the filtered arm's at every span. After the sweep
//! each arm is flushed + compacted and both must converge to the *same*
//! live key set — expiry must reclaim exactly the dead buckets, never a
//! live one.
//!
//! Run modes mirror the other figure benches:
//!
//! * `cargo bench -p railgun-bench --bench fig_capacity` — full run;
//! * `-- --test` — smoke mode (small spans, used by CI);
//! * `-- --out <path>` — additionally write the JSON to `<path>`.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use railgun_core::horizon::{StateHorizon, StateKeyFilter};
use railgun_core::keys::state_key;
use railgun_store::{CfOptions, Db, DbOptions};
use railgun_types::{Timestamp, Value};

/// Synthetic bucket width (ms). The clock is virtual — tick `t` writes
/// into the bucket starting at `t * BUCKET_MS`.
const BUCKET_MS: i64 = 60_000;
/// Memtable budget: small enough that every span's live state spills.
const MEMTABLE_BUDGET: usize = 256 << 10;

struct ArmResult {
    put_p50_us: f64,
    put_p99_us: f64,
    expiry_stall_p99_us: f64,
    expiry_stall_max_us: f64,
    state_bytes_mean: u64,
    state_bytes_peak: u64,
    state_bytes_end: u64,
    filter_dropped: u64,
    live_keys_end: usize,
    write_ops: u64,
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let ix = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[ix] as f64 / 1_000.0
}

fn state_bytes(db: &Db) -> u64 {
    let s = db.stats();
    s.sst_bytes + s.memtable_bytes as u64
}

/// One arm: `span` buckets retained, `buckets` total ticks, `entities`
/// keys per bucket. `filtered = true` installs the watermark filter and
/// expires via the horizon; otherwise expiry issues point deletes.
#[allow(clippy::too_many_lines)]
fn run_arm(dir: &Path, span: usize, buckets: usize, entities: usize, filtered: bool) -> ArmResult {
    std::fs::remove_dir_all(dir).ok();
    let horizon = StateHorizon::new();
    // Organic compaction off (`usize::MAX` trigger): both arms compact
    // only on the explicit once-per-turnover schedule below, so the
    // comparison isolates the expiry mechanism.
    let mut opts = DbOptions {
        memtable_budget_bytes: MEMTABLE_BUDGET,
        compaction_trigger: usize::MAX,
        ..DbOptions::default()
    };
    if filtered {
        opts.cf_options.push((
            "default".to_owned(),
            CfOptions {
                memtable_budget_bytes: MEMTABLE_BUDGET,
                compaction_trigger: usize::MAX,
                ..CfOptions::default()
            }
            .with_filter(Arc::new(StateKeyFilter(Arc::clone(&horizon)))),
        ));
    }
    let db = Db::open(dir, opts).expect("open capacity arm");

    // ~64 B values: a counter blob of the size a sum/count leaf carries.
    let value = vec![0xA5u8; 64];
    let mut entity = vec![Value::Int(0)];
    let mut put_ns: Vec<u64> = Vec::with_capacity(buckets * entities);
    let mut stall_ns: Vec<u64> = Vec::with_capacity(buckets);
    let mut bytes_samples: Vec<u64> = Vec::with_capacity(buckets);
    let mut write_ops = 0u64;

    for b in 0..buckets {
        let bucket_ts = Timestamp::from_millis(b as i64 * BUCKET_MS);
        for e in 0..entities {
            entity[0] = Value::Int(e as i64);
            let key = state_key(0, Some(bucket_ts), &entity);
            let t = Instant::now();
            db.put(Db::DEFAULT_CF, &key, &value).expect("put");
            put_ns.push(t.elapsed().as_nanos() as u64);
            write_ops += 1;
        }
        // Bucket boundary: expire everything older than `span` buckets.
        if b + 1 >= span {
            let expire_before_ms = (b + 1 - span) as i64 * BUCKET_MS + BUCKET_MS;
            let t = Instant::now();
            if filtered {
                horizon.advance_bucket_expiry(expire_before_ms);
            } else {
                // The expired bucket is the oldest retained one.
                let dead_ts = Timestamp::from_millis((b + 1 - span) as i64 * BUCKET_MS);
                for e in 0..entities {
                    entity[0] = Value::Int(e as i64);
                    let key = state_key(0, Some(dead_ts), &entity);
                    db.delete(Db::DEFAULT_CF, &key).expect("delete");
                    write_ops += 1;
                }
            }
            stall_ns.push(t.elapsed().as_nanos() as u64);
        }
        bytes_samples.push(state_bytes(&db));
        // Scheduled maintenance, identical in both arms: one full
        // compaction per window turnover (the filter drops expired
        // entries here; the deletes arm folds its tombstones away).
        if (b + 1) % span == 0 {
            db.flush().expect("maintenance flush");
            db.compact_cf(Db::DEFAULT_CF).expect("maintenance compact");
        }
    }

    let state_bytes_end = state_bytes(&db);
    // Convergence check: flush + compact must leave exactly the live
    // buckets. Expiry runs once per completed bucket and trims to the
    // newest `span` buckets *as of the boundary*, so after the final
    // boundary `span - 1` buckets survive — identically in both arms
    // (the filter arm's watermark tracks the same schedule).
    db.flush().expect("final flush");
    db.compact_cf(Db::DEFAULT_CF).expect("final compact");
    let live = db.scan(Db::DEFAULT_CF, b"", None).expect("scan live");
    let expected_live = if buckets >= span { span - 1 } else { buckets } * entities;
    assert_eq!(
        live.len(),
        expected_live,
        "arm(filtered={filtered}, span={span}): expiry must reclaim exactly the dead buckets"
    );

    put_ns.sort_unstable();
    stall_ns.sort_unstable();
    let n = bytes_samples.len().max(1) as u64;
    ArmResult {
        put_p50_us: percentile_us(&put_ns, 0.50),
        put_p99_us: percentile_us(&put_ns, 0.99),
        expiry_stall_p99_us: percentile_us(&stall_ns, 0.99),
        expiry_stall_max_us: percentile_us(&stall_ns, 1.0),
        state_bytes_mean: bytes_samples.iter().sum::<u64>() / n,
        state_bytes_peak: bytes_samples.iter().copied().max().unwrap_or(0),
        state_bytes_end,
        filter_dropped: db.stats().filter_dropped,
        live_keys_end: live.len(),
        write_ops,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    // Spans in buckets retained; each run processes `span_mult × span`
    // buckets so every span sees many full expiry generations.
    let (spans, entities, span_mult): (&[usize], usize, usize) = if smoke {
        (&[2, 8], 40, 6)
    } else {
        (&[4, 16, 64], 200, 6)
    };
    let root = std::env::temp_dir().join(format!("railgun-figcapacity-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();

    eprintln!(
        "# fig_capacity: window-state expiry, spans {spans:?} buckets × {entities} entities, \
         {MEMTABLE_BUDGET} B memtable budget"
    );

    let mut rows: Vec<(usize, ArmResult, ArmResult)> = Vec::new();
    for &span in spans {
        let buckets = span * span_mult;
        let deletes = run_arm(&root.join(format!("del-{span}")), span, buckets, entities, false);
        let filtered = run_arm(&root.join(format!("flt-{span}")), span, buckets, entities, true);
        eprintln!(
            "#   span {span:>3}: put p99 {: >8.1} µs (deletes) vs {: >8.1} µs (filtered); \
             expiry stall p99 {: >9.1} µs vs {: >6.1} µs; mean state {: >9} B vs {: >9} B; \
             filter dropped {}",
            deletes.put_p99_us,
            filtered.put_p99_us,
            deletes.expiry_stall_p99_us,
            filtered.expiry_stall_p99_us,
            deletes.state_bytes_mean,
            filtered.state_bytes_mean,
            filtered.filter_dropped,
        );
        rows.push((span, deletes, filtered));
    }
    std::fs::remove_dir_all(&root).ok();

    // -- JSON ---------------------------------------------------------------
    let mode = if smoke { "test" } else { "full" };
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"bench\": \"fig_capacity\",\n  \"schema_version\": 1,\n  \"mode\": \"{mode}\",\n"
    ));
    json.push_str(&format!(
        "  \"config\": {{ \"spans\": {spans:?}, \"entities\": {entities}, \
         \"span_mult\": {span_mult}, \"bucket_ms\": {BUCKET_MS}, \
         \"memtable_budget_bytes\": {MEMTABLE_BUDGET}, \
         \"maintenance\": \"flush+compact once per span (organic trigger off)\" }},\n"
    ));
    json.push_str("  \"measured\": {\n");
    json.push_str(
        "    \"note\": \"two expiry arms over the identical key stream; every arm asserts it \
         converges to exactly the live buckets after a final flush+compact\",\n",
    );
    json.push_str("    \"by_span\": [\n");
    for (i, (span, del, flt)) in rows.iter().enumerate() {
        let arm = |r: &ArmResult| {
            format!(
                "{{ \"put_p50_us\": {:.2}, \"put_p99_us\": {:.2}, \
                 \"expiry_stall_p99_us\": {:.2}, \"expiry_stall_max_us\": {:.2}, \
                 \"state_bytes_mean\": {}, \"state_bytes_peak\": {}, \"state_bytes_end\": {}, \
                 \"filter_dropped\": {}, \"live_keys_end\": {}, \"write_ops\": {} }}",
                r.put_p50_us,
                r.put_p99_us,
                r.expiry_stall_p99_us,
                r.expiry_stall_max_us,
                r.state_bytes_mean,
                r.state_bytes_peak,
                r.state_bytes_end,
                r.filter_dropped,
                r.live_keys_end,
                r.write_ops,
            )
        };
        json.push_str(&format!(
            "      {{ \"span_buckets\": {span}, \"deletes\": {}, \"filtered\": {} }}{}\n",
            arm(del),
            arm(flt),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  }\n}\n");

    print!("{json}");
    if let Some(path) = out_path {
        if let Some(parent) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(parent).ok();
        }
        std::fs::write(&path, &json).expect("write bench json");
        eprintln!("wrote {path}");
    }
}
