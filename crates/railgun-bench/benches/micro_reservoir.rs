//! Microbenchmarks & ablations: the event reservoir.
//!
//! Covers the §4.1.1 design choices DESIGN.md calls out: eager read-ahead
//! ON vs OFF (cache-miss penalty on tail iteration) and compression ON vs
//! OFF (bytes on disk vs encode cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use railgun_bench::{FraudGenerator, WorkloadConfig};
use railgun_reservoir::{Codec, Reservoir, ReservoirConfig};
use railgun_types::{Event, EventId, Timestamp};

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("railgun-mres-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn make_reservoir(tag: &str, cfg: ReservoirConfig) -> (Reservoir, FraudGenerator) {
    let gen = FraudGenerator::new(WorkloadConfig::default());
    let res = Reservoir::open(&fresh_dir(tag), gen.schema().clone(), cfg).expect("reservoir");
    (res, FraudGenerator::new(WorkloadConfig::default()))
}

fn append_throughput(c: &mut Criterion) {
    let (res, mut gen) = make_reservoir("append", ReservoirConfig::default());
    let mut seq = 0u64;
    c.bench_function("reservoir_append_103_fields", |b| {
        b.iter(|| {
            let e = Event::new(
                EventId(seq),
                Timestamp::from_millis(seq as i64),
                gen.next_values(),
            );
            seq += 1;
            black_box(res.append(e).expect("append"))
        });
    });
}

fn tail_iteration_prefetch_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_readahead");
    for (label, prefetch, cache) in [
        ("prefetch_on_big_cache", true, 64usize),
        ("prefetch_on_tiny_cache", true, 2),
        ("prefetch_off_tiny_cache", false, 2),
    ] {
        let cfg = ReservoirConfig {
            prefetch,
            cache_capacity_chunks: cache,
            chunk_target_events: 128,
            ..ReservoirConfig::default()
        };
        let (res, mut gen) = make_reservoir(label, cfg);
        // 40k events = ~312 chunks on disk.
        for seq in 0..40_000u64 {
            res.append(Event::new(
                EventId(seq),
                Timestamp::from_millis(seq as i64),
                gen.next_compact(),
            ))
            .expect("append");
        }
        res.flush_io().expect("flush");
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            // Iterate a fresh tail over the whole history per iteration
            // batch; measures per-event cost of streaming from disk.
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                let mut out = Vec::with_capacity(1024);
                for _ in 0..iters.min(20) {
                    let cursor = res.cursor_at_start();
                    let t = std::time::Instant::now();
                    let mut bound = 0i64;
                    while bound < 40_000 {
                        bound += 1_000;
                        out.clear();
                        cursor.advance_upto_into(Timestamp::from_millis(bound), &mut out);
                        black_box(out.len());
                    }
                    total += t.elapsed();
                }
                total * (iters.max(1) as u32) / (iters.clamp(1, 20) as u32)
            });
        });
    }
    group.finish();
}

fn compression_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_compression");
    for (label, codec) in [("railz", Codec::RailZ), ("none", Codec::None)] {
        let cfg = ReservoirConfig {
            codec,
            chunk_target_events: 256,
            ..ReservoirConfig::default()
        };
        let (res, mut gen) = make_reservoir(&format!("codec-{label}"), cfg);
        let mut seq = 0u64;
        group.bench_function(BenchmarkId::new("append_full_event", label), |b| {
            b.iter(|| {
                let e = Event::new(
                    EventId(seq),
                    Timestamp::from_millis(seq as i64),
                    gen.next_values(),
                );
                seq += 1;
                black_box(res.append(e).expect("append"))
            });
        });
        res.flush_open_chunk().expect("flush chunk");
        res.flush_io().expect("flush io");
        let stats = res.stats();
        // Report compression ratio via stderr (criterion owns stdout).
        eprintln!(
            "  [compression {label}] events {} bytes_written {} (bytes/event {:.1})",
            stats.appended,
            stats.bytes_written,
            stats.bytes_written as f64 / stats.appended.max(1) as f64
        );
    }
    group.finish();
}

fn dedup_lookup(c: &mut Criterion) {
    let (res, mut gen) = make_reservoir("dedup", ReservoirConfig::default());
    for seq in 0..10_000u64 {
        res.append(Event::new(
            EventId(seq),
            Timestamp::from_millis(seq as i64),
            gen.next_compact(),
        ))
        .expect("append");
    }
    c.bench_function("reservoir_duplicate_rejection", |b| {
        b.iter(|| {
            // An id still in the in-memory dedup set.
            let e = Event::new(
                EventId(9_999),
                Timestamp::from_millis(9_999),
                gen.next_compact(),
            );
            black_box(res.append(e).expect("append"))
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = append_throughput, tail_iteration_prefetch_ablation, compression_ablation, dedup_lookup
);
criterion_main!(benches);
