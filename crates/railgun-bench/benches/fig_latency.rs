//! Real-runtime latency baseline: **measured** end-to-end percentiles
//! through the threaded cluster runtime (BENCH_latency.json).
//!
//! Every earlier figure bench reports either microbenchmark throughput or
//! *simulated* queueing latencies (DESIGN.md substitution #5). This bench
//! closes the loop the telemetry plane (PR 5) opened: it boots a real
//! threaded cluster with telemetry on, pipelines client traffic through
//! `send_async`/`collect`, and reports two independent views of the same
//! run —
//!
//! * **client-observed** — per-request round-trip latency measured with
//!   wall-clock timestamps at the client (the ground truth);
//! * **engine-observed** — the engine's own `Session::metrics()`
//!   snapshot: front-end enqueue→reply ladder, per-query ladders with
//!   SLO breach counts, and the inner stage histograms (unit process,
//!   reservoir append, store WAL).
//!
//! The headline query runs under the paper's M requirement as its SLO
//! (`.with_slo(millis(250))`, p99.9 < 250 ms, §2) — breaches are
//! reported, not asserted, since CI containers make no latency promises.
//!
//! Run modes mirror `fig_hotpath`/`fig_scaling`:
//!
//! * `cargo bench -p railgun-bench --bench fig_latency` — full run;
//! * `-- --test` — smoke mode (tiny N, used by CI);
//! * `-- --out <path>` — additionally write the JSON to `<path>`.

use std::sync::Barrier;
use std::time::Instant;

use railgun_bench::{compact_schema, queries, FraudGenerator, WorkloadConfig};
use railgun_core::lang::{millis, mins, Agg, Window};
use railgun_core::metrics::MetricsSnapshot;
use railgun_core::{BatchPolicy, ClusterConfig, Query, QueryId, Session};
use railgun_types::{Histogram, LatencyLadder, Timestamp, Value};

/// The paper's M requirement in milliseconds (p99.9 bound, §2) — the
/// headline query's SLO budget.
const SLO_MS: i64 = 250;
/// Partitions per event topic.
const PARTITIONS: u32 = 4;

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("railgun-latency-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

struct RunOutput {
    eps: f64,
    client_hist: Histogram,
    engine: MetricsSnapshot,
    slo_query: QueryId,
}

/// Boot a telemetry-enabled threaded cluster, drive it with `clients`
/// threads × `depth` pipelined in-flight requests each, and return both
/// latency views.
fn run_threaded(
    tag: &str,
    units: u32,
    clients: usize,
    depth: usize,
    events_per_client: usize,
    batch: BatchPolicy,
) -> RunOutput {
    let mut cfg = ClusterConfig {
        nodes: 1,
        units_per_node: units,
        partitions: PARTITIONS,
        replication: 1,
        ..ClusterConfig::default()
    };
    cfg.data_root = fresh_dir(tag);
    cfg.max_in_flight = depth.max(1) * 2;
    cfg.collect_timeout_ms = 60_000;
    cfg.telemetry = true;
    cfg.batch = batch;
    let mut session = Session::new(cfg).expect("cluster boots");
    session
        .create_stream(
            "payments",
            &[
                ("cardId", railgun_types::FieldType::Str),
                ("merchantId", railgun_types::FieldType::Str),
                ("amount", railgun_types::FieldType::Float),
            ],
            &["cardId"],
        )
        .expect("stream");
    debug_assert_eq!(
        session.stream("payments").unwrap().schema(),
        &compact_schema()
    );
    // The headline query carries the paper's M requirement as its SLO.
    let slo_query = session
        .register(
            Query::select(Agg::sum("amount"))
                .select(Agg::count())
                .from("payments")
                .group_by(["cardId"])
                .over(Window::sliding(mins(5)))
                .with_slo(millis(SLO_MS)),
        )
        .expect("q1");
    session
        .register(queries::distinct_merchants())
        .expect("q2");
    session.cluster_mut().start().expect("threaded start");

    let mut handles_input = Vec::new();
    for c in 0..clients {
        let mut gen = FraudGenerator::new(WorkloadConfig {
            seed: 0x1A7E_0000 + c as u64,
            ..WorkloadConfig::default()
        });
        let events: Vec<(Timestamp, Vec<Value>)> = (0..events_per_client)
            .map(|i| {
                (
                    Timestamp::from_millis((i * clients + c) as i64),
                    gen.next_compact(),
                )
            })
            .collect();
        handles_input.push((session.cluster_mut().client().expect("client"), events));
    }

    let barrier = Barrier::new(clients + 1);
    let total_events = (clients * events_per_client) as f64;
    let (wall, latencies) = std::thread::scope(|s| {
        let mut joins = Vec::new();
        for (mut client, events) in handles_input {
            let barrier = &barrier;
            joins.push(s.spawn(move || {
                let mut lats: Vec<u64> = Vec::with_capacity(events.len());
                let mut window: Vec<(u64, Instant)> = Vec::with_capacity(depth);
                barrier.wait();
                for (ts, values) in events {
                    let sent = Instant::now();
                    let id = client
                        .send_async("payments", ts, values)
                        .expect("send_async");
                    window.push((id, sent));
                    if window.len() >= depth {
                        let (oldest, at) = window.remove(0);
                        client.collect(oldest).expect("collect");
                        lats.push(at.elapsed().as_micros().max(1) as u64);
                    }
                }
                for (id, at) in window {
                    client.collect(id).expect("drain");
                    lats.push(at.elapsed().as_micros().max(1) as u64);
                }
                lats
            }));
        }
        barrier.wait();
        let start = Instant::now();
        let mut all = Vec::new();
        for j in joins {
            all.extend(j.join().expect("client thread"));
        }
        (start.elapsed(), all)
    });
    // Snapshot while the workers still own the tasks (the state that used
    // to be unobservable), then stop cleanly.
    let engine = session.metrics();
    session.cluster_mut().stop().expect("clean stop");

    let mut client_hist = Histogram::default();
    for us in latencies {
        client_hist.record(us);
    }
    RunOutput {
        eps: total_events / wall.as_secs_f64(),
        client_hist,
        engine,
        slo_query: slo_query.id(),
    }
}

fn ladder_json(indent: &str, ladder: &LatencyLadder) -> String {
    format!(
        "{{ \"count\": {}, \"p50\": {}, \"p90\": {}, \"p95\": {}, \"p99\": {}, \
         \"p999\": {}, \"p9999\": {}, \"max\": {}, \"mean\": {:.1} }}{indent}",
        ladder.count,
        ladder.p50_us,
        ladder.p90_us,
        ladder.p95_us,
        ladder.p99_us,
        ladder.p999_us,
        ladder.p9999_us,
        ladder.max_us,
        ladder.mean_us,
        indent = indent,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let units = 2u32;
    let clients = if smoke { 2 } else { 4 };
    let depth = if smoke { 8 } else { 16 };
    let events_per_client = if smoke { 400 } else { 10_000 };
    let closed_events = if smoke { 200 } else { 2_000 };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    eprintln!("# fig_latency: measured end-to-end latency, threaded runtime ({cores} core(s))");
    let pipelined = run_threaded(
        "pipelined",
        units,
        clients,
        depth,
        events_per_client,
        BatchPolicy::default(),
    );
    let pipe_ladder = LatencyLadder::from_histogram(&pipelined.client_hist);
    eprintln!(
        "#   pipelined (depth {depth}): {:.0} ev/s, p50 {} µs, p99 {} µs, p99.9 {} µs, p99.99 {} µs",
        pipelined.eps, pipe_ladder.p50_us, pipe_ladder.p99_us, pipe_ladder.p999_us,
        pipe_ladder.p9999_us
    );
    // Batch sweep (PR 6): the same pipelined workload with coalescing
    // forced off (max_events = 1 publishes every event as its own bus
    // message) — the pre-batching baseline the batched path is judged
    // against.
    let single = run_threaded(
        "single-msg",
        units,
        clients,
        depth,
        events_per_client,
        BatchPolicy {
            max_events: 1,
            ..BatchPolicy::default()
        },
    );
    let single_ladder = LatencyLadder::from_histogram(&single.client_hist);
    eprintln!(
        "#   pipelined, single-message (depth {depth}): {:.0} ev/s, p50 {} µs, p99 {} µs",
        single.eps, single_ladder.p50_us, single_ladder.p99_us
    );
    let closed = run_threaded(
        "closed",
        units,
        clients,
        1,
        closed_events,
        BatchPolicy::default(),
    );
    let closed_ladder = LatencyLadder::from_histogram(&closed.client_hist);
    eprintln!(
        "#   closed loop (depth 1): {:.0} ev/s, p50 {} µs, p99 {} µs",
        closed.eps, closed_ladder.p50_us, closed_ladder.p99_us
    );

    let engine = &pipelined.engine;
    let fe = engine.frontend_ladder();
    eprintln!(
        "#   engine view: frontend e2e p50 {} µs / p99 {} µs over {} requests",
        fe.p50_us, fe.p99_us, fe.count
    );
    let slo_metrics = engine
        .query(pipelined.slo_query)
        .expect("SLO query tracked");
    eprintln!(
        "#   SLO ({SLO_MS} ms): {} completions, {} breaches",
        slo_metrics.completed, slo_metrics.breaches
    );

    // -- JSON ---------------------------------------------------------------
    let mode = if smoke { "test" } else { "full" };
    let stage = |h: &Histogram| LatencyLadder::from_histogram(h);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"bench\": \"fig_latency\",\n  \"schema_version\": 1,\n  \"mode\": \"{mode}\",\n"
    ));
    json.push_str(&format!(
        "  \"machine\": {{ \"available_cores\": {cores} }},\n"
    ));
    json.push_str(&format!(
        "  \"config\": {{ \"units\": {units}, \"partitions\": {PARTITIONS}, \"clients\": {clients}, \"inflight\": {depth}, \"events_per_client\": {events_per_client}, \"slo_ms\": {SLO_MS} }},\n"
    ));
    json.push_str("  \"measured\": {\n");
    json.push_str(
        "    \"note\": \"client-observed end-to-end latency (µs) through the real threaded runtime — measured wall clock, not modeled\",\n",
    );
    json.push_str(&format!(
        "    \"pipelined\": {{ \"eps\": {:.0}, \"e2e_us\": {} }},\n",
        pipelined.eps,
        ladder_json("", &pipe_ladder)
    ));
    json.push_str(&format!(
        "    \"pipelined_single_message\": {{ \"max_batch_events\": 1, \"eps\": {:.0}, \"e2e_us\": {} }},\n",
        single.eps,
        ladder_json("", &single_ladder)
    ));
    json.push_str(&format!(
        "    \"closed_loop\": {{ \"eps\": {:.0}, \"e2e_us\": {} }}\n",
        closed.eps,
        ladder_json("", &closed_ladder)
    ));
    json.push_str("  },\n");
    json.push_str("  \"engine\": {\n");
    json.push_str(
        "    \"note\": \"the engine's own telemetry plane (Session::metrics) for the pipelined run\",\n",
    );
    json.push_str(&format!(
        "    \"frontend_e2e_us\": {},\n",
        ladder_json("", &fe)
    ));
    json.push_str(&format!(
        "    \"unit_process_us\": {},\n",
        ladder_json("", &stage(&engine.stages.unit_process))
    ));
    json.push_str(&format!(
        "    \"reservoir_append_us\": {},\n",
        ladder_json("", &stage(&engine.stages.reservoir_append))
    ));
    json.push_str(&format!(
        "    \"store_wal_append_us\": {},\n",
        ladder_json("", &stage(&engine.stages.store_wal_append))
    ));
    json.push_str("    \"per_query\": [\n");
    for (i, q) in engine.queries.iter().enumerate() {
        let slo_ms = q
            .slo
            .map(|d| d.as_millis().to_string())
            .unwrap_or_else(|| "null".into());
        json.push_str(&format!(
            "      {{ \"query\": \"{}\", \"slo_ms\": {slo_ms}, \"completed\": {}, \"breaches\": {}, \"latency_us\": {} }}{}\n",
            q.id,
            q.completed,
            q.breaches,
            ladder_json("", &q.ladder()),
            if i + 1 < engine.queries.len() { "," } else { "" }
        ));
    }
    json.push_str("    ],\n");
    json.push_str(&format!(
        "    \"counters\": {{ \"backpressure_rejections\": {}, \"slo_breaches\": {}, \"reservoir_chunk_misses\": {}, \"events_processed\": {} }}\n",
        engine.counters.backpressure_rejections,
        engine.counters.slo_breaches,
        engine.counters.reservoir_chunk_misses,
        engine.tasks.events_processed
    ));
    json.push_str("  }\n}\n");

    print!("{json}");
    if let Some(path) = out_path {
        if let Some(parent) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(parent).ok();
        }
        std::fs::write(&path, &json).expect("write bench json");
        eprintln!("wrote {path}");
    }
}
