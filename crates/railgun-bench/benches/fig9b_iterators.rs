//! Figure 9(b) reproduction: Railgun latency vs number of reservoir
//! iterators (20 → 240) with a 220-chunk cache, at 500 ev/s.
//!
//! Setup mirrors §5.2(b): three metrics (sum, avg, count of `amount` per
//! card) computed over a growing number of **misaligned** windows —
//! different sizes and delays force every window to keep its own head and
//! tail iterator (2 per window, the paper's arithmetic: 10 → 120 windows
//! gives 20 → 240 iterators). The reservoir cache holds 220 chunks, as in
//! the paper.
//!
//! Mechanism under test: while iterators ≤ cache capacity, the eager
//! read-ahead keeps every next chunk resident and latency is flat; when
//! iterators approach/exceed capacity, chunks get evicted before their
//! iterator returns, every advance pays a load + decompress + deserialize,
//! and tail latency spikes. The paper additionally reports JVM GC pressure
//! at 240 iterators; the simulation scales the allocation-rate model with
//! the window count (calibration in EXPERIMENTS.md).

use rand::rngs::SmallRng;
use rand::SeedableRng;

use railgun_bench::{bench_scale, print_header, print_series, ServicePool};
use railgun_bench::{FraudGenerator, WorkloadConfig};
use railgun_core::{TaskConfig, TaskProcessor};
use railgun_reservoir::ReservoirConfig;
use railgun_sim::{run_open_loop, GcModel, InjectorConfig, KafkaHopModel};
use railgun_types::{Event, EventId, Timestamp};

const RATE_EV_S: f64 = 500.0;
/// Event-time spacing. Coarser than wall-time spacing so window spans stay
/// bench-sized; the queueing simulation still injects at 500 ev/s.
const INTERVAL_MS: i64 = 100;
const JVM_STATE_OP_US: f64 = 3.0;
/// The paper's cache size, in chunks.
const CACHE_CHUNKS: usize = 220;

fn bench_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("railgun-fig9b-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Window specs for `k` misaligned windows, following §5.2(b): "we force
/// iterator misalignment by using windows with different window sizes and
/// window delays". Sizes and delays step by 12 s (several chunk
/// time-spans), so every window's head *and* tail iterator sits in its own
/// chunk — the number of concurrently-needed cache entries equals the
/// iterator count (coprime step sizes avoid head/tail chunk collisions),
/// crossing the 220-chunk capacity between 210 and 240 iterators exactly
/// as in the paper.
fn window_clauses(k: usize) -> Vec<String> {
    (0..k)
        .map(|i| {
            let ws_secs = 120 + i as i64 * 12;
            let delay_secs = 45 + i as i64 * 17;
            format!("sliding {ws_secs} secs delayed by {delay_secs} secs")
        })
        .collect()
}

/// GC model scaled with the number of active windows; near-OOM behaviour
/// (frequent, long full collections) once iterators exceed the chunk cache
/// — the paper's own explanation for the 240-iterator run (§5.2.1).
fn gc_for(windows: usize) -> GcModel {
    let iterators = windows * 2;
    let base = GcModel::calibrated()
        .with_bytes_per_event(200_000.0 + 12_000.0 * windows as f64);
    if iterators > CACHE_CHUNKS {
        base.with_major_every(12)
    } else {
        base
    }
}

fn main() {
    let scale = bench_scale();
    println!("# Figure 9(b) — Railgun latency vs number of iterators @ 500 ev/s");
    println!("# cache capacity: {CACHE_CHUNKS} chunks (as in the paper)");
    print_header("Figure 9(b)", "vary iterators (2 per misaligned window)");

    // The paper's legend: 20, 40, 60, 110, 210, 240 iterators.
    let iterator_counts = [20usize, 40, 60, 110, 210, 240];
    let mut cache_report = Vec::new();
    for (series_idx, iterators) in iterator_counts.iter().enumerate() {
        let windows = iterators / 2;
        let mut gen = FraudGenerator::new(WorkloadConfig::default());
        let schema = gen.schema().clone();
        let config = TaskConfig {
            reservoir: ReservoirConfig {
                cache_capacity_chunks: CACHE_CHUNKS,
                // 100-event chunks (10 s span at this event-time spacing):
                // smaller than the 12 s/17 s misalignment steps so every
                // iterator owns distinct chunks, large enough that chunk
                // crossings stay off the common path.
                chunk_target_events: 100,
                chunk_target_bytes: 1 << 20,
                ..ReservoirConfig::default()
            },
            store: railgun_store::DbOptions {
                // Long-running-service flush cadence (see fig8 notes).
                memtable_budget_bytes: 256 << 20,
                compaction_trigger: 6,
                ..railgun_store::DbOptions::default()
            },
            ..TaskConfig::default()
        };
        let mut tp = TaskProcessor::open(
            &bench_dir(&format!("it{iterators}")),
            "payments--cardId",
            0,
            schema,
            config,
        )
        .expect("task processor");

        // Phase 1: prefill the bare reservoir (no metrics yet — §5.2's
        // checkpoint load) densely over the whole span tails will visit.
        // Deepest reach of any cursor: window size + delay of the largest.
        let max_ws_ms = (120 + 45 + windows as i64 * 29) * 1000;
        let run_span_ms = scale.measure_events as i64 * INTERVAL_MS;
        let prefill = ((max_ws_ms + run_span_ms) / INTERVAL_MS) as u64 + 64;
        for seq in 0..prefill {
            let values = gen.next_values();
            tp.process_event(&Event::new(
                EventId(seq),
                Timestamp::from_millis(seq as i64 * INTERVAL_MS),
                values,
            ))
            .expect("prefill");
        }
        // Phase 2: register the misaligned windows; head cursors backfill
        // from the reservoir (the §6 "metrics backfill" path).
        for clause in window_clauses(windows) {
            tp.register_query(
                &railgun_core::parse_query(&format!(
                    "SELECT sum(amount), avg(amount), count(amount) FROM payments \
                     GROUP BY cardId OVER {clause}"
                ))
                .expect("query parses"),
            )
            .expect("register");
        }
        // One warmup event performs the backfill inserts (excluded).
        let warm_ts = prefill as i64 * INTERVAL_MS;
        {
            let values = gen.next_values();
            tp.process_event(&Event::new(
                EventId(prefill),
                Timestamp::from_millis(warm_ts),
                values,
            ))
            .expect("backfill warmup");
        }
        // Drain queued chunk writes so the cache sits at its configured
        // capacity (the paper starts from a persisted checkpoint), then
        // run a paced settling phase so iterators and read-ahead reach
        // steady state before measurement (the paper's warmup period).
        tp.drain_reservoir_io().expect("drain io");
        let settle = 600u64;
        let settled_events = ServicePool::measure_paced(settle, 2_000, |seq| {
            let values = gen.next_values();
            tp.process_event(&Event::new(
                EventId(prefill + 1 + seq),
                Timestamp::from_millis(warm_ts + (seq as i64 + 1) * INTERVAL_MS),
                values,
            ))
            .expect("settle event");
        });
        drop(settled_events);
        let live_iterators = tp.iterator_count();
        let misses_before = tp.reservoir_stats().cache;
        // Phase 3: measured run, paced at the paper's 2 ms inter-arrival
        // so the asynchronous read-ahead gets its real-time budget.
        let pool = ServicePool::measure_paced(scale.measure_events, 2_000, |seq| {
            let values = gen.next_values();
            tp.process_event(&Event::new(
                EventId(prefill + 1 + settle + seq),
                Timestamp::from_millis(
                    warm_ts + (settle as i64 + seq as i64 + 1) * INTERVAL_MS,
                ),
                values,
            ))
            .expect("measured event");
        });
        let cache_after = tp.reservoir_stats().cache;
        let misses = cache_after.misses - misses_before.misses;
        let hits = cache_after.hits - misses_before.hits;

        // No per-op surcharge here: with K windows the *real* measured
        // state-access cost (≈6 read-modify-writes per window per event)
        // is already at JVM-RocksDB magnitude and produces the saturation
        // knee; adding the fig8 surcharge would double-count it.
        let _ = JVM_STATE_OP_US;
        let surcharge = 0u64;
        let cfg = InjectorConfig {
            rate_ev_s: RATE_EV_S,
            events: scale.sim_events,
            warmup_events: scale.sim_events / 7,
            kafka: KafkaHopModel::calibrated(),
            // Allocation scales with the window count (per-window update
            // garbage); §5.2.1 reports that at 240 iterators "the actual
            // heap usage is very close to the maximum JVM heap", so beyond
            // the cache capacity the model adds near-OOM full-GC behaviour.
            gc: gc_for(windows),
        };
        let mut rng = SmallRng::seed_from_u64(0x9B + series_idx as u64);
        let summary = run_open_loop(&cfg, &mut rng, |seq| pool.sample(seq, surcharge));
        print_series(&format!("{live_iterators} iterators"), &summary.latencies);
        let miss_rate = misses as f64 / (hits + misses).max(1) as f64 * 100.0;
        cache_report.push((live_iterators, hits, misses, miss_rate, pool.mean_us()));
    }

    println!();
    println!("# Reservoir cache behaviour (the Figure 9(b) mechanism):");
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>16}",
        "iterators", "cache hits", "misses", "miss %", "svc mean (µs)"
    );
    for (its, hits, misses, rate, mean) in cache_report {
        println!("{its:<12} {hits:>12} {misses:>12} {rate:>9.2}% {mean:>16.1}");
    }
    println!();
    println!("# Expected shape: flat latency while iterators fit the 220-chunk cache;");
    println!("# misses and tail latency jump when 240 iterators exceed it.");
}
