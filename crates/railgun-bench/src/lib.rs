//! # railgun-bench — the evaluation harness
//!
//! Reproduces every table and figure of the paper's evaluation (§5). Each
//! figure has a dedicated bench target (run with
//! `cargo bench -p railgun-bench --bench <name>`):
//!
//! | target | reproduces |
//! |--------|------------|
//! | `fig8_flink_vs_railgun` | Figure 8 — Flink hopping-window latency vs Railgun sliding windows at 500 ev/s |
//! | `fig9a_window_size` | Figure 9(a) — Railgun latency across window sizes 5 min → 7 days |
//! | `fig9b_iterators` | Figure 9(b) — Railgun latency across 20 → 240 reservoir iterators |
//! | `fig10_node_scaling` | Figure 10 — per-node throughput & tail latency, 1 → 50 nodes |
//! | `fig_hotpath` | perf baseline — reservoir ingest/drain hot path (BENCH_hotpath.json) |
//! | `fig_scaling` | perf baseline — threaded runtime vs worker threads & in-flight depth (BENCH_scaling.json) |
//! | `fig_latency` | perf baseline — **measured** end-to-end latency percentiles through the threaded runtime, client- and engine-observed (BENCH_latency.json) |
//! | `micro_*` | Criterion microbenchmarks & ablations (aggregators, reservoir, store, messaging, rebalance) |
//!
//! Set `RAILGUN_BENCH_SCALE=full` for paper-length runs (the default
//! `quick` profile keeps every figure under a few minutes).
//!
//! Methodology and paper-vs-measured comparisons live in EXPERIMENTS.md.

pub mod figures;
pub mod workload;

pub use figures::{bench_scale, fmt_ms, print_header, print_mad_check, print_series, BenchScale, ServicePool};
pub use workload::{
    compact_schema, payments_schema, queries, FraudGenerator, WorkloadConfig, Zipf,
};
