//! Shared machinery for the per-figure benchmark harnesses.
//!
//! Each figure bench follows the same recipe (DESIGN.md substitution #5):
//!
//! 1. run *real engine code* on the synthetic fraud workload, measuring
//!    per-event service times;
//! 2. feed the measured service-time distribution into the open-loop
//!    queueing simulation at the paper's injection rate, with the
//!    calibrated messaging/GC models;
//! 3. print the paper's percentile ladder per series.
//!
//! Scale is controlled by `RAILGUN_BENCH_SCALE` (`quick` default, `full`
//! for paper-length runs).

use std::time::Instant;

use railgun_types::Histogram;

/// Measurement/simulation sizes.
#[derive(Debug, Clone, Copy)]
pub struct BenchScale {
    /// Events executed against the real engine to sample service times.
    pub measure_events: u64,
    /// Events pushed through the queueing simulation.
    pub sim_events: u64,
    /// Reservoir prefill events for steady-state window iteration.
    pub prefill_events: u64,
}

/// Resolve the scale from `RAILGUN_BENCH_SCALE` (`tiny`, `quick`, `full`).
pub fn bench_scale() -> BenchScale {
    match std::env::var("RAILGUN_BENCH_SCALE").as_deref() {
        Ok("full") => BenchScale {
            measure_events: 100_000,
            sim_events: 1_000_000,
            prefill_events: 400_000,
        },
        Ok("tiny") => BenchScale {
            measure_events: 1_500,
            sim_events: 30_000,
            prefill_events: 5_000,
        },
        _ => BenchScale {
            measure_events: 12_000,
            sim_events: 150_000,
            prefill_events: 60_000,
        },
    }
}

/// A pool of measured per-event service times, cycled by the simulator.
///
/// Resampling a measured empirical distribution keeps the simulation
/// faithful to the real engine while decoupling simulated run length from
/// (slow) real execution.
#[derive(Debug, Clone)]
pub struct ServicePool {
    samples: Vec<u64>,
}

impl ServicePool {
    /// Capture service times by timing `f(seq)` for `n` sequential events.
    pub fn measure(n: u64, mut f: impl FnMut(u64)) -> Self {
        let mut samples = Vec::with_capacity(n as usize);
        for seq in 0..n {
            let t = Instant::now();
            f(seq);
            samples.push(t.elapsed().as_micros().max(1) as u64);
        }
        ServicePool { samples }
    }

    /// Like [`ServicePool::measure`], but paces invocations at
    /// `interval_us` of wall time (timing only `f` itself). Used when the
    /// measured engine relies on background work — e.g. the reservoir's
    /// asynchronous read-ahead — that needs its real-time budget between
    /// events.
    pub fn measure_paced(n: u64, interval_us: u64, mut f: impl FnMut(u64)) -> Self {
        let mut samples = Vec::with_capacity(n as usize);
        let start = Instant::now();
        for seq in 0..n {
            let deadline = std::time::Duration::from_micros(seq * interval_us);
            while start.elapsed() < deadline {
                std::thread::yield_now();
            }
            let t = Instant::now();
            f(seq);
            samples.push(t.elapsed().as_micros().max(1) as u64);
        }
        ServicePool { samples }
    }

    /// Build from explicit samples.
    pub fn from_samples(samples: Vec<u64>) -> Self {
        assert!(!samples.is_empty());
        ServicePool { samples }
    }

    /// Service time for simulated event `seq` (cycles the pool), plus a
    /// fixed surcharge in µs (used to model JVM per-state-op costs).
    pub fn sample(&self, seq: u64, surcharge_us: u64) -> u64 {
        self.samples[(seq % self.samples.len() as u64) as usize] + surcharge_us
    }

    /// Mean measured service time, µs.
    pub fn mean_us(&self) -> f64 {
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// p99 measured service time, µs.
    pub fn p99_us(&self) -> u64 {
        let mut v = self.samples.clone();
        v.sort_unstable();
        let idx = (((v.len() as f64) * 0.99) as usize).min(v.len() - 1);
        v[idx]
    }
}

/// Format µs as ms with sensible precision.
pub fn fmt_ms(us: u64) -> String {
    let ms = us as f64 / 1000.0;
    if ms < 10.0 {
        format!("{ms:.2}")
    } else if ms < 1000.0 {
        format!("{ms:.1}")
    } else {
        format!("{ms:.0}")
    }
}

/// Print the header row of the paper's percentile ladder.
pub fn print_header(figure: &str, caption: &str) {
    println!();
    println!("=== {figure}: {caption} ===");
    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "series (latency in ms)",
        "p0",
        "p50",
        "p75",
        "p90",
        "p95",
        "p99",
        "p99.9",
        "p99.99",
        "p99.999",
        "p100"
    );
}

/// Print one series row using the paper's percentile ladder.
pub fn print_series(name: &str, h: &Histogram) {
    let vals = h.paper_series();
    print!("{name:<28}");
    for v in vals {
        print!(" {:>8}", fmt_ms(v));
    }
    println!();
}

/// Print a marker line showing where 250 ms @ 99.9% (the M requirement)
/// stands for a series.
pub fn print_mad_check(name: &str, h: &Histogram) {
    let p999 = h.percentile(0.999);
    let ok = p999 <= 250_000;
    println!(
        "    M requirement (<250ms @ 99.9%): {} — p99.9 = {} ms [{name}]",
        if ok { "MET" } else { "BREACHED" },
        fmt_ms(p999)
    );
}
