//! Synthetic fraud workload (DESIGN.md substitution #4).
//!
//! The paper's experiments use a real client fraud dataset with **103
//! fields**, chosen to reproduce "real-world dictionary cardinalities for
//! the aggregation states, and the expected load differences among the
//! several Railgun processors". This generator provides the same
//! properties synthetically:
//!
//! * a 103-field schema (ids, amount, and ~99 realistic filler fields);
//! * Zipf-distributed card and merchant populations (heavy hitters create
//!   the load skew across partitions);
//! * log-normal transaction amounts;
//! * low-cardinality categorical fields (country, currency, channel...)
//!   that compress well, mirroring payment-event redundancy.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use railgun_core::lang::{mins, Agg, Query, Window};
use railgun_types::{FieldType, Schema, Value};

/// Number of fields in the paper's dataset.
pub const FIELD_COUNT: usize = 103;

/// Configuration of the generator.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Distinct cards (group-by cardinality for per-card metrics).
    pub cards: u64,
    /// Distinct merchants.
    pub merchants: u64,
    /// Zipf skew exponent for both populations (1.0 ≈ realistic skew).
    pub zipf_s: f64,
    /// Median transaction amount.
    pub amount_median: f64,
    /// Log-normal shape of amounts.
    pub amount_sigma: f64,
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            cards: 50_000,
            merchants: 5_000,
            zipf_s: 1.05,
            amount_median: 27.5,
            amount_sigma: 1.1,
            seed: 0x0FEE_D2A1,
        }
    }
}

/// Zipf sampler over `{0..n-1}` with exponent `s`, via precomputed CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler (O(n) precompute).
    pub fn new(n: u64, s: f64) -> Self {
        let n = n.max(1) as usize;
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw one rank (0 = most popular).
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

const COUNTRIES: [&str; 12] = [
    "PT", "US", "GB", "DE", "FR", "ES", "BR", "NL", "IT", "PL", "IN", "SG",
];
const CURRENCIES: [&str; 8] = ["EUR", "USD", "GBP", "BRL", "PLN", "INR", "SGD", "CHF"];
const CHANNELS: [&str; 5] = ["pos", "ecom", "moto", "atm", "recurring"];
const ENTRY_MODES: [&str; 6] = ["chip", "swipe", "contactless", "manual", "token", "fallback"];

/// The 103-field payments schema.
///
/// Field 0 = `cardId`, field 1 = `merchantId`, field 2 = `amount`; the
/// rest are realistic filler: categorical strings, flags, counters and
/// scores, named `f_<kind><idx>`.
pub fn payments_schema() -> Schema {
    let mut fields: Vec<(String, FieldType)> = vec![
        ("cardId".to_owned(), FieldType::Str),
        ("merchantId".to_owned(), FieldType::Str),
        ("amount".to_owned(), FieldType::Float),
        ("country".to_owned(), FieldType::Str),
        ("currency".to_owned(), FieldType::Str),
        ("channel".to_owned(), FieldType::Str),
        ("entryMode".to_owned(), FieldType::Str),
        ("isCardPresent".to_owned(), FieldType::Bool),
        ("mcc".to_owned(), FieldType::Int),
        ("terminalId".to_owned(), FieldType::Str),
    ];
    let mut i = 0;
    while fields.len() < FIELD_COUNT {
        let ty = match i % 4 {
            0 => FieldType::Str,
            1 => FieldType::Float,
            2 => FieldType::Int,
            _ => FieldType::Bool,
        };
        let name = format!("f_{}{:02}", ["s", "x", "n", "b"][i % 4], i);
        fields.push((name, ty));
        i += 1;
    }
    let pairs: Vec<(&str, FieldType)> = fields.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    Schema::from_pairs(&pairs).expect("static schema is valid")
}

/// Stateful event generator.
pub struct FraudGenerator {
    cfg: WorkloadConfig,
    rng: SmallRng,
    cards: Zipf,
    merchants: Zipf,
    schema: Schema,
}

impl FraudGenerator {
    /// Build a generator (precomputes the Zipf tables).
    pub fn new(cfg: WorkloadConfig) -> Self {
        let rng = SmallRng::seed_from_u64(cfg.seed);
        let cards = Zipf::new(cfg.cards, cfg.zipf_s);
        let merchants = Zipf::new(cfg.merchants, cfg.zipf_s);
        FraudGenerator {
            cfg,
            rng,
            cards,
            merchants,
            schema: payments_schema(),
        }
    }

    /// The generator's schema (103 fields).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Generate the positional values of one event.
    pub fn next_values(&mut self) -> Vec<Value> {
        let rng = &mut self.rng;
        let card = self.cards.sample(rng);
        let merchant = self.merchants.sample(rng);
        // Log-normal amount via Box-Muller.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let amount =
            (self.cfg.amount_median.ln() + self.cfg.amount_sigma * z).exp().min(100_000.0);

        let mut values = Vec::with_capacity(FIELD_COUNT);
        values.push(Value::Str(format!("card-{card:08}")));
        values.push(Value::Str(format!("merch-{merchant:06}")));
        values.push(Value::Float((amount * 100.0).round() / 100.0));
        values.push(Value::Str(COUNTRIES[rng.gen_range(0..COUNTRIES.len())].into()));
        values.push(Value::Str(
            CURRENCIES[rng.gen_range(0..CURRENCIES.len())].into(),
        ));
        values.push(Value::Str(CHANNELS[rng.gen_range(0..CHANNELS.len())].into()));
        values.push(Value::Str(
            ENTRY_MODES[rng.gen_range(0..ENTRY_MODES.len())].into(),
        ));
        values.push(Value::Bool(rng.gen_bool(0.7)));
        values.push(Value::Int(rng.gen_range(3000..6000)));
        values.push(Value::Str(format!("term-{:05}", rng.gen_range(0..20_000))));
        let mut i = 0usize;
        while values.len() < FIELD_COUNT {
            let v = match i % 4 {
                0 => Value::Str(format!("v{}", rng.gen_range(0..50u32))),
                1 => Value::Float(rng.gen_range(0.0..1.0)),
                2 => Value::Int(rng.gen_range(0..1000)),
                _ => Value::Bool(rng.gen_bool(0.5)),
            };
            // ~2% NULLs, as real datasets have.
            if rng.gen_bool(0.02) {
                values.push(Value::Null);
            } else {
                values.push(v);
            }
            i += 1;
        }
        values
    }

    /// A compact 3-field variant (cardId, merchantId, amount) for benches
    /// that isolate engine cost from payload size.
    pub fn next_compact(&mut self) -> Vec<Value> {
        let rng = &mut self.rng;
        let card = self.cards.sample(rng);
        let merchant = self.merchants.sample(rng);
        let amount: f64 = rng.gen_range(1.0..500.0);
        vec![
            Value::Str(format!("card-{card:08}")),
            Value::Str(format!("merch-{merchant:06}")),
            Value::Float(amount),
        ]
    }
}

/// The compact 3-field schema matching [`FraudGenerator::next_compact`].
pub fn compact_schema() -> Schema {
    Schema::from_pairs(&[
        ("cardId", FieldType::Str),
        ("merchantId", FieldType::Str),
        ("amount", FieldType::Float),
    ])
    .expect("static schema is valid")
}

/// The standard bench queries, constructed with the typed query builder
/// (the builder compiles to the same plan as the equivalent text —
/// pinned by `tests/query_lifecycle.rs` — so bench results are directly
/// comparable across both front doors).
pub mod queries {
    use super::*;

    /// Per-card `sum(amount), count(*)` over a 5-minute sliding window
    /// (the paper's Q1).
    pub fn per_card() -> Query {
        Query::select(Agg::sum("amount"))
            .select(Agg::count())
            .from("payments")
            .group_by(["cardId"])
            .over(Window::sliding(mins(5)))
            .build()
            .expect("static query is valid")
    }

    /// Per-card `countDistinct(merchantId)` over an infinite window.
    pub fn distinct_merchants() -> Query {
        Query::select(Agg::count_distinct("merchantId"))
            .from("payments")
            .group_by(["cardId"])
            .over(Window::infinite())
            .build()
            .expect("static query is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_exactly_103_fields() {
        let s = payments_schema();
        assert_eq!(s.len(), FIELD_COUNT);
        assert_eq!(s.index_of("cardId"), Some(0));
        assert_eq!(s.index_of("amount"), Some(2));
    }

    #[test]
    fn events_validate_against_schema() {
        let mut g = FraudGenerator::new(WorkloadConfig::default());
        let schema = g.schema().clone();
        for _ in 0..100 {
            let values = g.next_values();
            schema.check_values(&values).expect("valid event");
        }
    }

    #[test]
    fn zipf_is_skewed_and_complete() {
        let z = Zipf::new(1000, 1.1);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Rank 0 dominates rank 100 heavily.
        assert!(counts[0] > counts[100] * 10);
        // But the tail is populated.
        assert!(counts[500..].iter().sum::<u64>() > 100);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = FraudGenerator::new(WorkloadConfig::default());
        let mut b = FraudGenerator::new(WorkloadConfig::default());
        for _ in 0..10 {
            assert_eq!(a.next_values(), b.next_values());
        }
    }

    #[test]
    fn compact_variant_matches_compact_schema() {
        let mut g = FraudGenerator::new(WorkloadConfig::default());
        let values = g.next_compact();
        compact_schema().check_values(&values).unwrap();
    }

    #[test]
    fn builder_queries_match_their_text_forms() {
        use railgun_core::parse_query;
        assert_eq!(
            queries::per_card(),
            parse_query(
                "SELECT sum(amount), count(*) FROM payments GROUP BY cardId OVER sliding 5 min"
            )
            .unwrap()
        );
        assert_eq!(
            queries::distinct_merchants(),
            parse_query(
                "SELECT countDistinct(merchantId) FROM payments GROUP BY cardId OVER infinite"
            )
            .unwrap()
        );
    }

    #[test]
    fn card_population_creates_partition_skew() {
        // Hash the generated cards into 8 "partitions" and verify the load
        // spread is uneven (the paper's motivation for using real data).
        let mut g = FraudGenerator::new(WorkloadConfig::default());
        let mut loads = [0u64; 8];
        for _ in 0..20_000 {
            let v = g.next_compact();
            let card = v[0].as_str().unwrap().to_owned();
            let p = railgun_messaging::partition_for_key(card.as_bytes(), 8);
            loads[p as usize] += 1;
        }
        let max = *loads.iter().max().unwrap() as f64;
        let min = *loads.iter().min().unwrap() as f64;
        assert!(max / min > 1.05, "expected visible skew: {loads:?}");
    }
}
