//! Filter expression language.
//!
//! The paper uses jexl (a Java expression library) for `WHERE` filters
//! (§3.4). This module is the native substitute (DESIGN.md substitution
//! #6): a small, typed expression evaluator over event fields supporting
//! comparisons, boolean logic, arithmetic, and NULL checks.
//!
//! Expressions are compiled against a [`Schema`] once (field names resolve
//! to positional indexes), then evaluated per event with no allocation on
//! the hot path.

use railgun_types::{RailgunError, Result, Schema, Value};

/// Binary comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// A compiled filter expression.
///
/// `Expr` trees are built by the query parser or programmatically; field
/// references hold resolved indexes so evaluation is a positional lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal constant.
    Lit(Value),
    /// Field reference (resolved index, kept name for display).
    Field { index: usize, name: String },
    /// Comparison; NULL operands make comparisons false (SQL-ish).
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic over numeric operands; NULL propagates.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Logical conjunction (short-circuit).
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction (short-circuit).
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// `field IS NULL`.
    IsNull(Box<Expr>),
}

impl Expr {
    /// Build a field reference, resolving `name` against `schema`.
    pub fn field(schema: &Schema, name: &str) -> Result<Expr> {
        Ok(Expr::Field {
            index: schema.require(name)?,
            name: name.to_owned(),
        })
    }

    /// Evaluate to a [`Value`].
    pub fn eval(&self, values: &[Value]) -> Value {
        match self {
            Expr::Lit(v) => v.clone(),
            Expr::Field { index, .. } => values.get(*index).cloned().unwrap_or(Value::Null),
            Expr::Cmp(op, a, b) => {
                let (a, b) = (a.eval(values), b.eval(values));
                if a.is_null() || b.is_null() {
                    return Value::Bool(false);
                }
                let ord = a.total_cmp(&b);
                let result = match op {
                    CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                    CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                    CmpOp::Lt => ord == std::cmp::Ordering::Less,
                    CmpOp::Le => ord != std::cmp::Ordering::Greater,
                    CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                    CmpOp::Ge => ord != std::cmp::Ordering::Less,
                };
                Value::Bool(result)
            }
            Expr::Arith(op, a, b) => {
                let (a, b) = (a.eval(values), b.eval(values));
                let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) else {
                    return Value::Null;
                };
                let out = match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => {
                        if y == 0.0 {
                            return Value::Null;
                        }
                        x / y
                    }
                };
                // Preserve integer typing when both sides are integers and
                // the operation is exact.
                if let (Value::Int(xi), Value::Int(yi)) = (&a, &b) {
                    match op {
                        ArithOp::Add => return Value::Int(xi + yi),
                        ArithOp::Sub => return Value::Int(xi - yi),
                        ArithOp::Mul => return Value::Int(xi * yi),
                        ArithOp::Div => {}
                    }
                }
                Value::Float(out)
            }
            Expr::And(a, b) => {
                if !a.eval(values).is_truthy() {
                    return Value::Bool(false);
                }
                Value::Bool(b.eval(values).is_truthy())
            }
            Expr::Or(a, b) => {
                if a.eval(values).is_truthy() {
                    return Value::Bool(true);
                }
                Value::Bool(b.eval(values).is_truthy())
            }
            Expr::Not(a) => Value::Bool(!a.eval(values).is_truthy()),
            Expr::IsNull(a) => Value::Bool(a.eval(values).is_null()),
        }
    }

    /// Evaluate as a filter predicate.
    pub fn matches(&self, values: &[Value]) -> bool {
        self.eval(values).is_truthy()
    }

    /// Validate field indexes against a schema (used when plans are rebuilt
    /// after schema evolution).
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        match self {
            Expr::Lit(_) => Ok(()),
            Expr::Field { index, name } => {
                if schema.index_of(name) == Some(*index) {
                    Ok(())
                } else {
                    Err(RailgunError::Expr(format!(
                        "field `{name}` no longer at index {index}"
                    )))
                }
            }
            Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.validate(schema)?;
                b.validate(schema)
            }
            Expr::Not(a) | Expr::IsNull(a) => a.validate(schema),
        }
    }

    /// A canonical textual form used for plan-node sharing (two filters
    /// share a node iff their canonical forms are identical).
    pub fn canonical(&self) -> String {
        match self {
            Expr::Lit(v) => format!("lit({v:?})"),
            Expr::Field { index, .. } => format!("f{index}"),
            Expr::Cmp(op, a, b) => format!("cmp({op:?},{},{})", a.canonical(), b.canonical()),
            Expr::Arith(op, a, b) => {
                format!("arith({op:?},{},{})", a.canonical(), b.canonical())
            }
            Expr::And(a, b) => format!("and({},{})", a.canonical(), b.canonical()),
            Expr::Or(a, b) => format!("or({},{})", a.canonical(), b.canonical()),
            Expr::Not(a) => format!("not({})", a.canonical()),
            Expr::IsNull(a) => format!("isnull({})", a.canonical()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use railgun_types::FieldType;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("amount", FieldType::Float),
            ("country", FieldType::Str),
            ("retries", FieldType::Int),
        ])
        .unwrap()
    }

    fn lit(v: impl Into<Value>) -> Box<Expr> {
        Box::new(Expr::Lit(v.into()))
    }

    fn field(name: &str) -> Box<Expr> {
        Box::new(Expr::field(&schema(), name).unwrap())
    }

    #[test]
    fn comparisons() {
        let vals = vec![Value::Float(120.0), Value::Str("PT".into()), Value::Int(2)];
        let gt = Expr::Cmp(CmpOp::Gt, field("amount"), lit(100.0));
        assert!(gt.matches(&vals));
        let eq = Expr::Cmp(CmpOp::Eq, field("country"), lit("PT"));
        assert!(eq.matches(&vals));
        let le = Expr::Cmp(CmpOp::Le, field("retries"), lit(1i64));
        assert!(!le.matches(&vals));
        // Cross-type numeric compare: Int field vs Float literal.
        let ge = Expr::Cmp(CmpOp::Ge, field("retries"), lit(2.0));
        assert!(ge.matches(&vals));
    }

    #[test]
    fn null_comparisons_are_false() {
        let vals = vec![Value::Null, Value::Null, Value::Null];
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Ge] {
            let e = Expr::Cmp(op, field("amount"), lit(1.0));
            assert!(!e.matches(&vals), "{op:?} on NULL must be false");
        }
        let isnull = Expr::IsNull(field("amount"));
        assert!(isnull.matches(&vals));
    }

    #[test]
    fn boolean_logic_short_circuits() {
        let vals = vec![Value::Float(50.0), Value::Str("PT".into()), Value::Int(0)];
        let and = Expr::And(
            Box::new(Expr::Cmp(CmpOp::Gt, field("amount"), lit(10.0))),
            Box::new(Expr::Cmp(CmpOp::Eq, field("country"), lit("PT"))),
        );
        assert!(and.matches(&vals));
        let or = Expr::Or(
            Box::new(Expr::Cmp(CmpOp::Gt, field("amount"), lit(1000.0))),
            Box::new(Expr::Cmp(CmpOp::Eq, field("country"), lit("PT"))),
        );
        assert!(or.matches(&vals));
        let not = Expr::Not(Box::new(or));
        assert!(!not.matches(&vals));
    }

    #[test]
    fn arithmetic_and_division_by_zero() {
        let vals = vec![Value::Float(50.0), Value::Null, Value::Int(4)];
        let twice = Expr::Arith(ArithOp::Mul, field("amount"), lit(2.0));
        assert_eq!(twice.eval(&vals), Value::Float(100.0));
        let int_add = Expr::Arith(ArithOp::Add, field("retries"), lit(1i64));
        assert_eq!(int_add.eval(&vals), Value::Int(5));
        let div0 = Expr::Arith(ArithOp::Div, field("amount"), lit(0.0));
        assert_eq!(div0.eval(&vals), Value::Null);
        let null_prop = Expr::Arith(ArithOp::Add, field("country"), lit(1.0));
        assert_eq!(null_prop.eval(&vals), Value::Null);
    }

    #[test]
    fn unknown_field_fails_at_compile() {
        assert!(Expr::field(&schema(), "nope").is_err());
    }

    #[test]
    fn canonical_form_distinguishes_and_matches() {
        let a = Expr::Cmp(CmpOp::Gt, field("amount"), lit(10.0));
        let b = Expr::Cmp(CmpOp::Gt, field("amount"), lit(10.0));
        let c = Expr::Cmp(CmpOp::Ge, field("amount"), lit(10.0));
        assert_eq!(a.canonical(), b.canonical());
        assert_ne!(a.canonical(), c.canonical());
    }

    #[test]
    fn validate_detects_schema_drift() {
        let e = Expr::field(&schema(), "amount").unwrap();
        assert!(e.validate(&schema()).is_ok());
        let moved = Schema::from_pairs(&[
            ("country", FieldType::Str),
            ("amount", FieldType::Float),
        ])
        .unwrap();
        assert!(e.validate(&moved).is_err());
    }
}
