//! The threaded execution runtime: one OS thread per processor unit.
//!
//! The paper meets its MAD requirements by running each processor unit on
//! its own thread over partitioned topics (§3.2, Figure 3) — one logical
//! thread per partition set, no cross-unit synchronization. This module
//! supplies that execution mode for the in-process cluster: a [`Runtime`]
//! owns the worker threads, each wrapping the unit's deterministic pump in
//! [`crate::unit::ProcessorUnit::run_loop`].
//!
//! Lifecycle:
//!
//! * **spawn** — every unit moves onto a dedicated named OS thread;
//! * **idle** — workers park on the message bus's condvar wakeup path
//!   (no spinning), waking at a heartbeat interval so group membership
//!   and `BusClock::Auto` expiry keep running;
//! * **stop** — a shared stop flag is raised and every parked worker is
//!   woken through the same path; threads finish their current pump and
//!   return their unit, so the node can fall back to deterministic pump
//!   mode (or restart) with all state intact;
//! * **panic/error propagation** — a worker that panics or returns an
//!   engine error raises the runtime's failure flag and wakes everyone;
//!   [`Runtime::health`] surfaces it early (front-ends check it while
//!   waiting for replies instead of timing out blind), and
//!   [`Runtime::stop`] reports the collected failure messages.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use railgun_messaging::MessageBus;
use railgun_types::{RailgunError, Result};

use crate::unit::ProcessorUnit;

/// How one worker thread ended.
enum UnitExit {
    /// Clean stop: the unit is handed back for pump-mode reuse.
    Clean(Box<ProcessorUnit>),
    /// The unit's run loop returned an engine error or panicked.
    Failed(String),
}

struct Worker {
    label: String,
    handle: JoinHandle<UnitExit>,
}

/// A running fleet of per-unit worker threads.
pub struct Runtime {
    stop: Arc<AtomicBool>,
    failed: Arc<AtomicBool>,
    bus: MessageBus,
    workers: Vec<Worker>,
}

impl Runtime {
    /// Move every unit onto its own OS thread and start pumping.
    ///
    /// If any thread fails to spawn (resource exhaustion), the
    /// already-started workers are stopped and the surviving units are
    /// handed back with the error so the caller can keep running them in
    /// pump mode. Only the one unit whose thread failed is lost (the std
    /// spawn API drops its closure); its group membership lapses and its
    /// tasks reassign to the survivors — the same path as a unit crash.
    pub fn spawn(
        bus: MessageBus,
        units: Vec<ProcessorUnit>,
    ) -> std::result::Result<Runtime, (Vec<ProcessorUnit>, RailgunError)> {
        let stop = Arc::new(AtomicBool::new(false));
        let failed = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::with_capacity(units.len());
        let mut remaining = units.into_iter();
        while let Some(mut unit) = remaining.next() {
            let id = unit.identity();
            let label = format!("railgun-n{}-u{}", id.node, id.unit);
            let stop_flag = Arc::clone(&stop);
            let failed_flag = Arc::clone(&failed);
            let wake_bus = bus.clone();
            let spawned = std::thread::Builder::new().name(label.clone()).spawn(
                move || {
                    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        let r = unit.run_loop(&stop_flag);
                        (unit, r)
                    }));
                    match outcome {
                        Ok((unit, Ok(()))) => UnitExit::Clean(Box::new(unit)),
                        Ok((_, Err(e))) => {
                            failed_flag.store(true, Ordering::Release);
                            // Wake clients blocked on replies that will
                            // never come.
                            wake_bus.wake_all();
                            UnitExit::Failed(format!("unit error: {e}"))
                        }
                        Err(payload) => {
                            failed_flag.store(true, Ordering::Release);
                            wake_bus.wake_all();
                            UnitExit::Failed(format!(
                                "unit panicked: {}",
                                panic_message(&payload)
                            ))
                        }
                    }
                },
            );
            match spawned {
                Ok(handle) => workers.push(Worker { label, handle }),
                Err(e) => {
                    // Roll back the partial fleet, recovering its units
                    // plus the ones never offered to a thread.
                    let partial = Runtime {
                        stop,
                        failed,
                        bus,
                        workers,
                    };
                    let (mut recovered, _) = partial.stop();
                    recovered.extend(remaining);
                    return Err((recovered, RailgunError::Io(e)));
                }
            }
        }
        Ok(Runtime {
            stop,
            failed,
            bus,
            workers,
        })
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Cheap liveness probe: errors once any worker has panicked or bailed
    /// with an engine error (callers waiting on replies use this to fail
    /// fast instead of waiting out their timeout).
    pub fn health(&self) -> Result<()> {
        if self.failed.load(Ordering::Acquire) {
            Err(RailgunError::Engine(
                "a processor unit worker thread failed; stop() has the details".into(),
            ))
        } else {
            Ok(())
        }
    }

    /// Raise the stop flag, wake every parked worker, join the threads and
    /// hand the units back. On failure the surviving units are still
    /// returned alongside the collected failure messages.
    pub fn stop(mut self) -> (Vec<ProcessorUnit>, Result<()>) {
        self.stop.store(true, Ordering::Release);
        self.bus.wake_all();
        let mut units = Vec::with_capacity(self.workers.len());
        let mut failures = Vec::new();
        for worker in self.workers.drain(..) {
            match worker.handle.join() {
                Ok(UnitExit::Clean(unit)) => units.push(*unit),
                Ok(UnitExit::Failed(msg)) => {
                    failures.push(format!("{}: {msg}", worker.label));
                }
                // Unreachable in practice (panics are caught in the worker)
                // but a double-panic during unwind would land here.
                Err(payload) => failures.push(format!(
                    "{}: worker thread died: {}",
                    worker.label,
                    panic_message(&payload)
                )),
            }
        }
        let result = if failures.is_empty() {
            Ok(())
        } else {
            Err(RailgunError::Engine(failures.join("; ")))
        };
        (units, result)
    }
}

impl Drop for Runtime {
    /// A runtime dropped without [`Runtime::stop`] (e.g. a cluster that is
    /// simply let go at the end of a test) must not leak live worker
    /// threads: raise the stop flag, wake the parked ones, and join.
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.bus.wake_all();
        for worker in self.workers.drain(..) {
            let _ = worker.handle.join();
        }
    }
}

/// Best-effort human-readable panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".into()
    }
}
