//! Railgun's sticky assignment strategy (paper §4.2, Figure 7).
//!
//! The strategy assigns **active** tasks and **replica** tasks in two
//! passes, protecting two invariants:
//!
//! 1. a physical node holds at most one copy of a task (active or
//!    replica), so a node failure loses at most one copy;
//! 2. per-processor load stays within the budget
//!    `ceil(tasks × replication / processor units)`.
//!
//! Preference order (Figure 7): previous **active** processor → previous
//! **replica** processor (least loaded) → **stale** processor (one that
//! held the task in an earlier generation and still has data leftovers) →
//! least-loaded processor. Replicas skip the first step.
//!
//! The strategy plugs into the messaging layer's consumer-group coordinator
//! as an [`AssignmentStrategy`]; the replica plan it computes alongside the
//! active assignment is queried by processor units after each rebalance.

use std::collections::{HashMap, HashSet};

use parking_lot::Mutex;
use railgun_messaging::{AssignmentContext, AssignmentStrategy, MemberId, TopicPartition};

/// Physical placement of a processor unit, carried as member metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessorIdentity {
    pub node: u32,
    pub unit: u32,
}

impl ProcessorIdentity {
    /// Encode as member metadata bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(8);
        buf.extend_from_slice(&self.node.to_le_bytes());
        buf.extend_from_slice(&self.unit.to_le_bytes());
        buf
    }

    /// Decode from member metadata bytes.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() < 8 {
            return None;
        }
        Some(ProcessorIdentity {
            node: u32::from_le_bytes(buf[0..4].try_into().ok()?),
            unit: u32::from_le_bytes(buf[4..8].try_into().ok()?),
        })
    }
}

#[derive(Default)]
struct StrategyState {
    prev_active: HashMap<TopicPartition, MemberId>,
    prev_replicas: HashMap<TopicPartition, Vec<MemberId>>,
    /// Tasks a member held in the past but lost: "data leftovers" (§4.2).
    stale: HashMap<MemberId, HashSet<TopicPartition>>,
    /// Replica plan of the current generation.
    replica_plan: HashMap<MemberId, Vec<TopicPartition>>,
    generation: u64,
    /// Tasks moved to a processor without previous data (diagnostics —
    /// the data-shuffle cost the strategy minimizes).
    cold_assignments: u64,
}

/// The Figure 7 strategy. One instance is shared by every consumer of the
/// active group; its internal memory provides previous/stale tracking.
pub struct RailgunStrategy {
    /// Total copies per task (1 = active only; the paper deploys 3).
    replication: usize,
    state: Mutex<StrategyState>,
    /// Nodes being drained: their members stay in the group (so they can
    /// finish flushing checkpoints) but receive no new assignments.
    draining: Mutex<HashSet<u32>>,
}

impl RailgunStrategy {
    /// Create a strategy with the given total replication factor.
    pub fn new(replication: usize) -> Self {
        RailgunStrategy {
            replication: replication.max(1),
            state: Mutex::new(StrategyState::default()),
            draining: Mutex::new(HashSet::new()),
        }
    }

    /// Mark a node as draining: from the next rebalance on, its members
    /// get no tasks (active or replica). Concurrent rebalances — e.g. a
    /// heartbeat expiry racing the drain in threaded mode — can therefore
    /// never hand work *back* to a departing node.
    pub fn set_draining(&self, node: u32) {
        self.draining.lock().insert(node);
    }

    /// Forget a drain mark (the node left, or the drain was aborted).
    pub fn clear_draining(&self, node: u32) {
        self.draining.lock().remove(&node);
    }

    /// Replica tasks assigned to `member` in the current generation.
    pub fn replica_assignment(&self, member: MemberId) -> Vec<TopicPartition> {
        self.state
            .lock()
            .replica_plan
            .get(&member)
            .cloned()
            .unwrap_or_default()
    }

    /// Generation counter of the last computed assignment.
    pub fn generation(&self) -> u64 {
        self.state.lock().generation
    }

    /// Number of assignments that landed on a processor with no previous
    /// data for the task (each implies a data transfer / replay).
    pub fn cold_assignments(&self) -> u64 {
        self.state.lock().cold_assignments
    }
}

struct PassCtx<'a> {
    members: &'a [railgun_messaging::MemberInfo],
    identities: &'a HashMap<MemberId, ProcessorIdentity>,
    /// Members allowed to take work this generation (excludes draining
    /// nodes' members unless *everyone* is draining).
    eligible: &'a HashSet<MemberId>,
    budget: usize,
    loads: HashMap<MemberId, usize>,
    /// node -> tasks already placed there this generation (invariant 1).
    node_tasks: HashMap<u32, HashSet<TopicPartition>>,
}

impl PassCtx<'_> {
    fn can_take(&self, member: MemberId, task: &TopicPartition) -> bool {
        if !self.eligible.contains(&member) {
            return false;
        }
        if self.loads.get(&member).copied().unwrap_or(0) >= self.budget {
            return false;
        }
        let Some(id) = self.identities.get(&member) else {
            return false;
        };
        !self
            .node_tasks
            .get(&id.node)
            .is_some_and(|tasks| tasks.contains(task))
    }

    fn take(&mut self, member: MemberId, task: &TopicPartition) {
        *self.loads.entry(member).or_insert(0) += 1;
        if let Some(id) = self.identities.get(&member) {
            self.node_tasks
                .entry(id.node)
                .or_default()
                .insert(task.clone());
        }
    }

    /// Least-loaded member (by current load, ties by id) passing
    /// `can_take`, optionally restricted to `candidates`.
    fn least_loaded(
        &self,
        task: &TopicPartition,
        candidates: Option<&[MemberId]>,
    ) -> Option<MemberId> {
        let pool: Vec<MemberId> = match candidates {
            Some(c) => c.to_vec(),
            None => self.members.iter().map(|m| m.id).collect(),
        };
        pool.into_iter()
            .filter(|m| self.can_take(*m, task))
            .min_by_key(|m| (self.loads.get(m).copied().unwrap_or(0), *m))
    }
}

impl AssignmentStrategy for RailgunStrategy {
    fn assign(&self, ctx: &AssignmentContext) -> HashMap<MemberId, Vec<TopicPartition>> {
        let mut state = self.state.lock();
        state.generation += 1;
        let mut active: HashMap<MemberId, Vec<TopicPartition>> =
            ctx.members.iter().map(|m| (m.id, Vec::new())).collect();
        if ctx.members.is_empty() {
            state.replica_plan.clear();
            return active;
        }
        let identities: HashMap<MemberId, ProcessorIdentity> = ctx
            .members
            .iter()
            .filter_map(|m| ProcessorIdentity::decode(&m.metadata).map(|id| (m.id, id)))
            .collect();
        let alive: HashSet<MemberId> = ctx.members.iter().map(|m| m.id).collect();
        // Draining nodes keep their members in the group (they still need
        // the bus to flush checkpoints) but take no new work. If every
        // member is draining, ignore the marks — someone has to serve.
        let draining = self.draining.lock().clone();
        let mut eligible: HashSet<MemberId> = ctx
            .members
            .iter()
            .filter(|m| {
                identities
                    .get(&m.id)
                    .is_none_or(|id| !draining.contains(&id.node))
            })
            .map(|m| m.id)
            .collect();
        if eligible.is_empty() {
            eligible = alive.clone();
        }
        let replication = self.replication.min(
            identities
                .iter()
                .filter(|(m, _)| eligible.contains(*m))
                .map(|(_, id)| id.node)
                .collect::<HashSet<_>>()
                .len()
                .max(1),
        );
        let budget = (ctx.partitions.len() * replication).div_ceil(eligible.len());
        let mut pass = PassCtx {
            members: &ctx.members,
            identities: &identities,
            eligible: &eligible,
            budget,
            loads: HashMap::new(),
            node_tasks: HashMap::new(),
        };

        // --- Active pass (Figure 7, left) ---
        for task in &ctx.partitions {
            let prev_active = state
                .prev_active
                .get(task)
                .copied()
                .filter(|m| alive.contains(m));
            let chosen = prev_active
                .filter(|m| pass.can_take(*m, task))
                .or_else(|| {
                    // Previous replicas, least loaded first.
                    let prev_reps: Vec<MemberId> = state
                        .prev_replicas
                        .get(task)
                        .map(|v| {
                            v.iter()
                                .copied()
                                .filter(|m| alive.contains(m))
                                .collect()
                        })
                        .unwrap_or_default();
                    pass.least_loaded(task, Some(&prev_reps))
                })
                .or_else(|| {
                    // Stale processors.
                    let stale: Vec<MemberId> = state
                        .stale
                        .iter()
                        .filter(|(m, tasks)| alive.contains(*m) && tasks.contains(task))
                        .map(|(m, _)| *m)
                        .collect();
                    pass.least_loaded(task, Some(&stale))
                })
                .or_else(|| pass.least_loaded(task, None));
            if let Some(m) = chosen {
                pass.take(m, task);
                active.get_mut(&m).expect("seeded").push(task.clone());
            }
            // If nothing can take it (budget exhausted — shouldn't happen
            // with ceil budget), the coordinator would see an incomplete
            // assignment; fall back below.
        }
        // Safety net: any unassigned partition goes to the globally least
        // loaded member ignoring the budget (keeps the coordinator's
        // "every partition assigned" contract).
        {
            let assigned: HashSet<&TopicPartition> =
                active.values().flatten().collect();
            let missing: Vec<TopicPartition> = ctx
                .partitions
                .iter()
                .filter(|t| !assigned.contains(t))
                .cloned()
                .collect();
            for task in missing {
                if let Some(m) = ctx
                    .members
                    .iter()
                    .map(|m| m.id)
                    .filter(|m| eligible.contains(m))
                    .min_by_key(|m| (pass.loads.get(m).copied().unwrap_or(0), *m))
                {
                    pass.take(m, &task);
                    active.get_mut(&m).expect("seeded").push(task);
                }
            }
        }

        // --- Replica pass (Figure 7, right) ---
        let mut replicas: HashMap<MemberId, Vec<TopicPartition>> =
            ctx.members.iter().map(|m| (m.id, Vec::new())).collect();
        for task in &ctx.partitions {
            for _slot in 1..replication {
                let prev_reps: Vec<MemberId> = state
                    .prev_replicas
                    .get(task)
                    .map(|v| {
                        v.iter()
                            .copied()
                            .filter(|m| alive.contains(m))
                            .collect()
                    })
                    .unwrap_or_default();
                let chosen = pass
                    .least_loaded(task, Some(&prev_reps))
                    .or_else(|| {
                        let stale: Vec<MemberId> = state
                            .stale
                            .iter()
                            .filter(|(m, tasks)| alive.contains(*m) && tasks.contains(task))
                            .map(|(m, _)| *m)
                            .collect();
                        pass.least_loaded(task, Some(&stale))
                    })
                    .or_else(|| pass.least_loaded(task, None));
                match chosen {
                    Some(m) => {
                        pass.take(m, task);
                        replicas.get_mut(&m).expect("seeded").push(task.clone());
                    }
                    None => break, // cannot place more copies (few nodes)
                }
            }
        }

        // --- Bookkeeping: stale sets, cold-assignment count, plans ---
        let mut had_data: HashMap<MemberId, HashSet<TopicPartition>> = HashMap::new();
        for (task, m) in &state.prev_active {
            had_data.entry(*m).or_default().insert(task.clone());
        }
        for (task, ms) in &state.prev_replicas {
            for m in ms {
                had_data.entry(*m).or_default().insert(task.clone());
            }
        }
        for (m, tasks) in &state.stale {
            had_data.entry(*m).or_default().extend(tasks.iter().cloned());
        }
        let mut new_stale: HashMap<MemberId, HashSet<TopicPartition>> = HashMap::new();
        let mut cold = 0u64;
        for (m, tasks) in active.iter().chain(replicas.iter()) {
            for task in tasks {
                if !had_data.get(m).is_some_and(|h| h.contains(task)) {
                    cold += 1;
                }
            }
        }
        for (m, had) in &had_data {
            if !alive.contains(m) {
                continue; // member gone; its leftovers go with it
            }
            let holds: HashSet<&TopicPartition> = active[m]
                .iter()
                .chain(replicas[m].iter())
                .collect();
            let lost: HashSet<TopicPartition> = had
                .iter()
                .filter(|t| !holds.contains(*t) && ctx.partitions.contains(*t))
                .cloned()
                .collect();
            if !lost.is_empty() {
                new_stale.insert(*m, lost);
            }
        }
        state.cold_assignments += cold;
        state.stale = new_stale;
        state.prev_active = active
            .iter()
            .flat_map(|(m, ts)| ts.iter().map(move |t| (t.clone(), *m)))
            .collect();
        state.prev_replicas = {
            let mut map: HashMap<TopicPartition, Vec<MemberId>> = HashMap::new();
            for (m, ts) in &replicas {
                for t in ts {
                    map.entry(t.clone()).or_default().push(*m);
                }
            }
            map
        };
        state.replica_plan = replicas;
        active
    }

    fn name(&self) -> &str {
        "railgun-sticky"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use railgun_messaging::MemberInfo;

    fn tp(p: u32) -> TopicPartition {
        TopicPartition::new("t", p)
    }

    fn member(id: MemberId, node: u32, unit: u32) -> MemberInfo {
        MemberInfo {
            id,
            metadata: ProcessorIdentity { node, unit }.encode(),
            previous: Vec::new(),
        }
    }

    fn ctx(members: Vec<MemberInfo>, parts: u32) -> AssignmentContext {
        AssignmentContext {
            members,
            partitions: (0..parts).map(tp).collect(),
        }
    }

    fn owner_of(
        assignment: &HashMap<MemberId, Vec<TopicPartition>>,
        task: &TopicPartition,
    ) -> MemberId {
        *assignment
            .iter()
            .find(|(_, ts)| ts.contains(task))
            .map(|(m, _)| m)
            .expect("task assigned")
    }

    #[test]
    fn identity_roundtrip() {
        let id = ProcessorIdentity { node: 3, unit: 7 };
        assert_eq!(ProcessorIdentity::decode(&id.encode()), Some(id));
        assert_eq!(ProcessorIdentity::decode(&[1, 2]), None);
    }

    #[test]
    fn assigns_every_partition_exactly_once() {
        let s = RailgunStrategy::new(1);
        let a = s.assign(&ctx(
            vec![member(1, 0, 0), member(2, 0, 1), member(3, 1, 0)],
            10,
        ));
        let all: Vec<_> = a.values().flatten().collect();
        assert_eq!(all.len(), 10);
        let set: HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn respects_budget() {
        let s = RailgunStrategy::new(1);
        let a = s.assign(&ctx(vec![member(1, 0, 0), member(2, 1, 0)], 9));
        // Budget = ceil(9/2) = 5.
        for (m, ts) in &a {
            assert!(ts.len() <= 5, "member {m} overloaded: {}", ts.len());
        }
    }

    #[test]
    fn sticky_across_generations() {
        let s = RailgunStrategy::new(1);
        let members = vec![member(1, 0, 0), member(2, 1, 0)];
        let a1 = s.assign(&ctx(members.clone(), 6));
        let a2 = s.assign(&ctx(members, 6));
        assert_eq!(a1, a2, "no change in cluster => identical assignment");
        assert_eq!(railgun_messaging::moved_partitions(&a1, &a2), 0);
    }

    #[test]
    fn failover_prefers_previous_replica() {
        let s = RailgunStrategy::new(2);
        let members = vec![member(1, 0, 0), member(2, 1, 0), member(3, 2, 0)];
        let a1 = s.assign(&ctx(members.clone(), 3));
        // Pick a task owned by member 1 and find its replica.
        let task = a1[&1][0].clone();
        let replica_owner = {
            let plan1 = s.replica_assignment(1);
            let plan2 = s.replica_assignment(2);
            let plan3 = s.replica_assignment(3);
            if plan2.contains(&task) {
                2
            } else if plan3.contains(&task) {
                3
            } else if plan1.contains(&task) {
                panic!("replica on same node as active violates invariant");
            } else {
                panic!("no replica assigned for {task}");
            }
        };
        // Member 1 dies.
        let survivors: Vec<MemberInfo> = members
            .into_iter()
            .filter(|m| m.id != 1)
            .collect();
        let a2 = s.assign(&ctx(survivors, 3));
        assert_eq!(
            owner_of(&a2, &task),
            replica_owner,
            "task must fail over to its previous replica"
        );
    }

    #[test]
    fn replicas_never_share_a_node_with_active() {
        let s = RailgunStrategy::new(3);
        let members = vec![
            member(1, 0, 0),
            member(2, 0, 1), // same node as member 1
            member(3, 1, 0),
            member(4, 2, 0),
        ];
        let a = s.assign(&ctx(members, 4));
        for task in (0..4).map(tp) {
            let active_owner = owner_of(&a, &task);
            let active_node = if active_owner <= 2 { 0 } else { active_owner as u32 - 2 };
            let mut nodes_holding = vec![active_node];
            for m in 1..=4u64 {
                if s.replica_assignment(m).contains(&task) {
                    let node = if m <= 2 { 0 } else { m as u32 - 2 };
                    nodes_holding.push(node);
                }
            }
            let distinct: HashSet<_> = nodes_holding.iter().collect();
            assert_eq!(
                distinct.len(),
                nodes_holding.len(),
                "task {task} has two copies on one node: {nodes_holding:?}"
            );
        }
    }

    #[test]
    fn replication_capped_by_node_count() {
        let s = RailgunStrategy::new(3);
        // Only 2 physical nodes: at most 2 copies placeable.
        let a = s.assign(&ctx(vec![member(1, 0, 0), member(2, 1, 0)], 2));
        for task in (0..2).map(tp) {
            let copies = a.values().flatten().filter(|t| **t == task).count()
                + (1..=2u64)
                    .filter(|m| s.replica_assignment(*m).contains(&task))
                    .count();
            assert_eq!(copies, 2, "exactly 2 copies of {task}");
        }
    }

    #[test]
    fn member_join_moves_few_tasks() {
        let s = RailgunStrategy::new(1);
        let a1 = s.assign(&ctx(vec![member(1, 0, 0), member(2, 1, 0)], 8));
        let a2 = s.assign(&ctx(
            vec![member(1, 0, 0), member(2, 1, 0), member(3, 2, 0)],
            8,
        ));
        // Budget becomes ceil(8/3)=3; at most 8 - 3 - 3 = 2 + leftover
        // moves; a non-sticky strategy could move up to 8.
        let moved = railgun_messaging::moved_partitions(&a1, &a2);
        assert!(moved <= 3, "sticky strategy moved {moved} tasks");
        assert!(a2[&3].len() >= 2, "new member gets fair share");
    }

    #[test]
    fn stale_member_preferred_on_rejoin() {
        let s = RailgunStrategy::new(1);
        let m1 = member(1, 0, 0);
        let m2 = member(2, 1, 0);
        let m3 = member(3, 2, 0);
        // Gen 1: all three members.
        let a1 = s.assign(&ctx(vec![m1.clone(), m2.clone(), m3.clone()], 6));
        let m3_tasks = a1[&3].clone();
        assert!(!m3_tasks.is_empty());
        // Gen 2: member 3 leaves; its tasks move (member 3 would become
        // stale if it were still around — but it's gone, so no stale).
        let _a2 = s.assign(&ctx(vec![m1.clone(), m2.clone()], 6));
        // Gen 3: member 1's unit 2 appears on node 0 — it has no past.
        // Meanwhile member 2 lost some tasks in gen2's rebalancing? Verify
        // the cold-assignment counter moved (data had to shuffle).
        assert!(s.cold_assignments() > 0);
    }

    #[test]
    fn draining_node_receives_no_tasks() {
        let s = RailgunStrategy::new(2);
        let members = vec![member(1, 0, 0), member(2, 1, 0), member(3, 2, 0)];
        let a1 = s.assign(&ctx(members.clone(), 6));
        assert!(!a1[&2].is_empty(), "node 1 serves before the drain");
        s.set_draining(1);
        let a2 = s.assign(&ctx(members.clone(), 6));
        assert!(a2[&2].is_empty(), "draining node must get no active tasks");
        assert!(
            s.replica_assignment(2).is_empty(),
            "draining node must get no replicas"
        );
        let all: Vec<_> = a2.values().flatten().collect();
        assert_eq!(all.len(), 6, "every partition still assigned");
        // Everyone draining => marks are ignored rather than starving.
        s.set_draining(0);
        s.set_draining(2);
        let a3 = s.assign(&ctx(members.clone(), 6));
        assert_eq!(a3.values().flatten().count(), 6);
        s.clear_draining(0);
        s.clear_draining(2);
        // After the drained node leaves, the survivors rebalance normally.
        let survivors: Vec<MemberInfo> =
            members.into_iter().filter(|m| m.id != 2).collect();
        s.clear_draining(1);
        let a4 = s.assign(&ctx(survivors, 6));
        assert_eq!(a4.values().flatten().count(), 6);
    }

    #[test]
    fn members_without_identity_get_nothing_but_safety_net_covers() {
        let s = RailgunStrategy::new(1);
        let bogus = MemberInfo {
            id: 9,
            metadata: vec![1, 2, 3], // undecodable
            previous: Vec::new(),
        };
        let a = s.assign(&AssignmentContext {
            members: vec![bogus],
            partitions: vec![tp(0)],
        });
        // Safety net assigns even without identity (can_take fails but the
        // final fill ignores identity).
        assert_eq!(a[&9].len(), 1);
    }
}
