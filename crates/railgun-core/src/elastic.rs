//! Elastic membership: the autoscaler controller of the paper's
//! Figure 10 story.
//!
//! Railgun's elasticity rests on three layers. The first two live where
//! the state is: **checkpoint-based handover** (a rebalance-gained task
//! restores the newest checkpoint image and replays only the tail —
//! `ProcessorUnit::acquire_task`) and **scheduled drain** (a departing
//! node flushes final checkpoints before its tasks move —
//! [`Cluster::drain_node`](crate::cluster::Cluster::drain_node)). This
//! module is the third: a **controller loop** that closes the gap from
//! observed load to reconfiguration, deciding *when* to add a node and
//! when to drain one, from nothing but a [`MetricsSnapshot`].
//!
//! ## Policy
//!
//! The controller is deliberately boring — a pair of debounced
//! threshold rules with hysteresis, no prediction:
//!
//! * **scale up** when any SLO-tracked query's p99 has been at or above
//!   [`AutoscalerConfig::slo_headroom`] × its budget for
//!   [`AutoscalerConfig::scale_up_after`] consecutive observations
//!   (acting *before* the budget is breached is the M in MAD — once the
//!   p99 crosses the budget itself, the breach counters are already
//!   moving);
//! * **scale down** when the cluster processed zero new events for
//!   [`AutoscalerConfig::shrink_after`] consecutive observations
//!   (shrink is via drain, so an occasional false positive costs a
//!   short handover, never data);
//! * after either action, **hold** for [`AutoscalerConfig::cooldown`]
//!   observations so the previous decision's effect is visible in the
//!   ladders before the next one (rebalance + tail replay take a few
//!   observation periods to settle — reacting to mid-rebalance latency
//!   would oscillate);
//! * never leave `min_nodes..=max_nodes`.
//!
//! The asymmetry (up on latency, down on idleness) is intentional: load
//! can spike faster than it fades, and adding capacity is the cheap,
//! reversible direction — a wrong `Add` wastes a node for a cooldown,
//! a wrong `Shrink` under load costs latency SLOs.
//!
//! The controller itself never touches the cluster: it returns a
//! [`ScaleDecision`] and
//! [`Cluster::autoscale_tick`](crate::cluster::Cluster::autoscale_tick)
//! executes it (add a node, or drain the newest one). That keeps the
//! policy a pure, unit-testable function of observations.

use crate::metrics::MetricsSnapshot;

/// Bounds and hysteresis of the autoscaler controller, carried in
/// `ClusterConfig::autoscaler`.
#[derive(Debug, Clone)]
pub struct AutoscalerConfig {
    /// Master switch: with `false` (default), `autoscale_tick` observes
    /// nothing and never acts.
    pub enabled: bool,
    /// Never drain below this many nodes.
    pub min_nodes: usize,
    /// Never add above this many nodes.
    pub max_nodes: usize,
    /// A query is "hot" when its p99 ≥ `slo_headroom` × its SLO budget.
    /// 0.8 means: act when 80% of the budget is consumed at p99.
    pub slo_headroom: f64,
    /// Consecutive hot observations before a scale-up.
    pub scale_up_after: u32,
    /// Consecutive zero-progress observations before a scale-down.
    pub shrink_after: u32,
    /// Observations to hold after any action before deciding again.
    pub cooldown: u32,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            enabled: false,
            min_nodes: 1,
            max_nodes: 8,
            slo_headroom: 0.8,
            scale_up_after: 3,
            shrink_after: 5,
            cooldown: 3,
        }
    }
}

/// What the controller wants done after one observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// No change (streak building, cooling down, or at a bound).
    Hold,
    /// Add one node.
    Add,
    /// Drain and remove one node.
    Shrink,
}

/// The debounced threshold controller. Feed it one [`MetricsSnapshot`]
/// per observation period via [`Autoscaler::observe`]; it keeps the
/// streak/cooldown state between calls.
#[derive(Debug)]
pub struct Autoscaler {
    cfg: AutoscalerConfig,
    hot_streak: u32,
    idle_streak: u32,
    cooldown_left: u32,
    /// `tasks.events_processed` of the previous observation, to turn the
    /// monotone counter into per-period progress.
    last_events: u64,
    primed: bool,
}

impl Autoscaler {
    /// A fresh controller with no observation history.
    pub fn new(cfg: AutoscalerConfig) -> Self {
        Autoscaler {
            cfg,
            hot_streak: 0,
            idle_streak: 0,
            cooldown_left: 0,
            last_events: 0,
            primed: false,
        }
    }

    /// The configured bounds and hysteresis.
    pub fn config(&self) -> &AutoscalerConfig {
        &self.cfg
    }

    /// True when any SLO-tracked query's p99 is inside the headroom.
    fn is_hot(&self, snap: &MetricsSnapshot) -> bool {
        snap.queries.iter().any(|q| {
            let Some(slo) = q.slo else { return false };
            if q.completed == 0 {
                return false;
            }
            let budget_us = (slo.as_millis().max(0) as u64).saturating_mul(1_000);
            budget_us > 0
                && q.latency.percentile(0.99) as f64 >= self.cfg.slo_headroom * budget_us as f64
        })
    }

    /// Ingest one observation and decide. Call at a fixed cadence — the
    /// streak and cooldown constants are denominated in calls, not
    /// seconds, so the caller's period *is* the controller's time unit.
    pub fn observe(&mut self, snap: &MetricsSnapshot, nodes: usize) -> ScaleDecision {
        if !self.cfg.enabled {
            return ScaleDecision::Hold;
        }
        let events = snap.tasks.events_processed;
        let progressed = events > self.last_events;
        self.last_events = events;
        // The first observation has no previous counter to diff against:
        // prime and hold.
        if !self.primed {
            self.primed = true;
            return ScaleDecision::Hold;
        }
        let hot = self.is_hot(snap);
        if hot {
            self.hot_streak += 1;
            self.idle_streak = 0;
        } else if !progressed {
            self.idle_streak += 1;
            self.hot_streak = 0;
        } else {
            self.hot_streak = 0;
            self.idle_streak = 0;
        }
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return ScaleDecision::Hold;
        }
        if self.hot_streak >= self.cfg.scale_up_after && nodes < self.cfg.max_nodes {
            self.hot_streak = 0;
            self.idle_streak = 0;
            self.cooldown_left = self.cfg.cooldown;
            return ScaleDecision::Add;
        }
        if self.idle_streak >= self.cfg.shrink_after && nodes > self.cfg.min_nodes {
            self.hot_streak = 0;
            self.idle_streak = 0;
            self.cooldown_left = self.cfg.cooldown;
            return ScaleDecision::Shrink;
        }
        ScaleDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::QueryId;
    use crate::metrics::{EngineTelemetry, QueryMetrics};
    use railgun_types::{Histogram, TimeDelta};

    /// A snapshot with `events` total processed and one SLO query whose
    /// p99 sits at `p99_us` against a 10 ms budget.
    fn snap(events: u64, p99_us: Option<u64>) -> MetricsSnapshot {
        let mut s = EngineTelemetry::new(false).snapshot();
        s.tasks.events_processed = events;
        if let Some(us) = p99_us {
            let mut latency = Histogram::default();
            latency.record_n(us, 100);
            s.queries.push(QueryMetrics {
                id: QueryId(1),
                latency,
                slo: Some(TimeDelta::from_millis(10)),
                breaches: 0,
                completed: 100,
            });
        }
        s
    }

    fn scaler(min: usize, max: usize) -> Autoscaler {
        Autoscaler::new(AutoscalerConfig {
            enabled: true,
            min_nodes: min,
            max_nodes: max,
            slo_headroom: 0.8,
            scale_up_after: 3,
            shrink_after: 3,
            cooldown: 2,
        })
    }

    #[test]
    fn disabled_controller_always_holds() {
        let mut a = Autoscaler::new(AutoscalerConfig::default());
        for i in 0..10 {
            assert_eq!(a.observe(&snap(0, Some(1_000_000)), 1 + i), ScaleDecision::Hold);
        }
    }

    #[test]
    fn sustained_hot_p99_scales_up_after_streak() {
        let mut a = scaler(1, 4);
        // 8 ms p99 against a 10 ms budget = inside the 0.8 headroom.
        let hot = |i: u64| snap(i * 100, Some(8_000));
        assert_eq!(a.observe(&hot(1), 2), ScaleDecision::Hold); // priming
        assert_eq!(a.observe(&hot(2), 2), ScaleDecision::Hold); // streak 1
        assert_eq!(a.observe(&hot(3), 2), ScaleDecision::Hold); // streak 2
        assert_eq!(a.observe(&hot(4), 2), ScaleDecision::Add); // streak 3
        // Cooldown: two observations held even though still hot.
        assert_eq!(a.observe(&hot(5), 3), ScaleDecision::Hold);
        assert_eq!(a.observe(&hot(6), 3), ScaleDecision::Hold);
        // Streak kept building through cooldown; next call may act.
        assert_eq!(a.observe(&hot(7), 3), ScaleDecision::Add);
    }

    #[test]
    fn comfortable_p99_never_scales_up() {
        let mut a = scaler(1, 4);
        for i in 1..10 {
            // 2 ms p99 against 10 ms budget: far below the headroom, and
            // events keep flowing so it is not idle either.
            assert_eq!(a.observe(&snap(i * 100, Some(2_000)), 2), ScaleDecision::Hold);
        }
    }

    #[test]
    fn sustained_idle_shrinks_and_respects_min_nodes() {
        let mut a = scaler(2, 4);
        assert_eq!(a.observe(&snap(500, None), 3), ScaleDecision::Hold); // prime
        assert_eq!(a.observe(&snap(500, None), 3), ScaleDecision::Hold); // idle 1
        assert_eq!(a.observe(&snap(500, None), 3), ScaleDecision::Hold); // idle 2
        assert_eq!(a.observe(&snap(500, None), 3), ScaleDecision::Shrink); // idle 3
        // Cooldown, then another shrink would trigger — but at min_nodes
        // the controller holds instead.
        for _ in 0..10 {
            assert_eq!(a.observe(&snap(500, None), 2), ScaleDecision::Hold);
        }
    }

    #[test]
    fn max_nodes_caps_scale_up() {
        let mut a = scaler(1, 2);
        let hot = |i: u64| snap(i * 100, Some(9_500));
        a.observe(&hot(1), 2);
        for i in 2..12 {
            assert_eq!(
                a.observe(&hot(i), 2),
                ScaleDecision::Hold,
                "already at max_nodes"
            );
        }
    }

    #[test]
    fn progress_resets_idle_streak() {
        let mut a = scaler(1, 4);
        a.observe(&snap(100, None), 2); // prime
        a.observe(&snap(100, None), 2); // idle 1
        a.observe(&snap(100, None), 2); // idle 2
        // Progress: the streak must restart, so two more idle
        // observations still hold.
        assert_eq!(a.observe(&snap(200, None), 2), ScaleDecision::Hold);
        assert_eq!(a.observe(&snap(200, None), 2), ScaleDecision::Hold);
        assert_eq!(a.observe(&snap(200, None), 2), ScaleDecision::Hold);
        assert_eq!(a.observe(&snap(200, None), 2), ScaleDecision::Shrink);
    }
}
