//! Client-facing API types and their wire encodings.
//!
//! Events, aggregation replies and operational requests all travel through
//! the messaging layer as opaque payloads; this module defines those
//! payloads. Everything is hand-rolled binary over the shared encode
//! primitives (see DESIGN.md's dependency policy).

use bytes::{Buf, BufMut};
use railgun_types::encode::{
    get_event, get_string, get_uvarint, put_bytes, put_event, put_uvarint,
};
use railgun_types::{Event, FieldDef, FieldType, RailgunError, Result, Schema, Value};

/// Version byte leading every [`OpRequest`] and [`Reply`] payload.
///
/// Wire version 2 introduced query lifecycle ids: `RegisterQuery` carries
/// a [`QueryId`], `UnregisterQuery` exists, and reply aggregations are
/// keyed by `(QueryId, aggregation index)`. Wire version 3 extends the
/// query grammar with the sketch-backed approximate family
/// (`countDistinct … approx`, `topK`, `percentile`): `RegisterQuery`
/// still carries text, but v3 text can name aggregations older nodes
/// cannot parse, so mixed-version replay of the ops topic must fail
/// loudly rather than half-apply. The byte value (`0xA3` = `0xA0 | 3`)
/// is deliberately outside the version-1 op-tag range (v1 ops started
/// directly with a tag, `1..=3`), so **every** v1 op — and any v2
/// payload with its `0xA2` lead byte — fails the version check with a
/// [`RailgunError::Corruption`] naming the mismatch; the ops topic is
/// the durable, replayed channel, and no old op can silently misdecode.
/// Replies are transient (produced and consumed by the same build over
/// the in-process bus, never replayed across an upgrade), so their
/// version byte is a sanity check rather than a cross-version
/// guarantee: an old reply whose leading `uvarint(request_id)` byte
/// happened to be `0xA3` would pass it.
pub const WIRE_VERSION: u8 = 0xA3;

/// Stable identifier of a registered query.
///
/// Assigned by the front-end that accepts the registration
/// (`front-end id << 32 | sequence`), broadcast with the query on the ops
/// topic, and used to address its aggregations in replies and to
/// unregister it later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u64);

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{:x}", self.0)
    }
}

/// An event wrapped with routing info, as published to event topics.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRequest {
    /// Correlates replies at the front-end (§3.1, steps 4-6).
    pub request_id: u64,
    /// Reply topic of the originating front-end node.
    pub reply_topic: String,
    pub event: Event,
}

/// One computed aggregation in a reply, addressed by
/// `(query, index)` — the registered query it belongs to and the
/// position of the aggregation in that query's SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregationResult {
    /// The registered query this value belongs to.
    pub query: QueryId,
    /// Index of the aggregation in the query's SELECT list.
    pub index: u32,
    /// Display name, e.g. `sum(amount) over sliding 5min`.
    pub name: String,
    /// The entity this value belongs to (group-by values of the event).
    pub entity: Vec<Value>,
    /// Current aggregation value.
    pub value: Value,
}

/// Find the aggregation keyed `(query, index)` in a result list.
///
/// Each `(query, index)` pair appears at most once per assembled client
/// response: a query's metrics are computed on exactly one event topic,
/// and only the active task of that topic replies.
pub fn find_keyed(
    results: &[AggregationResult],
    query: QueryId,
    index: usize,
) -> Option<&AggregationResult> {
    results
        .iter()
        .find(|r| r.query == query && r.index as usize == index)
}

/// A task processor's answer for one event (sent to the reply topic).
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    pub request_id: u64,
    /// The event topic that produced this reply — the front-end counts one
    /// reply per routed topic before answering the client.
    pub source_topic: String,
    /// True iff the event was deduplicated (§3.3); values are still the
    /// current aggregations.
    pub duplicate: bool,
    pub results: Vec<AggregationResult>,
}

/// Operational request broadcast on the ops topic (§3.1, §3.3).
#[derive(Debug, Clone, PartialEq)]
pub enum OpRequest {
    /// Register a stream: creates one topic per partitioner.
    CreateStream {
        stream: String,
        schema: Schema,
        partitioners: Vec<String>,
        partitions: u32,
    },
    /// Remove a stream and its metrics.
    DeleteStream { stream: String },
    /// Register the metrics of a query under a stable id (text form;
    /// parsed at each node).
    RegisterQuery { id: QueryId, query_text: String },
    /// Remove a registered query's metrics: its aggregations disappear
    /// from replies and its aggregator state and window cursors are torn
    /// down on every task.
    UnregisterQuery { id: QueryId },
}

/// Topic name for a (stream, partitioner) pair.
pub fn topic_name(stream: &str, partitioner: &str) -> String {
    format!("{stream}--{partitioner}")
}

/// Split a topic name back into (stream, partitioner).
pub fn parse_topic_name(topic: &str) -> Option<(&str, &str)> {
    topic.split_once("--")
}

/// Validate a stream or partitioner name before it becomes part of a
/// topic name. Empty names and names containing the `--` topic separator
/// are rejected — [`parse_topic_name`] splits at the *first* `--`, so a
/// stream named `a--b` would silently mis-split into `("a", "b--…")`.
pub fn validate_topic_component(kind: &str, name: &str) -> Result<()> {
    if name.is_empty() {
        return Err(RailgunError::InvalidArgument(format!(
            "{kind} name must not be empty"
        )));
    }
    if name.contains("--") {
        return Err(RailgunError::InvalidArgument(format!(
            "{kind} name `{name}` must not contain `--` (reserved as the topic separator)"
        )));
    }
    Ok(())
}

/// Reply topic for a front-end node.
pub fn reply_topic_name(node: u32) -> String {
    format!("railgun-reply-{node}")
}

/// The single operational topic.
pub const OPS_TOPIC: &str = "railgun-ops";
/// Topic recording (task, offset) checkpoints (§4.1.3).
pub const CHECKPOINT_TOPIC: &str = "railgun-checkpoints";

// ---------------------------------------------------------------------------
// Encodings
// ---------------------------------------------------------------------------

/// Encode an [`EventRequest`].
pub fn encode_event_request(req: &EventRequest) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    encode_event_request_into(&mut buf, req);
    buf
}

/// Encode an [`EventRequest`] by appending to `buf` — the batched ingest
/// path encodes every event of a batch once into one shared frame buffer
/// and publishes zero-copy slices of it.
pub fn encode_event_request_into(buf: &mut Vec<u8>, req: &EventRequest) {
    put_uvarint(buf, req.request_id);
    put_bytes(buf, req.reply_topic.as_bytes());
    put_event(buf, &req.event);
}

/// Decode an [`EventRequest`].
pub fn decode_event_request(mut buf: &[u8]) -> Result<EventRequest> {
    let request_id = get_uvarint(&mut buf)?;
    let reply_topic = get_string(&mut buf)?;
    let event = get_event(&mut buf)?;
    Ok(EventRequest {
        request_id,
        reply_topic,
        event,
    })
}

fn check_version(buf: &mut &[u8], what: &str) -> Result<()> {
    if !buf.has_remaining() {
        return Err(RailgunError::Corruption(format!("empty {what}")));
    }
    let v = buf.get_u8();
    if v != WIRE_VERSION {
        return Err(RailgunError::Corruption(format!(
            "unsupported {what} wire version {v} (expected {WIRE_VERSION})"
        )));
    }
    Ok(())
}

/// Encode a [`Reply`].
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    encode_reply_into(&mut buf, reply);
    buf
}

/// Encode a [`Reply`] by appending to `buf` — processor units stage the
/// replies of one pump into a shared frame per reply topic and publish
/// them as one batch.
pub fn encode_reply_into(buf: &mut Vec<u8>, reply: &Reply) {
    buf.put_u8(WIRE_VERSION);
    put_uvarint(buf, reply.request_id);
    put_bytes(buf, reply.source_topic.as_bytes());
    buf.put_u8(u8::from(reply.duplicate));
    put_uvarint(buf, reply.results.len() as u64);
    for r in &reply.results {
        put_uvarint(buf, r.query.0);
        put_uvarint(buf, u64::from(r.index));
        put_bytes(buf, r.name.as_bytes());
        put_uvarint(buf, r.entity.len() as u64);
        for v in &r.entity {
            railgun_types::encode::put_value(buf, v);
        }
        railgun_types::encode::put_value(buf, &r.value);
    }
}

/// Decode a [`Reply`].
pub fn decode_reply(mut buf: &[u8]) -> Result<Reply> {
    check_version(&mut buf, "reply")?;
    let request_id = get_uvarint(&mut buf)?;
    let source_topic = get_string(&mut buf)?;
    if !buf.has_remaining() {
        return Err(RailgunError::Corruption("truncated reply".into()));
    }
    let duplicate = buf.get_u8() != 0;
    let n = get_uvarint(&mut buf)? as usize;
    let mut results = Vec::with_capacity(n);
    for _ in 0..n {
        let query = QueryId(get_uvarint(&mut buf)?);
        let index = get_uvarint(&mut buf)? as u32;
        let name = get_string(&mut buf)?;
        let ne = get_uvarint(&mut buf)? as usize;
        let mut entity = Vec::with_capacity(ne);
        for _ in 0..ne {
            entity.push(railgun_types::encode::get_value(&mut buf)?);
        }
        let value = railgun_types::encode::get_value(&mut buf)?;
        results.push(AggregationResult {
            query,
            index,
            name,
            entity,
            value,
        });
    }
    Ok(Reply {
        request_id,
        source_topic,
        duplicate,
        results,
    })
}

const OP_CREATE_STREAM: u8 = 1;
const OP_DELETE_STREAM: u8 = 2;
const OP_REGISTER_QUERY: u8 = 3;
const OP_UNREGISTER_QUERY: u8 = 4;

fn encode_field_type(t: FieldType) -> u8 {
    match t {
        FieldType::Bool => 0,
        FieldType::Int => 1,
        FieldType::Float => 2,
        FieldType::Str => 3,
    }
}

fn decode_field_type(b: u8) -> Result<FieldType> {
    match b {
        0 => Ok(FieldType::Bool),
        1 => Ok(FieldType::Int),
        2 => Ok(FieldType::Float),
        3 => Ok(FieldType::Str),
        other => Err(RailgunError::Corruption(format!(
            "unknown field type {other}"
        ))),
    }
}

/// Encode an [`OpRequest`].
pub fn encode_op(op: &OpRequest) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.put_u8(WIRE_VERSION);
    match op {
        OpRequest::CreateStream {
            stream,
            schema,
            partitioners,
            partitions,
        } => {
            buf.put_u8(OP_CREATE_STREAM);
            put_bytes(&mut buf, stream.as_bytes());
            put_uvarint(&mut buf, schema.fields().len() as u64);
            for f in schema.fields() {
                put_bytes(&mut buf, f.name.as_bytes());
                buf.put_u8(encode_field_type(f.ty));
            }
            put_uvarint(&mut buf, partitioners.len() as u64);
            for p in partitioners {
                put_bytes(&mut buf, p.as_bytes());
            }
            put_uvarint(&mut buf, u64::from(*partitions));
        }
        OpRequest::DeleteStream { stream } => {
            buf.put_u8(OP_DELETE_STREAM);
            put_bytes(&mut buf, stream.as_bytes());
        }
        OpRequest::RegisterQuery { id, query_text } => {
            buf.put_u8(OP_REGISTER_QUERY);
            put_uvarint(&mut buf, id.0);
            put_bytes(&mut buf, query_text.as_bytes());
        }
        OpRequest::UnregisterQuery { id } => {
            buf.put_u8(OP_UNREGISTER_QUERY);
            put_uvarint(&mut buf, id.0);
        }
    }
    buf
}

/// Decode an [`OpRequest`].
pub fn decode_op(mut buf: &[u8]) -> Result<OpRequest> {
    check_version(&mut buf, "op")?;
    if !buf.has_remaining() {
        return Err(RailgunError::Corruption("truncated op".into()));
    }
    match buf.get_u8() {
        OP_CREATE_STREAM => {
            let stream = get_string(&mut buf)?;
            let nf = get_uvarint(&mut buf)? as usize;
            let mut fields = Vec::with_capacity(nf);
            for _ in 0..nf {
                let name = get_string(&mut buf)?;
                if !buf.has_remaining() {
                    return Err(RailgunError::Corruption("truncated schema".into()));
                }
                let ty = decode_field_type(buf.get_u8())?;
                fields.push(FieldDef::new(name, ty));
            }
            let np = get_uvarint(&mut buf)? as usize;
            let mut partitioners = Vec::with_capacity(np);
            for _ in 0..np {
                partitioners.push(get_string(&mut buf)?);
            }
            let partitions = get_uvarint(&mut buf)? as u32;
            Ok(OpRequest::CreateStream {
                stream,
                schema: Schema::new(fields)?,
                partitioners,
                partitions,
            })
        }
        OP_DELETE_STREAM => Ok(OpRequest::DeleteStream {
            stream: get_string(&mut buf)?,
        }),
        OP_REGISTER_QUERY => Ok(OpRequest::RegisterQuery {
            id: QueryId(get_uvarint(&mut buf)?),
            query_text: get_string(&mut buf)?,
        }),
        OP_UNREGISTER_QUERY => Ok(OpRequest::UnregisterQuery {
            id: QueryId(get_uvarint(&mut buf)?),
        }),
        other => Err(RailgunError::Corruption(format!("unknown op tag {other}"))),
    }
}

/// Checkpoint record payload for the checkpoint topic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointRecord {
    pub topic: String,
    pub partition: u32,
    pub node: u32,
    pub unit: u32,
    /// First offset NOT covered by the checkpoint (replay starts here).
    pub next_offset: u64,
    /// Filesystem location of the checkpoint data.
    pub path: String,
}

/// Encode a [`CheckpointRecord`].
pub fn encode_checkpoint(c: &CheckpointRecord) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    put_bytes(&mut buf, c.topic.as_bytes());
    put_uvarint(&mut buf, u64::from(c.partition));
    put_uvarint(&mut buf, u64::from(c.node));
    put_uvarint(&mut buf, u64::from(c.unit));
    put_uvarint(&mut buf, c.next_offset);
    put_bytes(&mut buf, c.path.as_bytes());
    buf
}

/// Decode a [`CheckpointRecord`].
pub fn decode_checkpoint(mut buf: &[u8]) -> Result<CheckpointRecord> {
    Ok(CheckpointRecord {
        topic: get_string(&mut buf)?,
        partition: get_uvarint(&mut buf)? as u32,
        node: get_uvarint(&mut buf)? as u32,
        unit: get_uvarint(&mut buf)? as u32,
        next_offset: get_uvarint(&mut buf)?,
        path: get_string(&mut buf)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use railgun_types::{EventId, Timestamp};

    #[test]
    fn event_request_roundtrip() {
        let req = EventRequest {
            request_id: 42,
            reply_topic: "railgun-reply-1".into(),
            event: Event::new(
                EventId(7),
                Timestamp::from_millis(123),
                vec![Value::Str("card".into()), Value::Float(9.5)],
            ),
        };
        let buf = encode_event_request(&req);
        assert_eq!(decode_event_request(&buf).unwrap(), req);
    }

    #[test]
    fn reply_roundtrip() {
        let reply = Reply {
            request_id: 9,
            source_topic: "payments--card".into(),
            duplicate: true,
            results: vec![
                AggregationResult {
                    query: QueryId(7),
                    index: 0,
                    name: "sum(amount) over sliding 5min".into(),
                    entity: vec![Value::Str("card-1".into())],
                    value: Value::Float(120.5),
                },
                AggregationResult {
                    query: QueryId(7),
                    index: 1,
                    name: "count(*) over sliding 5min".into(),
                    entity: vec![Value::Str("card-1".into())],
                    value: Value::Int(3),
                },
            ],
        };
        let buf = encode_reply(&reply);
        assert_eq!(decode_reply(&buf).unwrap(), reply);
        assert_eq!(
            find_keyed(&reply.results, QueryId(7), 1).unwrap().value,
            Value::Int(3)
        );
        assert!(find_keyed(&reply.results, QueryId(8), 0).is_none());
        assert!(find_keyed(&reply.results, QueryId(7), 2).is_none());
    }

    #[test]
    fn op_roundtrips() {
        let ops = vec![
            OpRequest::CreateStream {
                stream: "payments".into(),
                schema: Schema::from_pairs(&[
                    ("cardId", FieldType::Str),
                    ("amount", FieldType::Float),
                ])
                .unwrap(),
                partitioners: vec!["cardId".into(), "merchantId".into()],
                partitions: 10,
            },
            OpRequest::DeleteStream {
                stream: "payments".into(),
            },
            OpRequest::RegisterQuery {
                id: QueryId(0x1_0000_0001),
                query_text: "SELECT count(*) FROM payments GROUP BY cardId OVER sliding 5 min"
                    .into(),
            },
            OpRequest::UnregisterQuery {
                id: QueryId(0x1_0000_0001),
            },
        ];
        for op in ops {
            let buf = encode_op(&op);
            assert_eq!(buf[0], WIRE_VERSION, "version byte leads every op");
            assert_eq!(decode_op(&buf).unwrap(), op, "{op:?}");
        }
    }

    #[test]
    fn v1_payloads_rejected_by_version_check() {
        // A version-1 op started directly with the tag byte (1..=3) —
        // all outside the 0xA3 version byte, so every v1 payload fails
        // the version check up front, never silently misdecoding.
        for tag in [1u8, 2, 3] {
            let err = decode_op(&[tag, 4, b'a', b'b', b'c', b'd']).unwrap_err();
            assert!(
                err.to_string().contains("wire version"),
                "tag {tag}: {err}"
            );
        }
        let err = decode_reply(&[1, 0, 0]).unwrap_err();
        assert!(err.to_string().contains("wire version"), "{err}");
    }

    #[test]
    fn v2_payloads_rejected_by_version_check() {
        // Wire v2 led with 0xA2; v3 (the approx-grammar bump) must
        // reject it with Corruption — a v2 node's ops cannot carry the
        // approximate aggregation forms and must not be half-applied.
        let mut v2 = encode_op(&OpRequest::RegisterQuery {
            id: QueryId(7),
            query_text: "SELECT count(*) FROM s OVER infinite".into(),
        });
        v2[0] = 0xA2;
        let err = decode_op(&v2).unwrap_err();
        assert!(
            matches!(err, RailgunError::Corruption(_)),
            "expected Corruption, got {err:?}"
        );
        assert!(err.to_string().contains("wire version"), "{err}");
    }

    #[test]
    fn topic_component_validation() {
        assert!(validate_topic_component("stream", "payments").is_ok());
        assert!(validate_topic_component("stream", "").is_err());
        assert!(validate_topic_component("stream", "pay--ments").is_err());
        assert!(validate_topic_component("partitioner", "card--id").is_err());
    }

    #[test]
    fn checkpoint_roundtrip() {
        let c = CheckpointRecord {
            topic: "payments--card".into(),
            partition: 3,
            node: 1,
            unit: 2,
            next_offset: 777,
            path: "/data/ckpt/1".into(),
        };
        assert_eq!(decode_checkpoint(&encode_checkpoint(&c)).unwrap(), c);
    }

    #[test]
    fn topic_names() {
        assert_eq!(topic_name("payments", "cardId"), "payments--cardId");
        assert_eq!(
            parse_topic_name("payments--cardId"),
            Some(("payments", "cardId"))
        );
        assert_eq!(parse_topic_name("no-separator"), None);
        assert_eq!(reply_topic_name(3), "railgun-reply-3");
    }

    #[test]
    fn corrupt_payloads_rejected() {
        assert!(decode_event_request(&[]).is_err());
        assert!(decode_reply(&[1]).is_err());
        assert!(decode_op(&[]).is_err());
        assert!(decode_op(&[99]).is_err());
    }
}
