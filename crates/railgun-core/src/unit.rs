//! Processor units: Algorithm 1 of the paper.
//!
//! A processor unit owns a set of task processors, all driven by **one
//! logical thread** to avoid context switching and synchronization (§3.2).
//! Each pump iteration (one trip around Algorithm 1's loop):
//!
//! 1. processes operational requests (stream/metric registration),
//! 2. polls the **active** consumer (group-managed, the shared
//!    `railgun-active` group),
//! 3. polls the **replica** consumer (manually assigned),
//! 4. routes every message to its task processor,
//! 5. replies to the reply topic — for active tasks only.
//!
//! The unit is deliberately pump-driven (no internal thread): tests and
//! the simulation drive [`ProcessorUnit::pump`] deterministically, while
//! the threaded runtime (`runtime` module) wraps the same pump in
//! [`ProcessorUnit::run_loop`] — one OS thread per unit, parked on the
//! bus's wakeup path when idle (the paper's one-logical-thread-per-unit
//! discipline, §3.2).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use railgun_messaging::{BatchEntry, Consumer, Message, MessageBus, Producer, TopicPartition};
use railgun_types::encode::BatchFrameBuilder;
use railgun_types::{RailgunError, Result, Schema};

use crate::api::{
    decode_checkpoint, decode_event_request, decode_op, encode_checkpoint, encode_reply_into,
    parse_topic_name, CheckpointRecord, EventRequest, OpRequest, QueryId, Reply,
    CHECKPOINT_TOPIC, OPS_TOPIC,
};
use crate::lang::{parse_query, Query};
use crate::rebalance::{ProcessorIdentity, RailgunStrategy};
use crate::task::{RestoreOutcome, TaskConfig, TaskProcessor};

/// Static configuration of one processor unit.
#[derive(Debug, Clone)]
pub struct UnitConfig {
    pub node: u32,
    pub unit: u32,
    /// Root directory for this unit's task data.
    pub data_dir: PathBuf,
    pub task: TaskConfig,
    /// Max records fetched per consumer per pump.
    pub max_poll: usize,
    /// Checkpoint each task every N processed events (0 disables). The
    /// reservoir and state store are checkpointed together and the (task,
    /// offset) record is published to the checkpoint topic (§4.1.3).
    pub checkpoint_every: u64,
    /// Telemetry: active-consumer poll duration, one sample per pump
    /// (off by default — disabled recorders never read the clock).
    pub poll_recorder: railgun_types::Recorder,
    /// Telemetry: per-run task processing duration — one sample per run
    /// of consecutive same-task messages (off by default).
    pub process_recorder: railgun_types::Recorder,
    /// Telemetry: events per processed run (always on — see
    /// `MetricsSnapshot::batching`).
    pub batch_size: railgun_types::Recorder,
    /// Telemetry: events processed in runs of ≥ 2 (always on).
    pub batched_events: railgun_types::Counter,
    /// Telemetry: gained tasks restored from a checkpoint instead of a
    /// full replay (always on — see `MetricsSnapshot::elastic`).
    pub handovers: railgun_types::Counter,
    /// Telemetry: tail events a handover still had to replay (always on).
    pub tail_replayed: railgun_types::Counter,
    /// Telemetry: handovers that found a checkpoint record but degraded
    /// to full replay because the image failed validation (always on).
    pub handover_fallbacks: railgun_types::Counter,
}

/// What happened during one pump.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpReport {
    pub ops_applied: usize,
    pub active_events: usize,
    pub replica_events: usize,
    pub replies_sent: usize,
    pub rebalanced: bool,
    pub checkpoints: usize,
}

#[derive(Debug, Clone)]
struct StreamMeta {
    schema: Schema,
    partitioners: Vec<String>,
}

/// One processor unit (Algorithm 1).
pub struct ProcessorUnit {
    cfg: UnitConfig,
    bus: MessageBus,
    producer: Producer,
    active: Consumer,
    replica: Consumer,
    ops: Consumer,
    /// Tails the checkpoint topic so a rebalance can hand gained tasks a
    /// recent state image instead of a full replay (§4.2 elasticity).
    ckpt: Consumer,
    strategy: Arc<RailgunStrategy>,
    streams: HashMap<String, StreamMeta>,
    /// Registered queries in op-log order, keyed by their stable ids.
    queries: Vec<(QueryId, Query)>,
    tasks: HashMap<TopicPartition, TaskProcessor>,
    /// Next offset to process per task (so promotions replica→active keep
    /// their position instead of replaying).
    task_offsets: HashMap<TopicPartition, u64>,
    active_assignment: Vec<TopicPartition>,
    replica_assignment: Vec<TopicPartition>,
    /// Events processed per task since its last checkpoint.
    since_checkpoint: HashMap<TopicPartition, u64>,
    checkpoint_seq: u64,
    /// Latest checkpoint record seen per task (poll order is offset
    /// order, so the last record read wins). Consulted when a rebalance
    /// gains a task: restore from here, replay only the tail.
    checkpoints: HashMap<TopicPartition, CheckpointRecord>,
    /// Reusable poll scratch — the pump fetches into this instead of
    /// allocating a fresh `Vec` per consumer per iteration.
    scratch: Vec<Message>,
    /// Reusable decode scratch: one run's event requests.
    decoded: Vec<EventRequest>,
    /// Replies staged per reply topic during a pump, each encoded once
    /// into that topic's shared frame and flushed as one batch
    /// ([`ProcessorUnit::flush_replies`]). Slots persist across pumps so
    /// their buffers are reused.
    reply_stage: Vec<(String, BatchFrameBuilder)>,
    /// Reusable scratch for building `send_batch` entries at flush.
    reply_entries: Vec<BatchEntry>,
}

/// Consumer group shared by every active consumer (§3.3).
pub const ACTIVE_GROUP: &str = "railgun-active";

impl ProcessorUnit {
    /// Create a unit and join the active consumer group for all event
    /// topics of all (current and future) streams.
    pub fn new(bus: &MessageBus, cfg: UnitConfig, strategy: Arc<RailgunStrategy>) -> Result<Self> {
        let producer = Producer::new(bus.clone());
        let active = Consumer::new(bus.clone());
        let replica = Consumer::new(bus.clone());
        let mut ops = Consumer::new(bus.clone());
        ops.assign(vec![TopicPartition::new(OPS_TOPIC, 0)]);
        // The checkpoint topic may not exist yet (the front-end creates
        // it); a manually assigned consumer simply skips missing topics.
        let mut ckpt = Consumer::new(bus.clone());
        ckpt.assign(vec![TopicPartition::new(CHECKPOINT_TOPIC, 0)]);
        Ok(ProcessorUnit {
            cfg,
            bus: bus.clone(),
            producer,
            active,
            replica,
            ops,
            ckpt,
            strategy,
            streams: HashMap::new(),
            queries: Vec::new(),
            tasks: HashMap::new(),
            task_offsets: HashMap::new(),
            active_assignment: Vec::new(),
            replica_assignment: Vec::new(),
            since_checkpoint: HashMap::new(),
            checkpoint_seq: 0,
            checkpoints: HashMap::new(),
            scratch: Vec::new(),
            decoded: Vec::new(),
            reply_stage: Vec::new(),
            reply_entries: Vec::new(),
        })
    }

    /// This unit's identity (metadata for the assignment strategy).
    pub fn identity(&self) -> ProcessorIdentity {
        ProcessorIdentity {
            node: self.cfg.node,
            unit: self.cfg.unit,
        }
    }

    /// The member id of the active consumer (for strategy queries).
    pub fn member_id(&self) -> railgun_messaging::MemberId {
        self.active.member_id()
    }

    /// (Re)subscribe the active consumer to all known event topics.
    fn resubscribe(&mut self) -> Result<()> {
        let topics: Vec<String> = self
            .streams
            .iter()
            .flat_map(|(stream, meta)| {
                meta.partitioners
                    .iter()
                    .map(move |p| crate::api::topic_name(stream, p))
            })
            .collect();
        if topics.is_empty() {
            return Ok(());
        }
        let refs: Vec<&str> = topics.iter().map(String::as_str).collect();
        self.active.subscribe(
            ACTIVE_GROUP,
            &refs,
            self.identity().encode(),
            Arc::clone(&self.strategy) as Arc<dyn railgun_messaging::AssignmentStrategy>,
        )
    }

    /// One trip around Algorithm 1's loop.
    pub fn pump(&mut self) -> Result<PumpReport> {
        let mut report = PumpReport::default();
        // The scratch buffer is moved out for the duration of the pump so
        // it can be filled while `self` methods are called; it returns at
        // the end (error paths simply rebuild capacity on the next pump).
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();

        // 1. Operational requests.
        self.ops.poll_into(self.cfg.max_poll, &mut buf)?;
        for msg in buf.drain(..) {
            let op = decode_op(&msg.payload)?;
            self.apply_op(op)?;
            report.ops_applied += 1;
        }

        // 2. Active tasks.
        let poll_timer = self.cfg.poll_recorder.start();
        let polled = self.active.poll_into(self.cfg.max_poll, &mut buf);
        self.cfg.poll_recorder.finish(poll_timer);
        let rebalanced = match polled {
            Ok(r) => r,
            Err(RailgunError::Messaging(_)) => {
                // Expelled after a heartbeat lapse — rejoin the group (the
                // same recovery a Kafka client performs on session expiry).
                self.resubscribe()?;
                return Ok(report);
            }
            Err(e) => return Err(e),
        };
        if let Some(assignment) = rebalanced {
            report.rebalanced = true;
            // Messages fetched in the same poll may predate the seek —
            // drop them; the repositioned consumer re-reads next pump.
            buf.clear();
            self.on_rebalance(assignment)?;
        } else {
            let (events, staged) = self.process_runs(&buf)?;
            buf.clear();
            report.active_events += events;
            report.replies_sent += staged;
        }
        // Replies of every active run in this pump go out now, one batch
        // (one bus hop, one wakeup) per reply topic.
        self.flush_replies()?;

        // 3. Replica tasks (no replies, §4.2).
        self.replica.poll_into(self.cfg.max_poll, &mut buf)?;
        let (events, _) = self.process_runs(&buf)?;
        buf.clear();
        report.replica_events += events;
        self.scratch = buf;

        // 4. Periodic synchronized checkpoints (§4.1.3).
        if self.cfg.checkpoint_every > 0 {
            report.checkpoints += self.maybe_checkpoint()?;
        }
        Ok(report)
    }

    /// Drive the pump until `stop` is raised: the body of one worker
    /// thread in the threaded runtime. After an idle pump (no ops, no
    /// events, no rebalance) the thread parks on the bus wakeup path
    /// instead of spinning; it still wakes at a heartbeat interval so
    /// group membership cannot lapse while parked. The bus version is
    /// sampled *before* the pump, so anything produced mid-pump re-runs
    /// the loop immediately instead of being missed.
    pub fn run_loop(&mut self, stop: &AtomicBool) -> Result<()> {
        let heartbeat =
            Duration::from_millis((self.bus.session_timeout_ms() / 4).clamp(1, 500));
        while !stop.load(Ordering::Acquire) {
            let seen = self.bus.version();
            let report = self.pump()?;
            let idle = report.ops_applied == 0
                && report.active_events == 0
                && report.replica_events == 0
                && !report.rebalanced;
            if idle {
                self.bus.wait_for_activity(seen, heartbeat);
            }
        }
        Ok(())
    }

    /// Checkpoint every task whose event count passed the threshold and
    /// publish its (task, offset) record to the checkpoint topic.
    fn maybe_checkpoint(&mut self) -> Result<usize> {
        let due: Vec<TopicPartition> = self
            .since_checkpoint
            .iter()
            .filter(|(_, n)| **n >= self.cfg.checkpoint_every)
            .map(|(tp, _)| tp.clone())
            .collect();
        let mut done = 0;
        for tp in due {
            if self.checkpoint_task(&tp)? {
                done += 1;
            }
        }
        Ok(done)
    }

    /// Checkpoint one task now: write the image, publish its (task,
    /// offset, path) record, and commit the image-backed offset to the
    /// group coordinator (introspection only — rebalances always seek
    /// explicitly). Returns `false` for an unknown task.
    fn checkpoint_task(&mut self, tp: &TopicPartition) -> Result<bool> {
        let Some(task) = self.tasks.get(tp) else {
            return Ok(false);
        };
        self.checkpoint_seq += 1;
        let dir = self.cfg.data_dir.join(format!(
            "ckpt/node{}-unit{}/{}-{}-{}",
            self.cfg.node, self.cfg.unit, tp.topic, tp.partition, self.checkpoint_seq
        ));
        task.checkpoint(&dir)?;
        let next_offset = self.task_offsets.get(tp).copied().unwrap_or(0);
        let record = CheckpointRecord {
            topic: tp.topic.clone(),
            partition: tp.partition,
            node: self.cfg.node,
            unit: self.cfg.unit,
            next_offset,
            path: dir.to_string_lossy().into_owned(),
        };
        self.producer
            .send(CHECKPOINT_TOPIC, tp.to_string().as_bytes(), encode_checkpoint(&record))
            .ok(); // checkpoint topic may not exist in minimal setups
        self.active.commit(tp, next_offset).ok();
        self.since_checkpoint.insert(tp.clone(), 0);
        Ok(true)
    }

    /// Flush a final checkpoint of every task with progress past its last
    /// image: the unit half of the scheduled-drain protocol. The images
    /// published here are what the surviving units restore from, so the
    /// handover tail is only what arrives mid-drain. Forced — works even
    /// when periodic checkpoints are disabled. The caller
    /// ([`Node::drain_units`](crate::node::Node::drain_units)) flushes
    /// **every** unit before any unit leaves the group, so the rebalance
    /// a departure triggers never hands a survivor a stale image.
    /// Returns the number of images flushed.
    pub fn drain(&mut self) -> Result<usize> {
        let dirty: Vec<TopicPartition> = self
            .since_checkpoint
            .iter()
            .filter(|(_, n)| **n > 0)
            .map(|(tp, _)| tp.clone())
            .collect();
        let mut flushed = 0;
        for tp in dirty {
            if self.checkpoint_task(&tp)? {
                flushed += 1;
            }
        }
        Ok(flushed)
    }

    /// Drain the checkpoint topic into the per-task record cache (the
    /// consumer keeps its position, so each call reads only new records).
    fn refresh_checkpoints(&mut self) {
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();
        loop {
            if self.ckpt.poll_into(self.cfg.max_poll.max(64), &mut buf).is_err()
                || buf.is_empty()
            {
                break;
            }
            for msg in buf.drain(..) {
                if let Ok(rec) = decode_checkpoint(&msg.payload) {
                    let tp = TopicPartition::new(rec.topic.clone(), rec.partition);
                    self.checkpoints.insert(tp, rec);
                }
            }
        }
        self.scratch = buf;
    }

    fn apply_op(&mut self, op: OpRequest) -> Result<()> {
        match op {
            OpRequest::CreateStream {
                stream,
                schema,
                partitioners,
                ..
            } => {
                self.streams.insert(
                    stream,
                    StreamMeta {
                        schema,
                        partitioners,
                    },
                );
                self.resubscribe()?;
            }
            OpRequest::DeleteStream { stream } => {
                self.streams.remove(&stream);
                let not_of_stream = |tp: &TopicPartition| {
                    parse_topic_name(&tp.topic).map(|(s, _)| s) != Some(stream.as_str())
                };
                self.tasks.retain(|tp, _| not_of_stream(tp));
                // Offsets, checkpoint counters and registered queries die
                // with the stream — a recreated stream of the same name
                // starts a fresh log with no metrics.
                self.task_offsets.retain(|tp, _| not_of_stream(tp));
                self.since_checkpoint.retain(|tp, _| not_of_stream(tp));
                self.active_assignment.retain(not_of_stream);
                self.replica_assignment.retain(not_of_stream);
                self.queries.retain(|(_, q)| q.stream != stream);
                self.resubscribe()?;
            }
            OpRequest::RegisterQuery { id, query_text } => {
                if self.queries.iter().any(|(qid, _)| *qid == id) {
                    return Ok(()); // op-log replay: already registered
                }
                let query = parse_query(&query_text)?;
                let topic = self.query_topic(&query)?;
                for (tp, task) in self.tasks.iter_mut() {
                    if tp.topic == topic {
                        task.register_query_as(id, &query)?;
                    }
                }
                self.queries.push((id, query));
            }
            OpRequest::UnregisterQuery { id } => {
                self.queries.retain(|(qid, _)| *qid != id);
                for task in self.tasks.values_mut() {
                    // No-op on tasks the query never touched.
                    task.unregister_query(id)?;
                }
            }
        }
        Ok(())
    }

    /// The event topic a query's metrics are computed on: the first stream
    /// partitioner contained in the query's GROUP BY (§4 — metrics only
    /// need events hashed by a *subset* of their group-by keys).
    fn query_topic(&self, query: &Query) -> Result<String> {
        let meta = self.streams.get(&query.stream).ok_or_else(|| {
            RailgunError::NotFound(format!("stream `{}`", query.stream))
        })?;
        meta.partitioners
            .iter()
            .find(|p| query.group_by.contains(p))
            .map(|p| crate::api::topic_name(&query.stream, p))
            .ok_or_else(|| {
                RailgunError::InvalidArgument(format!(
                    "query on `{}` groups by {:?}, which contains no stream partitioner {:?} \
                     — accurate distributed metrics need a partitioner in the GROUP BY",
                    query.stream, query.group_by, meta.partitioners
                ))
            })
    }

    fn on_rebalance(&mut self, assignment: Vec<TopicPartition>) -> Result<()> {
        self.active_assignment = assignment;
        // Ask the strategy for this member's replica plan.
        self.replica_assignment = self.strategy.replica_assignment(self.active.member_id());
        // Pull the newest checkpoint records first: a draining peer
        // flushes its images right before the rebalance that moves its
        // tasks here, and those are exactly the ones to restore from.
        self.refresh_checkpoints();
        let all: Vec<TopicPartition> = self
            .active_assignment
            .iter()
            .chain(self.replica_assignment.iter())
            .cloned()
            .collect();
        // Create processors for newly gained tasks. With a checkpoint
        // record the task restores the image and replays only the tail
        // from the recorded offset; without one it replays from 0.
        for tp in &all {
            if !self.tasks.contains_key(tp) {
                let (task, start) = self.acquire_task(tp)?;
                self.tasks.insert(tp.clone(), task);
                self.task_offsets.insert(tp.clone(), start);
            }
        }
        // Drop processors for lost tasks; their on-disk data is wiped on
        // re-gain (fresh replay), but the entry in `task_offsets` is kept
        // only while the processor lives.
        self.tasks.retain(|tp, _| all.contains(tp));
        self.task_offsets.retain(|tp, _| all.contains(tp));
        // Seek both consumers to each task's next offset (promotion keeps
        // position; fresh tasks start at 0 and replay).
        for tp in &self.active_assignment {
            let next = self.task_offsets.get(tp).copied().unwrap_or(0);
            self.active.seek(tp, next);
        }
        self.replica.assign(self.replica_assignment.clone());
        for tp in &self.replica_assignment {
            let next = self.task_offsets.get(tp).copied().unwrap_or(0);
            self.replica.seek(tp, next);
        }
        Ok(())
    }

    /// On-disk home of one task's live state (wiped on re-gain).
    fn task_dir(&self, tp: &TopicPartition) -> PathBuf {
        self.cfg.data_dir.join(format!(
            "node{}-unit{}/{}-{}",
            self.cfg.node, self.cfg.unit, tp.topic, tp.partition
        ))
    }

    /// Schema of the stream a task's topic belongs to.
    fn task_schema(&self, tp: &TopicPartition) -> Result<Schema> {
        let (stream, _) = parse_topic_name(&tp.topic).ok_or_else(|| {
            RailgunError::Engine(format!("malformed topic name `{}`", tp.topic))
        })?;
        self.streams
            .get(stream)
            .map(|meta| meta.schema.clone())
            .ok_or_else(|| RailgunError::NotFound(format!("stream `{stream}`")))
    }

    /// Re-register this unit's queries that compute on `tp`'s topic.
    fn register_task_queries(&self, task: &mut TaskProcessor, tp: &TopicPartition) -> Result<()> {
        for (id, q) in &self.queries {
            if self.query_topic(q)? == tp.topic {
                task.register_query_as(*id, q)?;
            }
        }
        Ok(())
    }

    /// Re-attach this unit's queries to a task restored from a checkpoint
    /// image. Unlike [`ProcessorUnit::register_task_queries`] this must
    /// not backfill: the image's leaf state already covers the restored
    /// history, and the image's reservoir holds (part of) the same events
    /// — backfilling would count them twice
    /// ([`TaskProcessor::reattach_query_as`]).
    fn reattach_task_queries(&self, task: &mut TaskProcessor, tp: &TopicPartition) -> Result<()> {
        for (id, q) in &self.queries {
            if self.query_topic(q)? == tp.topic {
                task.reattach_query_as(*id, q)?;
            }
        }
        Ok(())
    }

    fn create_task(&self, tp: &TopicPartition) -> Result<TaskProcessor> {
        let schema = self.task_schema(tp)?;
        let dir = self.task_dir(tp);
        // Fresh replay from offset 0 is the recovery mechanism in the
        // in-process pipeline (checkpoint-based recovery is exercised at
        // the TaskProcessor level); wipe leftovers.
        std::fs::remove_dir_all(&dir).ok();
        let mut task = TaskProcessor::open(
            &dir,
            &tp.topic,
            tp.partition,
            schema,
            self.cfg.task.clone(),
        )?;
        self.register_task_queries(&mut task, tp)?;
        Ok(task)
    }

    /// Build the processor for a task gained in a rebalance. With a cached
    /// checkpoint record the state image is restored through the
    /// validating [`TaskProcessor::restore_or_replay`] path and the
    /// record's `next_offset` is returned, so the caller replays only the
    /// tail; a record whose image fails validation degrades to a full
    /// replay from 0 (counted as a handover fallback — distinct from a
    /// cold boot with no record at all, which is the normal first-start
    /// path and counts as neither).
    fn acquire_task(&self, tp: &TopicPartition) -> Result<(TaskProcessor, u64)> {
        let Some(rec) = self.checkpoints.get(tp) else {
            return Ok((self.create_task(tp)?, 0));
        };
        let schema = self.task_schema(tp)?;
        let dir = self.task_dir(tp);
        std::fs::remove_dir_all(&dir).ok();
        let (mut task, outcome) = TaskProcessor::restore_or_replay(
            std::path::Path::new(&rec.path),
            &dir,
            &tp.topic,
            tp.partition,
            schema,
            self.cfg.task.clone(),
        )?;
        match outcome {
            RestoreOutcome::FromCheckpoint => {
                self.reattach_task_queries(&mut task, tp)?;
                self.cfg.handovers.incr();
                let end = self.bus.end_offset(tp).unwrap_or(rec.next_offset);
                self.cfg
                    .tail_replayed
                    .add(end.saturating_sub(rec.next_offset));
                Ok((task, rec.next_offset))
            }
            RestoreOutcome::FullReplay => {
                self.register_task_queries(&mut task, tp)?;
                self.cfg.handover_fallbacks.incr();
                Ok((task, 0))
            }
        }
    }

    /// Group one poll's messages into runs of consecutive same-task
    /// records and process each run in a single pass. Per-partition order
    /// is exactly the poll order, so this is byte-identical to the old
    /// message-at-a-time loop. Returns `(events processed, replies
    /// staged)`.
    fn process_runs(&mut self, buf: &[Message]) -> Result<(usize, usize)> {
        let mut events = 0;
        let mut staged = 0;
        let mut i = 0;
        while i < buf.len() {
            let tp = buf[i].topic_partition();
            let mut j = i + 1;
            while j < buf.len()
                && buf[j].partition == tp.partition
                && buf[j].topic == tp.topic
            {
                j += 1;
            }
            let timer = self.cfg.process_recorder.start();
            let run = self.process_run(&tp, &buf[i..j]);
            self.cfg.process_recorder.finish(timer);
            staged += run?;
            events += j - i;
            i = j;
        }
        Ok((events, staged))
    }

    /// Process one run of consecutive messages of one task: the decode
    /// scratch is reused across runs, the offset and checkpoint counters
    /// are updated once per run, and replies of active tasks are staged
    /// into the per-reply-topic frame (flushed by
    /// [`ProcessorUnit::flush_replies`]). Returns replies staged.
    fn process_run(&mut self, tp: &TopicPartition, msgs: &[Message]) -> Result<usize> {
        let Some(task) = self.tasks.get_mut(tp) else {
            return Ok(0); // not ours (stale fetch across rebalance)
        };
        let mut decoded = std::mem::take(&mut self.decoded);
        decoded.clear();
        for msg in msgs {
            decoded.push(decode_event_request(&msg.payload)?);
        }
        let active = self.active_assignment.contains(tp);
        let mut stage = std::mem::take(&mut self.reply_stage);
        let mut staged = 0usize;
        let result = task.process_batch(
            decoded.iter().map(|r| &r.event),
            |idx, results, duplicate| {
                if !active {
                    return;
                }
                let req = &decoded[idx];
                let reply = Reply {
                    request_id: req.request_id,
                    source_topic: tp.topic.clone(),
                    duplicate,
                    results,
                };
                let slot = match stage.iter().position(|(t, _)| *t == req.reply_topic) {
                    Some(s) => s,
                    None => {
                        stage.push((req.reply_topic.clone(), BatchFrameBuilder::new()));
                        stage.len() - 1
                    }
                };
                stage[slot].1.push_with(|buf| encode_reply_into(buf, &reply));
                staged += 1;
            },
        );
        self.reply_stage = stage;
        self.decoded = decoded;
        result?;
        let n = msgs.len() as u64;
        self.cfg.batch_size.record(n);
        if n >= 2 {
            self.cfg.batched_events.add(n);
        }
        self.task_offsets
            .insert(tp.clone(), msgs.last().expect("runs are non-empty").offset + 1);
        *self.since_checkpoint.entry(tp.clone()).or_insert(0) += n;
        Ok(staged)
    }

    /// Publish every staged reply: one `send_batch` per reply topic
    /// (reply topics are single-partition; keys are unused), each payload
    /// a zero-copy slice of that topic's shared frame.
    fn flush_replies(&mut self) -> Result<()> {
        for (topic, frame) in &mut self.reply_stage {
            if frame.is_empty() {
                continue;
            }
            let frame = frame.finish();
            self.reply_entries.extend(frame.iter().map(|payload| BatchEntry {
                partition: 0,
                key: Vec::new(),
                payload,
            }));
            if let Err(e) = self.producer.send_batch(topic, &mut self.reply_entries) {
                self.reply_entries.clear();
                return Err(e);
            }
        }
        Ok(())
    }

    /// Registered queries, in op-log order (diagnostics).
    pub fn queries(&self) -> &[(QueryId, Query)] {
        &self.queries
    }

    /// Current active tasks.
    pub fn active_tasks(&self) -> &[TopicPartition] {
        &self.active_assignment
    }

    /// Current replica tasks.
    pub fn replica_tasks(&self) -> &[TopicPartition] {
        &self.replica_assignment
    }

    /// Access a task processor (diagnostics/benches).
    pub fn task(&self, tp: &TopicPartition) -> Option<&TaskProcessor> {
        self.tasks.get(tp)
    }

    /// Leave the consumer group gracefully.
    pub fn shutdown(&mut self) {
        self.active.unsubscribe();
        self.replica.assign(Vec::new());
    }
}
