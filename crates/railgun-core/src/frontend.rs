//! The front-end layer (paper §3.1).
//!
//! The front-end is the client's entry point: it registers streams and
//! metrics, routes every incoming event to **all of its partitioner
//! topics** (step 2 of Figure 3), collects the per-topic aggregation
//! replies from its dedicated reply topic (steps 4-5), and assembles the
//! single response returned to the client (step 6).
//!
//! Requests are fully pipelined: [`FrontEnd::send_event`] registers the
//! request in an in-flight correlation table and returns immediately, so
//! one client can keep many requests outstanding; completed responses
//! accumulate keyed by request id and are claimed with
//! [`FrontEnd::try_take`]. The table is bounded (`max_in_flight`) —
//! exceeding it fails with [`RailgunError::Backpressure`] until the
//! caller collects, which is what keeps a fast producer from flooding the
//! bus under MAD load.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use railgun_messaging::{
    partition_for_key, BatchEntry, Consumer, MessageBus, Producer, TopicPartition,
};
use railgun_types::encode::{put_value, BatchFrameBuilder};
use railgun_types::{Event, EventId, RailgunError, Result, Schema, Timestamp, Value};

use crate::api::{
    decode_op, decode_reply, encode_event_request_into, encode_op, find_keyed,
    reply_topic_name, topic_name, validate_topic_component, AggregationResult, EventRequest,
    OpRequest, QueryId, CHECKPOINT_TOPIC, OPS_TOPIC,
};
use crate::lang::{parse_query, Query};
use crate::metrics::{EngineTelemetry, QueryTelemetry, SLO_OVERLOAD_MULTIPLIER};

/// A completed client response: every routed topic has replied.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientResponse {
    pub request_id: u64,
    /// Aggregations from every topic the event was routed to, in leaf
    /// order per topic, each keyed by `(query, index)`.
    pub aggregations: Vec<AggregationResult>,
    /// True iff any task reported the event as a duplicate.
    pub duplicate: bool,
}

impl ClientResponse {
    /// The aggregation keyed `(query, index)`, if the reply carries it.
    pub fn get(&self, query: QueryId, index: usize) -> Option<&AggregationResult> {
        find_keyed(&self.aggregations, query, index)
    }

    /// The value keyed `(query, index)` as an `f64` (ints widen).
    pub fn get_f64(&self, query: QueryId, index: usize) -> Option<f64> {
        self.get(query, index).and_then(|a| a.value.as_f64())
    }

    /// The value keyed `(query, index)` as an `i64`.
    pub fn get_i64(&self, query: QueryId, index: usize) -> Option<i64> {
        self.get(query, index).and_then(|a| a.value.as_i64())
    }

    /// The value keyed `(query, index)` as a string slice.
    pub fn get_str(&self, query: QueryId, index: usize) -> Option<&str> {
        self.get(query, index).and_then(|a| a.value.as_str())
    }

    /// The value keyed `(query, index)` as a bool.
    pub fn get_bool(&self, query: QueryId, index: usize) -> Option<bool> {
        self.get(query, index).and_then(|a| a.value.as_bool())
    }
}

/// A query registration known to a front-end (its own or replicated from
/// the ops topic).
#[derive(Debug, Clone, PartialEq)]
pub struct RegisteredQuery {
    pub id: QueryId,
    pub text: String,
    pub query: Query,
}

/// Front-end ingest coalescing knobs (see DESIGN.md § "Batched ingest").
///
/// Staged events are flushed to the bus as one batch per topic when any
/// of these holds: `max_events` are staged, the oldest staged event is
/// `max_delay` old, every in-flight request is still staged (nothing is
/// being processed downstream, so holding adds pure latency — this is
/// what keeps closed-loop latency unregressed), or the front-end pumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush once this many events are staged.
    pub max_events: usize,
    /// Flush once the oldest staged event is this old (only reached in
    /// threaded mode — pump-mode front-ends flush every pump).
    pub max_delay: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_events: 64,
            max_delay: Duration::from_micros(200),
        }
    }
}

#[derive(Debug, Clone)]
struct StreamMeta {
    schema: Schema,
    partitioners: Vec<String>,
    partitioner_indexes: Vec<usize>,
    /// Partitioner topic names, precomputed (one per partitioner).
    topics: Vec<String>,
    /// Partition count of every partitioner topic of the stream.
    partitions: u32,
}

/// Per-topic staging of one ingest batch: which frame records go to
/// which partition of this topic. Slots persist across flushes so their
/// allocations are reused.
struct StagedTopic {
    topic: String,
    /// `(partition, key, frame record index)` per staged event.
    records: Vec<(u32, Vec<u8>, usize)>,
}

struct Pending {
    expected: usize,
    received: usize,
    aggregations: Vec<AggregationResult>,
    duplicate: bool,
    /// Send time, taken only when the telemetry plane wants request
    /// timing (stage telemetry on, or an SLO registered) — `None`
    /// otherwise, so the off state never reads the clock.
    sent_at: Option<Instant>,
}

/// One node's front-end layer.
pub struct FrontEnd {
    node: u32,
    producer: Producer,
    replies: Consumer,
    ops: Consumer,
    streams: HashMap<String, StreamMeta>,
    /// Cluster-wide query registry (kept current via the ops topic).
    queries: HashMap<QueryId, RegisteredQuery>,
    next_request_id: u64,
    next_event_seq: u64,
    /// Sequence for locally-assigned query ids
    /// (`node << 32 | next_query_seq`).
    next_query_seq: u32,
    /// In-flight correlation table: request id → partially-assembled
    /// response (bounded by `max_in_flight`).
    pending: HashMap<u64, Pending>,
    /// Completed responses awaiting collection, by request id.
    completed: HashMap<u64, ClientResponse>,
    /// In-flight cap: `send_event` refuses new requests past this.
    max_in_flight: usize,
    /// The cluster's telemetry hub (disabled hub when telemetry is off).
    telemetry: Arc<EngineTelemetry>,
    /// Per-front-end cache of the hub's per-query entries, so recording
    /// a completion does not take the hub's registry lock in steady
    /// state (entries are shared `Arc`s; SLO updates still apply).
    query_telemetry: railgun_types::FastHashMap<QueryId, Arc<QueryTelemetry>>,
    /// Send times of timed in-flight requests, in send order — the
    /// overload policy reads the (lazily pruned) front for the oldest
    /// outstanding request's age. Empty while request timing is off.
    inflight_ages: VecDeque<(u64, Instant)>,
    /// Ingest coalescing knobs.
    batch_policy: BatchPolicy,
    /// The shared frame every staged event is encoded into **once**;
    /// flushed slices are zero-copy views of it.
    frame: BatchFrameBuilder,
    /// Per-topic staging, in first-use order (deterministic flush order).
    staged: Vec<StagedTopic>,
    /// Events currently staged (each contributes one frame record).
    staged_events: usize,
    /// When the oldest staged event was staged; `None` while empty (set
    /// lazily, so the flush-every-event closed-loop path never reads the
    /// clock for it).
    staged_since: Option<Instant>,
    /// Reusable scratch for building `send_batch` entries at flush.
    flush_entries: Vec<BatchEntry>,
    /// Per-event key scratch: `(key bytes, partition)` per partitioner,
    /// so identical key bytes hash once per event.
    key_scratch: Vec<(Vec<u8>, u32)>,
    /// Telemetry: events per flushed batch (always on, one sample per
    /// flush).
    batch_size: railgun_types::Recorder,
    /// Telemetry: events published in batches of ≥ 2.
    batched_events: railgun_types::Counter,
}

impl FrontEnd {
    /// Create the front-end of node `node`, creating its reply topic.
    /// `max_in_flight` bounds the in-flight correlation table; `batch`
    /// sets the ingest coalescing policy; `telemetry` is the cluster's
    /// shared recording hub.
    pub fn new(
        bus: &MessageBus,
        node: u32,
        max_in_flight: usize,
        batch: BatchPolicy,
        telemetry: Arc<EngineTelemetry>,
    ) -> Result<Self> {
        let reply_topic = reply_topic_name(node);
        // Idempotent: the topic may survive a front-end restart.
        let _ = bus.create_topic(&reply_topic, 1, 1);
        let _ = bus.create_topic(OPS_TOPIC, 1, 1);
        let _ = bus.create_topic(CHECKPOINT_TOPIC, 1, 1);
        let mut replies = Consumer::new(bus.clone());
        replies.assign(vec![TopicPartition::new(reply_topic, 0)]);
        let mut ops = Consumer::new(bus.clone());
        ops.assign(vec![TopicPartition::new(OPS_TOPIC, 0)]);
        Ok(FrontEnd {
            node,
            producer: Producer::new(bus.clone()),
            replies,
            ops,
            streams: HashMap::new(),
            queries: HashMap::new(),
            next_request_id: 1,
            next_event_seq: 1,
            next_query_seq: 1,
            pending: HashMap::new(),
            completed: HashMap::new(),
            max_in_flight: max_in_flight.max(1),
            batch_size: telemetry.batch_size_recorder(),
            batched_events: telemetry.frontend_batched_counter(),
            telemetry,
            query_telemetry: railgun_types::FastHashMap::default(),
            inflight_ages: VecDeque::new(),
            batch_policy: BatchPolicy {
                max_events: batch.max_events.max(1),
                max_delay: batch.max_delay,
            },
            frame: BatchFrameBuilder::new(),
            staged: Vec::new(),
            staged_events: 0,
            staged_since: None,
            flush_entries: Vec::new(),
            key_scratch: Vec::new(),
        })
    }

    /// Register a stream: creates its partitioner topics and broadcasts the
    /// operational request to every processor unit.
    pub fn create_stream(
        &mut self,
        bus: &MessageBus,
        stream: &str,
        schema: Schema,
        partitioners: &[&str],
        partitions: u32,
        replication: u32,
    ) -> Result<()> {
        if partitioners.is_empty() {
            return Err(RailgunError::InvalidArgument(
                "a stream needs at least one partitioner".into(),
            ));
        }
        // Ops must not overtake staged events on the bus.
        self.flush_staged()?;
        // Stream and partitioner names both become topic-name components;
        // reject anything `parse_topic_name` would silently mis-split.
        validate_topic_component("stream", stream)?;
        for p in partitioners {
            validate_topic_component("partitioner", p)?;
        }
        let mut indexes = Vec::with_capacity(partitioners.len());
        for p in partitioners {
            indexes.push(schema.require(p)?);
        }
        for p in partitioners {
            bus.create_topic(&topic_name(stream, p), partitions, replication)?;
        }
        let op = OpRequest::CreateStream {
            stream: stream.to_owned(),
            schema: schema.clone(),
            partitioners: partitioners.iter().map(|s| (*s).to_owned()).collect(),
            partitions,
        };
        self.producer
            .send_to_partition(OPS_TOPIC, 0, &[], encode_op(&op))?;
        self.streams.insert(
            stream.to_owned(),
            StreamMeta {
                schema,
                partitioners: partitioners.iter().map(|s| (*s).to_owned()).collect(),
                partitioner_indexes: indexes,
                topics: partitioners.iter().map(|p| topic_name(stream, p)).collect(),
                partitions,
            },
        );
        Ok(())
    }

    /// Register a textual query's metrics, validating it against the
    /// stream. Returns the query's stable id — the key its aggregations
    /// carry in replies, and the handle for unregistering it later.
    pub fn register_query(&mut self, query_text: &str) -> Result<QueryId> {
        let query = parse_query(query_text)?;
        self.register_parsed(query, query_text.to_owned())
    }

    /// Register a builder-constructed query. The AST is rendered to its
    /// textual form for the wire (every node parses it — the same path a
    /// hand-written statement takes), which [`QueryBuilder`]'s build-time
    /// validation guarantees is lossless.
    ///
    /// [`QueryBuilder`]: crate::lang::QueryBuilder
    pub fn register_query_ast(&mut self, query: &Query) -> Result<QueryId> {
        // Enforce the builder↔parser equivalence contract at the
        // boundary: what the nodes will parse must be exactly what was
        // built (a real check, not a debug assert — an AST that renders
        // to different semantics must never reach the ops topic).
        let text = query.check_text_roundtrip()?;
        self.register_parsed(query.clone(), text)
    }

    fn register_parsed(&mut self, query: Query, text: String) -> Result<QueryId> {
        self.flush_staged()?;
        let meta = self
            .streams
            .get(&query.stream)
            .ok_or_else(|| RailgunError::NotFound(format!("stream `{}`", query.stream)))?;
        // Validate fields and partitioner coverage up front so the client
        // gets an immediate error.
        for f in &query.group_by {
            meta.schema.require(f)?;
        }
        if !meta
            .partitioners
            .iter()
            .any(|p| query.group_by.contains(p))
        {
            return Err(RailgunError::InvalidArgument(format!(
                "GROUP BY {:?} contains no partitioner of `{}` {:?}",
                query.group_by, query.stream, meta.partitioners
            )));
        }
        let id = QueryId((u64::from(self.node) << 32) | u64::from(self.next_query_seq));
        self.next_query_seq += 1;
        let op = OpRequest::RegisterQuery {
            id,
            query_text: text.clone(),
        };
        self.producer
            .send_to_partition(OPS_TOPIC, 0, &[], encode_op(&op))?;
        self.queries
            .insert(id, RegisteredQuery { id, text, query });
        Ok(id)
    }

    /// Unregister a query: broadcast the teardown op. The id must be a
    /// live registration (any front-end's — the registry replicates via
    /// the ops topic).
    pub fn unregister_query(&mut self, id: QueryId) -> Result<()> {
        if !self.queries.contains_key(&id) {
            return Err(RailgunError::NotFound(format!("query {id}")));
        }
        self.flush_staged()?;
        // Broadcast before touching the registry: if the send fails the
        // query is still running cluster-wide, and it must stay listed
        // (and re-unregisterable) here.
        let op = OpRequest::UnregisterQuery { id };
        self.producer
            .send_to_partition(OPS_TOPIC, 0, &[], encode_op(&op))?;
        self.queries.remove(&id);
        Ok(())
    }

    /// Every live query registration this front-end knows of, in id
    /// order.
    pub fn queries(&self) -> Vec<RegisteredQuery> {
        let mut out: Vec<RegisteredQuery> = self.queries.values().cloned().collect();
        out.sort_by_key(|q| q.id);
        out
    }

    /// Remove a stream (§3.1): broadcast the deletion op and delete the
    /// stream's event topics.
    pub fn delete_stream(&mut self, bus: &MessageBus, stream: &str) -> Result<()> {
        // Staged events of this stream must reach the bus before the
        // deletion op (and before the topics disappear).
        self.flush_staged()?;
        let meta = self
            .streams
            .remove(stream)
            .ok_or_else(|| RailgunError::NotFound(format!("stream `{stream}`")))?;
        let op = OpRequest::DeleteStream {
            stream: stream.to_owned(),
        };
        self.producer
            .send_to_partition(OPS_TOPIC, 0, &[], encode_op(&op))?;
        for p in &meta.partitioners {
            bus.delete_topic(&topic_name(stream, p)).ok();
        }
        self.queries.retain(|_, q| q.query.stream != stream);
        Ok(())
    }

    /// Accept one client event: validates, assigns an id, encodes the
    /// event request **once** into the shared batch frame, and stages one
    /// record per partitioner topic of the stream (step 2 of Figure 3).
    /// Returns the request id.
    ///
    /// Staged records reach the bus in batches per the front-end's
    /// [`BatchPolicy`]; with low in-flight pressure the batch degenerates
    /// to a flush per event, so closed-loop requests see no added
    /// latency.
    pub fn send_event(
        &mut self,
        stream: &str,
        ts: Timestamp,
        values: Vec<Value>,
    ) -> Result<u64> {
        // Completed-but-unclaimed responses count against the cap too:
        // a fire-and-forget caller must not grow the correlation table
        // without bound just because its replies arrived.
        let outstanding = self.pending.len() + self.completed.len();
        if outstanding >= self.max_in_flight {
            self.telemetry.count_backpressure();
            return Err(RailgunError::Backpressure(format!(
                "front-end {} has {} requests outstanding ({} in flight, {} uncollected; cap {}); collect before sending more",
                self.node,
                outstanding,
                self.pending.len(),
                self.completed.len(),
                self.max_in_flight
            )));
        }
        // SLO overload policy (see `metrics` module docs): with a latency
        // budget registered, escalate Backpressure *before* the table
        // fills once the oldest in-flight request is hopelessly past the
        // strictest budget — queueing more work can only add breaches.
        let strictest_us = self.telemetry.strictest_slo_us();
        if strictest_us > 0 && outstanding >= self.max_in_flight / 2 {
            if let Some(oldest_us) = self.oldest_inflight_age_us() {
                let limit = strictest_us.saturating_mul(SLO_OVERLOAD_MULTIPLIER);
                if oldest_us > limit {
                    self.telemetry.count_backpressure();
                    return Err(RailgunError::Backpressure(format!(
                        "front-end {} in SLO overload: oldest in-flight request is {} µs old \
                         (> {}× the strictest SLO budget of {} µs) with {} outstanding; \
                         collect or shed load",
                        self.node, oldest_us, SLO_OVERLOAD_MULTIPLIER, strictest_us, outstanding
                    )));
                }
            }
        }
        let meta = self
            .streams
            .get(stream)
            .ok_or_else(|| RailgunError::NotFound(format!("stream `{stream}`")))?;
        meta.schema.check_values(&values)?;
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        let event_id = EventId((u64::from(self.node) << 40) | self.next_event_seq);
        self.next_event_seq += 1;
        let event = Event::new(event_id, ts, values);
        let req = EventRequest {
            request_id,
            reply_topic: reply_topic_name(self.node),
            event,
        };
        // Encode once into the shared frame; every topic's record is a
        // zero-copy slice of it after the flush.
        let record = self.frame.len();
        self.frame.push_with(|buf| encode_event_request_into(buf, &req));
        // Step 2 of Figure 3: one record per partitioner, keyed by the
        // partitioner value so an entity always lands in one partition.
        // The key is hashed once per distinct byte string per event: all
        // partitioner topics of a stream share a partition count, so
        // identical key bytes always map to the same partition index.
        let mut key_scratch = std::mem::take(&mut self.key_scratch);
        key_scratch.clear();
        let meta = self.streams.get(stream).expect("checked above");
        for (t, &idx) in meta.topics.iter().zip(&meta.partitioner_indexes) {
            let mut key = Vec::with_capacity(16);
            put_value(&mut key, &req.event.values()[idx]);
            let partition = match key_scratch.iter().find(|(k, _)| *k == key) {
                Some(&(_, p)) => p,
                None => {
                    let p = partition_for_key(&key, meta.partitions);
                    key_scratch.push((key.clone(), p));
                    p
                }
            };
            let slot = match self.staged.iter().position(|s| s.topic == *t) {
                Some(i) => i,
                None => {
                    self.staged.push(StagedTopic {
                        topic: t.clone(),
                        records: Vec::new(),
                    });
                    self.staged.len() - 1
                }
            };
            self.staged[slot].records.push((partition, key, record));
        }
        self.key_scratch = key_scratch;
        self.staged_events += 1;
        let expected = meta.partitioners.len();
        let sent_at = if self.telemetry.wants_request_timing() {
            // Lazily prune completed/abandoned entries from the front so
            // the deque is bounded by the number of requests genuinely in
            // flight (amortized O(1) per send), independent of whether the
            // overload check below ever runs.
            while let Some((id, _)) = self.inflight_ages.front() {
                if self.pending.contains_key(id) {
                    break;
                }
                self.inflight_ages.pop_front();
            }
            let now = Instant::now();
            self.inflight_ages.push_back((request_id, now));
            Some(now)
        } else {
            None
        };
        self.pending.insert(
            request_id,
            Pending {
                expected,
                received: 0,
                aggregations: Vec::new(),
                duplicate: false,
                sent_at,
            },
        );
        // Flush policy. `pending.len() == staged_events` means every
        // in-flight request is still sitting in the stage — nothing is
        // being processed downstream, so holding the batch open would add
        // pure latency (this is also the first-send case, which keeps
        // closed-loop callers at one bus hop per event). Only when the
        // pipeline is genuinely busy do we coalesce, bounded by
        // `max_events` and `max_delay`.
        if self.staged_events >= self.batch_policy.max_events
            || self.pending.len() == self.staged_events
        {
            self.flush_staged()?;
        } else {
            match self.staged_since {
                None => self.staged_since = Some(Instant::now()),
                Some(at) if at.elapsed() >= self.batch_policy.max_delay => {
                    self.flush_staged()?;
                }
                _ => {}
            }
        }
        Ok(request_id)
    }

    /// Publish everything staged: one `send_batch` (one bus lock, one
    /// wakeup) per topic, each record a zero-copy slice of the shared
    /// frame. No-op when nothing is staged.
    fn flush_staged(&mut self) -> Result<()> {
        if self.staged_events == 0 {
            return Ok(());
        }
        let events = self.staged_events;
        self.staged_events = 0;
        self.staged_since = None;
        let frame = self.frame.finish();
        self.batch_size.record(events as u64);
        if events >= 2 {
            self.batched_events.add(events as u64);
        }
        let mut first_err = None;
        for st in &mut self.staged {
            if st.records.is_empty() {
                continue;
            }
            self.flush_entries.extend(st.records.drain(..).map(
                |(partition, key, record)| BatchEntry {
                    partition,
                    key,
                    payload: frame.slice(record),
                },
            ));
            if let Err(e) = self
                .producer
                .send_batch(&st.topic, &mut self.flush_entries)
            {
                // Keep going so the other topics' staged records are not
                // silently dropped on the floor, then surface the first
                // failure.
                self.flush_entries.clear();
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Age in µs of the oldest request still awaiting replies, pruning
    /// entries whose requests completed or were abandoned.
    fn oldest_inflight_age_us(&mut self) -> Option<u64> {
        while let Some((id, _)) = self.inflight_ages.front() {
            if self.pending.contains_key(id) {
                break;
            }
            self.inflight_ages.pop_front();
        }
        self.inflight_ages
            .front()
            .map(|(_, at)| at.elapsed().as_micros() as u64)
    }

    /// Drain the reply topic, completing pending requests (steps 5-6).
    /// Also applies operational requests published by other front-ends.
    /// Completed responses land in the correlation table — claim them with
    /// [`FrontEnd::try_take`] or [`FrontEnd::take_completed`].
    pub fn pump(&mut self) -> Result<()> {
        // Anything still staged goes out now: a pump is the caller coming
        // back for replies, so holding the batch open any longer only
        // delays them (and in pump mode this is the sole flush trigger,
        // which keeps pump-mode runs deterministic).
        self.flush_staged()?;
        // Ops from other nodes keep this front-end's stream map current.
        let ops = self.ops.poll(64)?;
        self.apply_remote_ops(&ops.messages)?;
        let polled = self.replies.poll(256)?;
        for msg in polled.messages {
            let reply = decode_reply(&msg.payload)?;
            if let Some(p) = self.pending.get_mut(&reply.request_id) {
                p.received += 1;
                p.duplicate |= reply.duplicate;
                p.aggregations.extend(reply.results);
                if p.received >= p.expected {
                    let done = self.pending.remove(&reply.request_id).expect("present");
                    if let Some(at) = done.sent_at {
                        self.telemetry.observe_completion_cached(
                            &mut self.query_telemetry,
                            &done.aggregations,
                            at.elapsed().as_micros() as u64,
                        );
                    }
                    self.completed.insert(
                        reply.request_id,
                        ClientResponse {
                            request_id: reply.request_id,
                            aggregations: done.aggregations,
                            duplicate: done.duplicate,
                        },
                    );
                }
            }
        }
        Ok(())
    }

    /// Apply stream create/delete ops published by other front-ends so
    /// this one's stream map stays current.
    fn apply_remote_ops(&mut self, messages: &[railgun_messaging::Message]) -> Result<()> {
        for msg in messages {
            match decode_op(&msg.payload) {
                Ok(OpRequest::CreateStream {
                    stream,
                    schema,
                    partitioners,
                    partitions,
                }) => {
                    let topics = partitioners
                        .iter()
                        .map(|p| topic_name(&stream, p))
                        .collect();
                    if let std::collections::hash_map::Entry::Vacant(slot) =
                        self.streams.entry(stream)
                    {
                        let mut indexes = Vec::new();
                        for p in &partitioners {
                            indexes.push(schema.require(p)?);
                        }
                        slot.insert(StreamMeta {
                            schema,
                            partitioners,
                            partitioner_indexes: indexes,
                            topics,
                            partitions,
                        });
                    }
                }
                Ok(OpRequest::DeleteStream { stream }) => {
                    self.streams.remove(&stream);
                    // Queries die with their stream, cluster-wide.
                    self.queries.retain(|_, q| q.query.stream != stream);
                }
                Ok(OpRequest::RegisterQuery { id, query_text }) => {
                    if let std::collections::hash_map::Entry::Vacant(slot) =
                        self.queries.entry(id)
                    {
                        // Ops are validated before broadcast, but the ops
                        // topic is durable and replayed — a registration
                        // this build's grammar cannot parse (e.g. written
                        // by a newer build) must not brick the front-end,
                        // so it is skipped rather than escalated. The
                        // registry then under-reports it; processing is
                        // unaffected (units parse independently).
                        if let Ok(query) = parse_query(&query_text) {
                            slot.insert(RegisteredQuery {
                                id,
                                text: query_text,
                                query,
                            });
                        }
                    }
                }
                Ok(OpRequest::UnregisterQuery { id }) => {
                    self.queries.remove(&id);
                }
                Err(_) => {}
            }
        }
        Ok(())
    }

    /// Replay the whole operational log so a freshly-created front-end
    /// (e.g. a [`crate::cluster::ClusterClient`]) learns every stream that
    /// existed before it was born.
    pub fn sync_ops(&mut self) -> Result<()> {
        loop {
            let ops = self.ops.poll(256)?;
            if ops.messages.is_empty() {
                return Ok(());
            }
            self.apply_remote_ops(&ops.messages)?;
        }
    }

    /// Claim the completed response for `request_id`, if it has arrived.
    pub fn try_take(&mut self, request_id: u64) -> Option<ClientResponse> {
        self.completed.remove(&request_id)
    }

    /// Abandon a request: drop its in-flight slot and any completed
    /// response. Late replies for an abandoned id are ignored by `pump`
    /// (no pending entry). Returns true if anything was dropped.
    pub fn abandon(&mut self, request_id: u64) -> bool {
        let pending = self.pending.remove(&request_id).is_some();
        let completed = self.completed.remove(&request_id).is_some();
        pending || completed
    }

    /// Drain every completed response (in request-id order, so the legacy
    /// pump-harness consumption stays deterministic).
    pub fn take_completed(&mut self) -> Vec<ClientResponse> {
        let mut out: Vec<ClientResponse> = self.completed.drain().map(|(_, r)| r).collect();
        out.sort_by_key(|r| r.request_id);
        out
    }

    /// Number of requests still waiting for replies.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Number of completed responses not yet claimed.
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    /// The in-flight cap.
    pub fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    /// Schema of a known stream.
    pub fn stream_schema(&self, stream: &str) -> Option<Schema> {
        self.streams.get(stream).map(|m| m.schema.clone())
    }

    /// Known streams.
    pub fn streams(&self) -> Vec<String> {
        let mut names: Vec<String> = self.streams.keys().cloned().collect();
        names.sort();
        names
    }
}
