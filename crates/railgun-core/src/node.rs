//! A Railgun node: front-end + back-end processor units over the shared
//! messaging layer (Figure 3).
//!
//! All nodes are equal (§3: "to simplify development, all Railgun nodes
//! are equal and composed by layers"): each has a front-end accepting
//! client traffic and a back-end of processor units computing metrics.
//!
//! The back-end runs in one of two execution modes (see DESIGN.md
//! § "Execution modes"):
//!
//! * **pump** (default) — units are driven inline by [`Node::pump`],
//!   deterministic, used by tests and the simulation;
//! * **threaded** — [`Node::start`] moves every unit onto its own OS
//!   thread (the paper's one-thread-per-unit discipline, §3.2);
//!   [`Node::stop`] joins the threads and hands the units back, so the
//!   node can return to pump mode with all task state intact.

use std::path::Path;
use std::sync::Arc;

use railgun_messaging::MessageBus;
use railgun_types::{Result, Schema, Timestamp, Value};

use crate::api::QueryId;
use crate::frontend::{BatchPolicy, ClientResponse, FrontEnd};
use crate::metrics::EngineTelemetry;
use crate::rebalance::RailgunStrategy;
use crate::runtime::Runtime;
use crate::task::TaskConfig;
use crate::unit::{ProcessorUnit, PumpReport, UnitConfig};

/// The node's back-end units, in whichever execution mode is active.
enum Backend {
    /// Units driven inline by [`Node::pump`].
    Pump(Vec<ProcessorUnit>),
    /// Units owned by worker threads.
    Threaded(Runtime),
}

/// One Railgun node.
pub struct Node {
    pub id: u32,
    frontend: FrontEnd,
    backend: Backend,
    bus: MessageBus,
}

impl Node {
    /// Assemble a node with `units` processor units (pump mode; call
    /// [`Node::start`] to go threaded).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        bus: &MessageBus,
        id: u32,
        units: u32,
        data_dir: &Path,
        task: TaskConfig,
        strategy: Arc<RailgunStrategy>,
        checkpoint_every: u64,
        max_in_flight: usize,
        batch: BatchPolicy,
        telemetry: Arc<EngineTelemetry>,
    ) -> Result<Self> {
        let frontend = FrontEnd::new(bus, id, max_in_flight, batch, Arc::clone(&telemetry))?;
        let mut unit_vec = Vec::with_capacity(units as usize);
        for u in 0..units {
            unit_vec.push(ProcessorUnit::new(
                bus,
                UnitConfig {
                    node: id,
                    unit: u,
                    data_dir: data_dir.to_path_buf(),
                    task: task.clone(),
                    max_poll: 256,
                    checkpoint_every,
                    poll_recorder: telemetry.unit_poll_recorder(),
                    process_recorder: telemetry.unit_process_recorder(),
                    batch_size: telemetry.batch_size_recorder(),
                    batched_events: telemetry.unit_batched_counter(),
                    handovers: telemetry.handover_counter(),
                    tail_replayed: telemetry.tail_replayed_counter(),
                    handover_fallbacks: telemetry.handover_fallback_counter(),
                },
                Arc::clone(&strategy),
            )?);
        }
        Ok(Node {
            id,
            frontend,
            backend: Backend::Pump(unit_vec),
            bus: bus.clone(),
        })
    }

    /// Move every unit onto its own worker thread. Idempotent: a node that
    /// is already threaded stays untouched. If spawning fails, the node
    /// keeps (the surviving) units in pump mode and reports the error.
    pub fn start(&mut self) -> Result<()> {
        if let Backend::Pump(units) = &mut self.backend {
            let units = std::mem::take(units);
            match Runtime::spawn(self.bus.clone(), units) {
                Ok(runtime) => self.backend = Backend::Threaded(runtime),
                Err((units, e)) => {
                    self.backend = Backend::Pump(units);
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Stop the worker threads (if any) and return to pump mode with the
    /// same units. Idempotent; reports any worker panic/error.
    pub fn stop(&mut self) -> Result<()> {
        match std::mem::replace(&mut self.backend, Backend::Pump(Vec::new())) {
            Backend::Pump(units) => {
                self.backend = Backend::Pump(units);
                Ok(())
            }
            Backend::Threaded(runtime) => {
                let (units, result) = runtime.stop();
                self.backend = Backend::Pump(units);
                result
            }
        }
    }

    /// True while the back-end runs on worker threads.
    pub fn is_running(&self) -> bool {
        matches!(self.backend, Backend::Threaded(_))
    }

    /// Errors once any worker thread has failed (threaded mode only).
    pub fn health(&self) -> Result<()> {
        match &self.backend {
            Backend::Pump(_) => Ok(()),
            Backend::Threaded(runtime) => runtime.health(),
        }
    }

    /// Client entry: register a stream through this node.
    pub fn create_stream(
        &mut self,
        stream: &str,
        schema: Schema,
        partitioners: &[&str],
        partitions: u32,
        replication: u32,
    ) -> Result<()> {
        self.frontend
            .create_stream(&self.bus, stream, schema, partitioners, partitions, replication)
    }

    /// Client entry: register a textual query through this node; returns
    /// its stable id.
    pub fn register_query(&mut self, query_text: &str) -> Result<QueryId> {
        self.frontend.register_query(query_text)
    }

    /// Client entry: register a builder-constructed query through this
    /// node; returns its stable id.
    pub fn register_query_ast(&mut self, query: &crate::lang::Query) -> Result<QueryId> {
        self.frontend.register_query_ast(query)
    }

    /// Client entry: unregister a query by id.
    pub fn unregister_query(&mut self, id: QueryId) -> Result<()> {
        self.frontend.unregister_query(id)
    }

    /// Live query registrations known to this node's front-end.
    pub fn queries(&self) -> Vec<crate::frontend::RegisteredQuery> {
        self.frontend.queries()
    }

    /// Schema of a stream this node's front-end knows.
    pub fn stream_schema(&self, stream: &str) -> Option<Schema> {
        self.frontend.stream_schema(stream)
    }

    /// Client entry: delete a stream through this node.
    pub fn delete_stream(&mut self, stream: &str) -> Result<()> {
        self.frontend.delete_stream(&self.bus, stream)
    }

    /// Client entry: send one event; returns its request id.
    pub fn send_event(
        &mut self,
        stream: &str,
        ts: Timestamp,
        values: Vec<Value>,
    ) -> Result<u64> {
        self.frontend.send_event(stream, ts, values)
    }

    /// Pump the front-end (reply collection) and — in pump mode — every
    /// processor unit once. In threaded mode the units are pumped by their
    /// worker threads, so only the front-end is driven (after a health
    /// check, so a dead worker surfaces here instead of as a timeout).
    ///
    /// Completed responses accumulate in the front-end's correlation table;
    /// claim them by id with [`Node::try_take_response`] or drain them all
    /// with [`Node::take_responses`].
    pub fn pump(&mut self) -> Result<Vec<PumpReport>> {
        let reports = match &mut self.backend {
            Backend::Pump(units) => {
                let mut reports = Vec::with_capacity(units.len());
                for unit in units {
                    reports.push(unit.pump()?);
                }
                reports
            }
            Backend::Threaded(runtime) => {
                runtime.health()?;
                Vec::new()
            }
        };
        self.frontend.pump()?;
        Ok(reports)
    }

    /// Claim the completed response for `request_id`, if it has arrived.
    pub fn try_take_response(&mut self, request_id: u64) -> Option<ClientResponse> {
        self.frontend.try_take(request_id)
    }

    /// Abandon an outstanding request (frees its in-flight slot).
    pub fn abandon_request(&mut self, request_id: u64) -> bool {
        self.frontend.abandon(request_id)
    }

    /// Drain every completed response (legacy pump-harness consumption).
    pub fn take_responses(&mut self) -> Vec<ClientResponse> {
        self.frontend.take_completed()
    }

    /// Requests awaiting replies on this node's front-end.
    pub fn pending_requests(&self) -> usize {
        self.frontend.pending_count()
    }

    /// This node's processor units (diagnostics). Empty while threaded —
    /// the units are owned by their worker threads.
    pub fn units(&self) -> &[ProcessorUnit] {
        match &self.backend {
            Backend::Pump(units) => units,
            Backend::Threaded(_) => &[],
        }
    }

    /// Mutable access to units (benches probing task processors). Empty
    /// while threaded.
    pub fn units_mut(&mut self) -> &mut [ProcessorUnit] {
        match &mut self.backend {
            Backend::Pump(units) => units,
            Backend::Threaded(_) => &mut [],
        }
    }

    /// Gracefully leave all consumer groups (decommission). Stops worker
    /// threads first if the node is running threaded.
    pub fn shutdown(&mut self) {
        let _ = self.stop();
        if let Backend::Pump(units) = &mut self.backend {
            for unit in units {
                unit.shutdown();
            }
        }
    }

    /// Drain every unit: flush a final checkpoint of each task with
    /// uncheckpointed progress, then leave the groups (the node half of
    /// the scheduled-drain protocol — see `Cluster::drain_node`). Stops
    /// worker threads first so the units are drainable inline. All units
    /// flush **before** any unit unsubscribes: the first departure
    /// triggers the rebalance that moves this node's tasks, and every
    /// image must already be published by then. Returns the number of
    /// checkpoint images flushed.
    pub fn drain_units(&mut self) -> Result<usize> {
        self.stop()?;
        let mut flushed = 0;
        if let Backend::Pump(units) = &mut self.backend {
            for unit in units.iter_mut() {
                flushed += unit.drain()?;
            }
            for unit in units.iter_mut() {
                unit.shutdown();
            }
        }
        Ok(flushed)
    }
}
