//! A Railgun node: front-end + back-end processor units over the shared
//! messaging layer (Figure 3).
//!
//! All nodes are equal (§3: "to simplify development, all Railgun nodes
//! are equal and composed by layers"): each has a front-end accepting
//! client traffic and a back-end of processor units computing metrics.

use std::path::Path;
use std::sync::Arc;

use railgun_messaging::MessageBus;
use railgun_types::{Result, Schema, Timestamp, Value};

use crate::frontend::{ClientResponse, FrontEnd};
use crate::rebalance::RailgunStrategy;
use crate::task::TaskConfig;
use crate::unit::{ProcessorUnit, PumpReport, UnitConfig};

/// One Railgun node.
pub struct Node {
    pub id: u32,
    frontend: FrontEnd,
    units: Vec<ProcessorUnit>,
    bus: MessageBus,
}

impl Node {
    /// Assemble a node with `units` processor units.
    pub fn new(
        bus: &MessageBus,
        id: u32,
        units: u32,
        data_dir: &Path,
        task: TaskConfig,
        strategy: Arc<RailgunStrategy>,
        checkpoint_every: u64,
    ) -> Result<Self> {
        let frontend = FrontEnd::new(bus, id)?;
        let mut unit_vec = Vec::with_capacity(units as usize);
        for u in 0..units {
            unit_vec.push(ProcessorUnit::new(
                bus,
                UnitConfig {
                    node: id,
                    unit: u,
                    data_dir: data_dir.to_path_buf(),
                    task: task.clone(),
                    max_poll: 256,
                    checkpoint_every,
                },
                Arc::clone(&strategy),
            )?);
        }
        Ok(Node {
            id,
            frontend,
            units: unit_vec,
            bus: bus.clone(),
        })
    }

    /// Client entry: register a stream through this node.
    pub fn create_stream(
        &mut self,
        stream: &str,
        schema: Schema,
        partitioners: &[&str],
        partitions: u32,
        replication: u32,
    ) -> Result<()> {
        self.frontend
            .create_stream(&self.bus, stream, schema, partitioners, partitions, replication)
    }

    /// Client entry: register a query through this node.
    pub fn register_query(&mut self, query_text: &str) -> Result<()> {
        self.frontend.register_query(query_text)
    }

    /// Client entry: delete a stream through this node.
    pub fn delete_stream(&mut self, stream: &str) -> Result<()> {
        self.frontend.delete_stream(&self.bus, stream)
    }

    /// Client entry: send one event; returns its request id.
    pub fn send_event(
        &mut self,
        stream: &str,
        ts: Timestamp,
        values: Vec<Value>,
    ) -> Result<u64> {
        self.frontend.send_event(stream, ts, values)
    }

    /// Pump the front-end (reply collection) and every processor unit once.
    pub fn pump(&mut self) -> Result<(Vec<ClientResponse>, Vec<PumpReport>)> {
        let mut reports = Vec::with_capacity(self.units.len());
        for unit in &mut self.units {
            reports.push(unit.pump()?);
        }
        let responses = self.frontend.pump()?;
        Ok((responses, reports))
    }

    /// Requests awaiting replies on this node's front-end.
    pub fn pending_requests(&self) -> usize {
        self.frontend.pending_count()
    }

    /// This node's processor units (diagnostics).
    pub fn units(&self) -> &[ProcessorUnit] {
        &self.units
    }

    /// Mutable access to units (benches probing task processors).
    pub fn units_mut(&mut self) -> &mut [ProcessorUnit] {
        &mut self.units
    }

    /// Gracefully leave all consumer groups (decommission).
    pub fn shutdown(&mut self) {
        for unit in &mut self.units {
            unit.shutdown();
        }
    }
}
