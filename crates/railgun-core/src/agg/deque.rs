//! Sliding-window min/max via a monotonic deque (paper §4.1.3, citing
//! Knuth \[30\]).
//!
//! The classic algorithm: on insert, drop dominated elements from the back;
//! on evict (in insertion order), drop the front if it has expired. Each
//! element carries its insertion sequence number so eviction works even
//! though dominated elements were removed early.

use std::collections::VecDeque;

use bytes::Buf;
use railgun_types::encode::{get_uvarint, get_value, put_uvarint, put_value};
use railgun_types::{Result, Value};

/// Monotonic deque maintaining the extreme of a sliding window in O(1)
/// amortized per operation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MinMaxDeque {
    /// Front = current extreme. Values strictly "improve" toward the front.
    deque: VecDeque<(Value, u64)>,
    /// Sequence number assigned to the next insert.
    insert_seq: u64,
    /// Number of evictions processed (elements with seq < this are gone).
    evicted: u64,
}

impl MinMaxDeque {
    /// Insert a value. `keep_back` decides whether the back survives
    /// against the newcomer: for a max-deque, `back >= new`; for a
    /// min-deque, `back <= new`.
    pub fn insert(&mut self, v: &Value, keep_back: impl Fn(&Value, &Value) -> bool) {
        while let Some((back, _)) = self.deque.back() {
            if keep_back(back, v) {
                break;
            }
            self.deque.pop_back();
        }
        self.deque.push_back((v.clone(), self.insert_seq));
        self.insert_seq += 1;
    }

    /// Evict the oldest inserted value (insertion order).
    pub fn evict(&mut self) {
        self.evicted += 1;
        while let Some((_, seq)) = self.deque.front() {
            if *seq < self.evicted {
                self.deque.pop_front();
            } else {
                break;
            }
        }
    }

    /// The current extreme, if the window is non-empty.
    pub fn extreme(&self) -> Option<&Value> {
        self.deque.front().map(|(v, _)| v)
    }

    /// Number of retained (non-dominated) elements.
    pub fn len(&self) -> usize {
        self.deque.len()
    }

    /// True iff no elements are retained.
    pub fn is_empty(&self) -> bool {
        self.deque.is_empty()
    }

    /// Serialize into `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        put_uvarint(buf, self.insert_seq);
        put_uvarint(buf, self.evicted);
        put_uvarint(buf, self.deque.len() as u64);
        for (v, seq) in &self.deque {
            put_value(buf, v);
            put_uvarint(buf, *seq);
        }
    }

    /// Deserialize from `buf`.
    pub fn decode(buf: &mut impl Buf) -> Result<Self> {
        let insert_seq = get_uvarint(buf)?;
        let evicted = get_uvarint(buf)?;
        let n = get_uvarint(buf)? as usize;
        let mut deque = VecDeque::with_capacity(n);
        for _ in 0..n {
            let v = get_value(buf)?;
            let seq = get_uvarint(buf)?;
            deque.push_back((v, seq));
        }
        Ok(MinMaxDeque {
            deque,
            insert_seq,
            evicted,
        })
    }
}

/// Keep-back predicate for a max-deque.
pub fn max_keeps(back: &Value, new: &Value) -> bool {
    back.total_cmp(new) != std::cmp::Ordering::Less
}

/// Keep-back predicate for a min-deque.
pub fn min_keeps(back: &Value, new: &Value) -> bool {
    back.total_cmp(new) != std::cmp::Ordering::Greater
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vi(i: i64) -> Value {
        Value::Int(i)
    }

    #[test]
    fn max_over_sliding_window() {
        // Window of size 3 over [1, 3, 2, 5, 4, 1]: maxes are
        // 1, 3, 3, 5, 5, 5.
        let mut d = MinMaxDeque::default();
        let xs = [1i64, 3, 2, 5, 4, 1];
        let mut maxes = Vec::new();
        for (i, &x) in xs.iter().enumerate() {
            d.insert(&vi(x), max_keeps);
            if i >= 3 {
                d.evict();
            }
            maxes.push(d.extreme().unwrap().as_i64().unwrap());
        }
        assert_eq!(maxes, vec![1, 3, 3, 5, 5, 5]);
    }

    #[test]
    fn min_over_sliding_window() {
        let mut d = MinMaxDeque::default();
        let xs = [5i64, 2, 4, 1, 3, 6];
        let mut mins = Vec::new();
        for (i, &x) in xs.iter().enumerate() {
            d.insert(&vi(x), min_keeps);
            if i >= 2 {
                d.evict();
            }
            mins.push(d.extreme().unwrap().as_i64().unwrap());
        }
        // Window of size 2: [5],[5,2],[2,4],[4,1],[1,3],[3,6]
        assert_eq!(mins, vec![5, 2, 2, 1, 1, 3]);
    }

    #[test]
    fn evicting_everything_empties() {
        let mut d = MinMaxDeque::default();
        for i in 0..5 {
            d.insert(&vi(i), max_keeps);
        }
        for _ in 0..5 {
            d.evict();
        }
        assert!(d.is_empty());
        assert_eq!(d.extreme(), None);
    }

    #[test]
    fn duplicate_values_survive_eviction_correctly() {
        let mut d = MinMaxDeque::default();
        d.insert(&vi(7), max_keeps);
        d.insert(&vi(7), max_keeps);
        d.evict(); // evicts the first 7
        assert_eq!(d.extreme(), Some(&vi(7)));
        d.evict();
        assert!(d.is_empty());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut d = MinMaxDeque::default();
        for x in [3i64, 1, 4, 1, 5] {
            d.insert(&vi(x), max_keeps);
        }
        d.evict();
        let mut buf = Vec::new();
        d.encode(&mut buf);
        let e = MinMaxDeque::decode(&mut &buf[..]).unwrap();
        assert_eq!(d, e);
    }

    #[test]
    fn compare_against_naive_on_random_stream() {
        // xorshift pseudo-random stream, window 16, check against a naive
        // recompute at every step.
        let mut x = 0xdeadbeefu64;
        let mut vals: Vec<i64> = Vec::new();
        let mut d = MinMaxDeque::default();
        const W: usize = 16;
        for i in 0..500usize {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = (x % 1000) as i64;
            vals.push(v);
            d.insert(&vi(v), max_keeps);
            if i >= W {
                d.evict();
            }
            // Window now holds elements [max(0, i-W+1) ..= i].
            let start = if i >= W { i - W + 1 } else { 0 };
            let naive = *vals[start..=i].iter().max().unwrap();
            assert_eq!(d.extreme().unwrap().as_i64().unwrap(), naive, "step {i}");
        }
    }
}
