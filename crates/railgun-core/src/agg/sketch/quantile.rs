//! KLL-style quantile sketch for `percentile(field, p)`.
//!
//! A ladder of capacity-bounded buffers: level `i` holds items of
//! weight `2^i`, kept sorted. When a level fills, a **deterministic
//! alternating compaction** promotes every other item to the next level
//! — the starting parity cycles through a plain counter instead of a
//! coin flip, so two replays of the same event sequence produce
//! byte-identical sketches (the property `restore_or_replay` needs).
//! With per-level capacity 128 the observed rank error is well under 1%
//! at 10⁶ samples; memory is O(cap · log(n / cap)) regardless of n.

use railgun_types::{encode, RailgunError, Result};

use super::PaneSketch;

/// Per-level buffer capacity (even, so compaction halves exactly).
const LEVEL_CAP: usize = 128;
/// Sanity bound for decode (level 40 ⇒ ~10¹⁴ weighted items).
const MAX_LEVELS: usize = 40;

#[derive(Debug, Clone, PartialEq)]
pub struct QuantSketch {
    /// `levels[i]` holds items of weight `2^i`, sorted ascending.
    levels: Vec<Vec<f64>>,
    /// Total items inserted (weighted count equals this by invariant).
    count: u64,
    /// Compaction counter; its low bit is the next compaction's parity.
    compactions: u64,
}

impl Default for QuantSketch {
    fn default() -> Self {
        QuantSketch {
            levels: vec![Vec::new()],
            count: 0,
            compactions: 0,
        }
    }
}

impl QuantSketch {
    /// Insert one sample. Amortized O(log n) with no allocation beyond
    /// buffer growth; non-finite samples are ignored.
    pub fn insert(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        sorted_insert(&mut self.levels[0], x);
        self.cascade();
    }

    fn cascade(&mut self) {
        let mut i = 0;
        while i < self.levels.len() {
            if self.levels[i].len() < LEVEL_CAP {
                i += 1;
                continue;
            }
            let parity = (self.compactions & 1) as usize;
            self.compactions += 1;
            let buf = std::mem::take(&mut self.levels[i]);
            if self.levels.len() == i + 1 {
                self.levels.push(Vec::new());
            }
            // Promote items at parity, parity+2, … — an ascending
            // subsequence of a sorted buffer, merged into the (sorted)
            // next level.
            let promoted: Vec<f64> = buf.into_iter().skip(parity).step_by(2).collect();
            merge_sorted(&mut self.levels[i + 1], &promoted);
            i += 1;
        }
    }

    /// Estimate the value at `rank` (`0.0..=1.0`) by walking the
    /// weighted items in value order. `scratch` is reused across calls
    /// to keep the walk allocation-free at steady state.
    pub fn estimate(&self, rank: f64, scratch: &mut Vec<(f64, u64)>) -> Option<f64> {
        scratch.clear();
        for (lvl, buf) in self.levels.iter().enumerate() {
            let w = 1u64 << lvl;
            scratch.extend(buf.iter().map(|&x| (x, w)));
        }
        if scratch.is_empty() {
            return None;
        }
        scratch.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total: u64 = scratch.iter().map(|(_, w)| w).sum();
        let target = (rank.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(x, w) in scratch.iter() {
            seen += w;
            if seen >= target {
                return Some(x);
            }
        }
        scratch.last().map(|&(x, _)| x)
    }
}

fn sorted_insert(buf: &mut Vec<f64>, x: f64) {
    let pos = buf.partition_point(|&y| y <= x);
    buf.insert(pos, x);
}

fn merge_sorted(dst: &mut Vec<f64>, add: &[f64]) {
    if add.is_empty() {
        return;
    }
    let old = std::mem::take(dst);
    dst.reserve(old.len() + add.len());
    let (mut a, mut b) = (old.into_iter().peekable(), add.iter().copied().peekable());
    loop {
        match (a.peek(), b.peek()) {
            (Some(&x), Some(&y)) if x <= y => {
                dst.push(x);
                a.next();
            }
            (_, Some(&y)) => {
                dst.push(y);
                b.next();
            }
            (Some(&x), None) => {
                dst.push(x);
                a.next();
            }
            (None, None) => break,
        }
    }
}

impl PaneSketch for QuantSketch {
    fn fresh(&self) -> Self {
        QuantSketch::default()
    }

    /// Merge level-wise (sorted merge), then compact any overfull
    /// levels with the same deterministic cascade.
    fn merge_from(&mut self, other: &Self) {
        while self.levels.len() < other.levels.len() {
            self.levels.push(Vec::new());
        }
        for (i, buf) in other.levels.iter().enumerate() {
            merge_sorted(&mut self.levels[i], buf);
        }
        self.count += other.count;
        self.compactions = self.compactions.wrapping_add(other.compactions);
        self.cascade();
    }

    /// Layout: `[count][compactions][nlevels][(len, f64 LE…)*]`.
    fn encode(&self, buf: &mut Vec<u8>) {
        encode::put_uvarint(buf, self.count);
        encode::put_uvarint(buf, self.compactions);
        encode::put_uvarint(buf, self.levels.len() as u64);
        for lvl in &self.levels {
            encode::put_uvarint(buf, lvl.len() as u64);
            for x in lvl {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        use bytes::Buf;
        let count = encode::get_uvarint(buf)?;
        let compactions = encode::get_uvarint(buf)?;
        let nlevels = encode::get_uvarint(buf)? as usize;
        if nlevels == 0 || nlevels > MAX_LEVELS {
            return Err(RailgunError::Corruption(format!(
                "bad quantile level count {nlevels}"
            )));
        }
        let mut levels = Vec::with_capacity(nlevels);
        for _ in 0..nlevels {
            let n = encode::get_uvarint(buf)? as usize;
            if n > 2 * LEVEL_CAP || buf.remaining() < n * 8 {
                return Err(RailgunError::Corruption("truncated quantile level".into()));
            }
            let mut lvl = Vec::with_capacity(n);
            for _ in 0..n {
                lvl.push(f64::from_le_bytes(buf[..8].try_into().unwrap()));
                buf.advance(8);
            }
            // NaN never passes the insert filter, so its presence (or
            // any out-of-order pair) marks a corrupt blob.
            if lvl.iter().any(|x| x.is_nan()) || lvl.windows(2).any(|w| w[0] > w[1]) {
                return Err(RailgunError::Corruption("unsorted quantile level".into()));
            }
            levels.push(lvl);
        }
        Ok(QuantSketch {
            levels,
            count,
            compactions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_first_compaction() {
        let mut q = QuantSketch::default();
        for i in 0..100 {
            q.insert(f64::from(i));
        }
        let mut scratch = Vec::new();
        assert_eq!(q.estimate(0.5, &mut scratch), Some(49.0));
        assert_eq!(q.estimate(0.99, &mut scratch), Some(98.0));
        assert_eq!(q.estimate(0.0, &mut scratch), Some(0.0));
        assert_eq!(q.estimate(1.0, &mut scratch), Some(99.0));
    }

    #[test]
    fn rank_error_small_at_scale() {
        let mut q = QuantSketch::default();
        let n = 100_000u64;
        // Deterministic shuffled-ish order via a multiplicative walk.
        for i in 0..n {
            q.insert((i.wrapping_mul(48271) % n) as f64);
        }
        let mut scratch = Vec::new();
        for &rank in &[0.5, 0.9, 0.99, 0.999] {
            let est = q.estimate(rank, &mut scratch).unwrap();
            let rank_err = (est / n as f64 - rank).abs();
            assert!(
                rank_err < 0.02,
                "rank {rank}: estimate {est} ⇒ rank error {rank_err:.4}"
            );
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let build = || {
            let mut q = QuantSketch::default();
            for i in 0..10_000u64 {
                q.insert((i.wrapping_mul(16807) % 4096) as f64);
            }
            q
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn merge_matches_model_roughly() {
        let mut a = QuantSketch::default();
        let mut b = QuantSketch::default();
        for i in 0..5_000 {
            a.insert(f64::from(i));
            b.insert(f64::from(i + 5_000));
        }
        a.merge_from(&b);
        assert_eq!(a.count, 10_000);
        let mut scratch = Vec::new();
        let med = a.estimate(0.5, &mut scratch).unwrap();
        assert!((med - 5_000.0).abs() < 300.0, "median after merge: {med}");
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let mut q = QuantSketch::default();
        for i in 0..3_000 {
            q.insert(f64::from(i % 701));
        }
        let mut a = Vec::new();
        q.encode(&mut a);
        let back = QuantSketch::decode(&mut a.as_slice()).unwrap();
        assert_eq!(back, q);
        let mut b = Vec::new();
        back.encode(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(QuantSketch::decode(&mut [].as_slice()).is_err());
        let mut buf = Vec::new();
        encode::put_uvarint(&mut buf, 1); // count
        encode::put_uvarint(&mut buf, 0); // compactions
        encode::put_uvarint(&mut buf, 0); // nlevels = 0
        assert!(QuantSketch::decode(&mut buf.as_slice()).is_err());
    }
}
