//! Mergeable sketch kernels for approximate aggregators.
//!
//! Three summaries back the approximate plan leaves (ROADMAP: "sketch
//! family as first-class Agg plan nodes", blueprint: Memento, PAPERS.md):
//!
//! * [`hll::Hll`] — HyperLogLog cardinality for `countDistinct … approx`;
//! * [`topk::TopKSketch`] — space-saving heavy hitters for `topK`;
//! * [`quantile::QuantSketch`] — a KLL-style quantile summary for
//!   `percentile`.
//!
//! All three are **mergeable** (pane sharing and checkpoint compaction
//! come for free), allocate only at creation/growth (never per event),
//! and are **deterministic**: hashing goes through
//! [`railgun_types::hash::FxHasher`] with a fixed avalanche finalizer, and
//! quantile compaction parity is a counter, not an RNG — so a checkpoint
//! restore + suffix replay and a full replay converge to byte-identical
//! state (pinned by `tests/crash_recovery.rs`).
//!
//! ## Window modes
//!
//! Insert-only sketches cannot evict a single event, so sliding windows
//! use a **pane ring** ([`PaneRing`]): the window is cut into
//! [`NPANES`] insert-only panes plus an incrementally-maintained merged
//! view. Inserts hit the event's pane *and* the merged view (O(1));
//! eviction prunes whole expired panes and rebuilds the merged view only
//! when the live-pane set actually changed — amortized once per pane
//! width. Expiry is therefore pane-granular: the reported window covers
//! `[window, window + pane_width)`, the same trade Memento makes.
//! Tumbling windows need no ring (the state key already carries the
//! bucket) and infinite windows never expire — both run one sketch.

pub mod hll;
pub mod quantile;
pub mod topk;

use railgun_types::{RailgunError, Result, Value};

use hll::Hll;
use quantile::QuantSketch;
use topk::TopKSketch;

/// Panes per sliding window (pane width = window size / `NPANES`).
pub const NPANES: i64 = 8;

/// Hard cap on live panes (backfill/late-event safety net; normal
/// operation needs at most `NPANES + 1`).
const MAX_PANES: usize = 64;

/// splitmix64-style avalanche finalizer. FxHash is a fine bucket mixer
/// but its low bits are not uniform enough for HLL register selection /
/// rank extraction; one finalizer round fixes that.
#[inline]
pub fn finalize(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic 64-bit hash of a value, allocation-free. Type-tagged so
/// `Int(1)` and `Float(1.0)` stay distinct, matching the exact
/// `countDistinct` path (which compares encoded bytes).
pub fn hash_value(v: &Value) -> u64 {
    use std::hash::Hasher;
    let mut h = railgun_types::hash::FxHasher::default();
    match v {
        Value::Null => h.write_u8(0),
        Value::Bool(b) => {
            h.write_u8(1);
            h.write_u8(u8::from(*b));
        }
        Value::Int(n) => {
            h.write_u8(2);
            h.write_u64(*n as u64);
        }
        Value::Float(f) => {
            h.write_u8(3);
            h.write_u64(f.to_bits());
        }
        Value::Str(s) => {
            h.write_u8(4);
            h.write(s.as_bytes());
        }
    }
    finalize(h.finish())
}

/// A sketch that can live in a [`PaneRing`].
pub trait PaneSketch: Sized {
    /// An empty sketch with the same parameters.
    fn fresh(&self) -> Self;
    /// Fold `other` into `self` (same parameters).
    fn merge_from(&mut self, other: &Self);
    fn encode(&self, buf: &mut Vec<u8>);
    fn decode(buf: &mut &[u8]) -> Result<Self>;
}

/// Ring of insert-only panes plus an incrementally-maintained merged
/// view over all live panes (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct PaneRing<S> {
    pane_ms: i64,
    /// `(pane start ms, sketch)`, ascending by start.
    panes: Vec<(i64, S)>,
    /// Merge of every live pane; rebuilt only when panes are pruned.
    merged: S,
}

impl<S: PaneSketch> PaneRing<S> {
    pub fn new(pane_ms: i64, proto: S) -> Self {
        PaneRing {
            pane_ms: pane_ms.max(1),
            panes: Vec::new(),
            merged: proto,
        }
    }

    /// The merged view over all live panes.
    pub fn merged(&self) -> &S {
        &self.merged
    }

    /// Apply `op` to the pane owning `ts_ms` and to the merged view.
    pub fn apply(&mut self, ts_ms: i64, mut op: impl FnMut(&mut S)) {
        let start = ts_ms.div_euclid(self.pane_ms) * self.pane_ms;
        // The arriving event's pane is almost always the newest: search
        // from the back.
        let slot = match self.panes.iter().rposition(|(s, _)| *s <= start) {
            Some(i) if self.panes[i].0 == start => i,
            Some(i) => {
                self.panes.insert(i + 1, (start, self.merged.fresh()));
                i + 1
            }
            None => {
                self.panes.insert(0, (start, self.merged.fresh()));
                0
            }
        };
        op(&mut self.panes[slot].1);
        op(&mut self.merged);
        if self.panes.len() > MAX_PANES {
            self.panes.remove(0);
            self.rebuild();
        }
    }

    /// Drop panes that ended at or before `lower_ms` and rebuild the
    /// merged view if any died. Returns true iff the view changed.
    pub fn prune(&mut self, lower_ms: i64) -> bool {
        let dead = self
            .panes
            .iter()
            .take_while(|(s, _)| s.saturating_add(self.pane_ms) <= lower_ms)
            .count();
        if dead == 0 {
            return false;
        }
        self.panes.drain(..dead);
        self.rebuild();
        true
    }

    fn rebuild(&mut self) {
        let mut merged = self.merged.fresh();
        for (_, pane) in &self.panes {
            merged.merge_from(pane);
        }
        self.merged = merged;
    }

    pub fn encode(&self, buf: &mut Vec<u8>) {
        railgun_types::encode::put_ivarint(buf, self.pane_ms);
        railgun_types::encode::put_uvarint(buf, self.panes.len() as u64);
        for (start, pane) in &self.panes {
            railgun_types::encode::put_ivarint(buf, *start);
            pane.encode(buf);
        }
    }

    /// Decode a ring written by [`PaneRing::encode`]. `proto` supplies
    /// the parameters for an empty ring; the merged view is rebuilt
    /// deterministically from the panes.
    pub fn decode(buf: &mut &[u8], proto: S) -> Result<Self> {
        let pane_ms = railgun_types::encode::get_ivarint(buf)?;
        if pane_ms <= 0 {
            return Err(RailgunError::Corruption("bad pane width".into()));
        }
        let n = railgun_types::encode::get_uvarint(buf)? as usize;
        if n > MAX_PANES {
            return Err(RailgunError::Corruption(format!("{n} panes in blob")));
        }
        let mut panes = Vec::with_capacity(n);
        let mut prev = i64::MIN;
        for _ in 0..n {
            let start = railgun_types::encode::get_ivarint(buf)?;
            if start <= prev {
                return Err(RailgunError::Corruption("panes out of order".into()));
            }
            prev = start;
            panes.push((start, S::decode(buf)?));
        }
        let mut ring = PaneRing {
            pane_ms,
            panes,
            merged: proto,
        };
        ring.rebuild();
        Ok(ring)
    }
}

// ---------------------------------------------------------------------------
// SketchState: the per-(leaf, entity) aux-CF blob
// ---------------------------------------------------------------------------

/// Which sketch a plan leaf needs, with its parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SketchKind {
    /// HLL with `precision` register bits.
    Distinct { precision: u8 },
    TopK { k: u32 },
    Quantile,
}

const BLOB_HLL: u8 = 1;
const BLOB_HLL_PANES: u8 = 2;
const BLOB_TOPK: u8 = 3;
const BLOB_TOPK_PANES: u8 = 4;
const BLOB_QUANT: u8 = 5;
const BLOB_QUANT_PANES: u8 = 6;

/// The serialized sketch payload of one (leaf, entity): a single sketch
/// (tumbling/infinite windows) or a [`PaneRing`] (sliding windows).
/// This is the aux-CF blob that replaces the exact path's
/// one-entry-per-distinct-value layout.
#[derive(Debug, Clone, PartialEq)]
pub enum SketchState {
    Hll(Hll),
    HllPanes(PaneRing<Hll>),
    TopK(TopKSketch),
    TopKPanes(PaneRing<TopKSketch>),
    Quant(QuantSketch),
    QuantPanes(PaneRing<QuantSketch>),
}

impl SketchState {
    /// Fresh state for a leaf. `pane_ms = None` selects single-sketch
    /// mode (tumbling/infinite windows); `Some(w)` a sliding pane ring.
    pub fn new(kind: SketchKind, pane_ms: Option<i64>) -> Self {
        match (kind, pane_ms) {
            (SketchKind::Distinct { precision }, None) => SketchState::Hll(Hll::new(precision)),
            (SketchKind::Distinct { precision }, Some(w)) => {
                SketchState::HllPanes(PaneRing::new(w, Hll::new(precision)))
            }
            (SketchKind::TopK { k }, None) => SketchState::TopK(TopKSketch::new(k)),
            (SketchKind::TopK { k }, Some(w)) => {
                SketchState::TopKPanes(PaneRing::new(w, TopKSketch::new(k)))
            }
            (SketchKind::Quantile, None) => SketchState::Quant(QuantSketch::default()),
            (SketchKind::Quantile, Some(w)) => {
                SketchState::QuantPanes(PaneRing::new(w, QuantSketch::default()))
            }
        }
    }

    /// True iff this blob matches what `kind` + window mode expect — a
    /// mismatch means the aux CF holds a stale/foreign blob.
    pub fn matches(&self, kind: SketchKind, sliding: bool) -> bool {
        match (self, kind) {
            (SketchState::Hll(_), SketchKind::Distinct { .. }) => !sliding,
            (SketchState::HllPanes(_), SketchKind::Distinct { .. }) => sliding,
            (SketchState::TopK(_), SketchKind::TopK { .. }) => !sliding,
            (SketchState::TopKPanes(_), SketchKind::TopK { .. }) => sliding,
            (SketchState::Quant(_), SketchKind::Quantile) => !sliding,
            (SketchState::QuantPanes(_), SketchKind::Quantile) => sliding,
            _ => false,
        }
    }

    /// Record a distinct-count hash (HLL modes).
    pub fn insert_hash(&mut self, h: u64, ts_ms: i64) -> Result<()> {
        match self {
            SketchState::Hll(s) => s.insert_hash(h),
            SketchState::HllPanes(ring) => ring.apply(ts_ms, |s| s.insert_hash(h)),
            _ => return Err(kind_mismatch("countDistinct")),
        }
        Ok(())
    }

    /// Current cardinality estimate (HLL modes).
    pub fn distinct_estimate(&self) -> Result<i64> {
        match self {
            SketchState::Hll(s) => Ok(s.estimate()),
            SketchState::HllPanes(ring) => Ok(ring.merged().estimate()),
            _ => Err(kind_mismatch("countDistinct")),
        }
    }

    /// Record a heavy-hitter observation (topK modes).
    pub fn insert_topk(&mut self, v: &Value, h: u64, ts_ms: i64) -> Result<()> {
        match self {
            SketchState::TopK(s) => s.insert(v, h),
            SketchState::TopKPanes(ring) => ring.apply(ts_ms, |s| s.insert(v, h)),
            _ => return Err(kind_mismatch("topK")),
        }
        Ok(())
    }

    /// Current top-`k` snapshot, heaviest first (topK modes).
    pub fn topk_snapshot(&self) -> Result<Vec<(Value, i64)>> {
        match self {
            SketchState::TopK(s) => Ok(s.top()),
            SketchState::TopKPanes(ring) => Ok(ring.merged().top()),
            _ => Err(kind_mismatch("topK")),
        }
    }

    /// Record a sample (percentile modes).
    pub fn insert_sample(&mut self, x: f64, ts_ms: i64) -> Result<()> {
        match self {
            SketchState::Quant(s) => s.insert(x),
            SketchState::QuantPanes(ring) => ring.apply(ts_ms, |s| s.insert(x)),
            _ => return Err(kind_mismatch("percentile")),
        }
        Ok(())
    }

    /// Current estimate of the `rank` quantile (`0.0..=1.0`), using
    /// `scratch` for the weighted walk (percentile modes).
    pub fn quantile_estimate(
        &self,
        rank: f64,
        scratch: &mut Vec<(f64, u64)>,
    ) -> Result<Option<f64>> {
        match self {
            SketchState::Quant(s) => Ok(s.estimate(rank, scratch)),
            SketchState::QuantPanes(ring) => Ok(ring.merged().estimate(rank, scratch)),
            _ => Err(kind_mismatch("percentile")),
        }
    }

    /// Drop expired panes (sliding modes; no-op for single sketches).
    /// Returns true iff the merged view changed.
    pub fn prune(&mut self, lower_ms: i64) -> bool {
        match self {
            SketchState::HllPanes(ring) => ring.prune(lower_ms),
            SketchState::TopKPanes(ring) => ring.prune(lower_ms),
            SketchState::QuantPanes(ring) => ring.prune(lower_ms),
            _ => false,
        }
    }

    /// Serialized size in bytes (state accounting for the bench).
    pub fn encoded_len(&self) -> usize {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len()
    }

    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            SketchState::Hll(s) => {
                buf.push(BLOB_HLL);
                s.encode(buf);
            }
            SketchState::HllPanes(ring) => {
                buf.push(BLOB_HLL_PANES);
                railgun_types::encode::put_uvarint(buf, u64::from(ring.merged().precision()));
                ring.encode(buf);
            }
            SketchState::TopK(s) => {
                buf.push(BLOB_TOPK);
                s.encode(buf);
            }
            SketchState::TopKPanes(ring) => {
                buf.push(BLOB_TOPK_PANES);
                railgun_types::encode::put_uvarint(buf, u64::from(ring.merged().k()));
                ring.encode(buf);
            }
            SketchState::Quant(s) => {
                buf.push(BLOB_QUANT);
                s.encode(buf);
            }
            SketchState::QuantPanes(ring) => {
                buf.push(BLOB_QUANT_PANES);
                ring.encode(buf);
            }
        }
    }

    pub fn decode(buf: &mut &[u8]) -> Result<Self> {
        use bytes::Buf;
        if !buf.has_remaining() {
            return Err(RailgunError::Corruption("empty sketch blob".into()));
        }
        Ok(match buf.get_u8() {
            BLOB_HLL => SketchState::Hll(Hll::decode(buf)?),
            BLOB_HLL_PANES => {
                let p = railgun_types::encode::get_uvarint(buf)? as u8;
                SketchState::HllPanes(PaneRing::decode(buf, Hll::new(p))?)
            }
            BLOB_TOPK => SketchState::TopK(TopKSketch::decode(buf)?),
            BLOB_TOPK_PANES => {
                let k = railgun_types::encode::get_uvarint(buf)? as u32;
                SketchState::TopKPanes(PaneRing::decode(buf, TopKSketch::new(k))?)
            }
            BLOB_QUANT => SketchState::Quant(QuantSketch::decode(buf)?),
            BLOB_QUANT_PANES => {
                SketchState::QuantPanes(PaneRing::decode(buf, QuantSketch::default())?)
            }
            other => {
                return Err(RailgunError::Corruption(format!(
                    "unknown sketch blob tag {other}"
                )))
            }
        })
    }
}

fn kind_mismatch(what: &str) -> RailgunError {
    RailgunError::Corruption(format!("sketch blob does not match a {what} leaf"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalizer_spreads_low_bits() {
        let mut low = std::collections::HashSet::new();
        for i in 0u64..4096 {
            low.insert(finalize(i) & 0xfff);
        }
        assert!(low.len() > 2500, "got {} distinct low-12-bit values", low.len());
    }

    #[test]
    fn hash_value_distinguishes_types_and_values() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(1),
            Value::Float(1.0),
            Value::Str("1".into()),
            Value::Str("2".into()),
        ];
        let hashes: std::collections::HashSet<u64> = vals.iter().map(hash_value).collect();
        assert_eq!(hashes.len(), vals.len());
        assert_eq!(hash_value(&Value::Int(7)), hash_value(&Value::Int(7)));
    }

    #[test]
    fn pane_ring_prunes_and_rebuilds() {
        let mut ring = PaneRing::new(10, Hll::new(8));
        for ts in [0i64, 5, 12, 25, 31] {
            ring.apply(ts, |s| s.insert_hash(finalize(ts as u64)));
        }
        assert_eq!(ring.merged().estimate(), 5);
        // Everything below 20ms dies (panes [0,10) and [10,20)).
        assert!(ring.prune(20));
        assert_eq!(ring.merged().estimate(), 2, "events at 25 and 31 remain");
        assert!(!ring.prune(20), "second prune is a no-op");
    }

    #[test]
    fn sketch_state_roundtrips_byte_identically() {
        let mut states = [
            SketchState::new(SketchKind::Distinct { precision: 10 }, None),
            SketchState::new(SketchKind::Distinct { precision: 10 }, Some(100)),
            SketchState::new(SketchKind::TopK { k: 3 }, None),
            SketchState::new(SketchKind::TopK { k: 3 }, Some(100)),
            SketchState::new(SketchKind::Quantile, None),
            SketchState::new(SketchKind::Quantile, Some(100)),
        ];
        for (i, st) in states.iter_mut().enumerate() {
            for j in 0..200i64 {
                let v = Value::Int(j % 37);
                match st {
                    SketchState::Hll(_) | SketchState::HllPanes(_) => {
                        st.insert_hash(hash_value(&v), j).unwrap()
                    }
                    SketchState::TopK(_) | SketchState::TopKPanes(_) => {
                        st.insert_topk(&v, hash_value(&v), j).unwrap()
                    }
                    _ => st.insert_sample(j as f64, j).unwrap(),
                }
            }
            let mut a = Vec::new();
            st.encode(&mut a);
            let back = SketchState::decode(&mut a.as_slice()).unwrap();
            let mut b = Vec::new();
            back.encode(&mut b);
            assert_eq!(a, b, "state {i} must roundtrip byte-identically");
            // Pane rings rebuild their merged view canonically on decode
            // (the live view reflects insertion order), so structural
            // equality is only guaranteed from the second decode onward.
            let again = SketchState::decode(&mut b.as_slice()).unwrap();
            assert_eq!(back, again, "state {i} decode must be stable");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(SketchState::decode(&mut [].as_slice()).is_err());
        assert!(SketchState::decode(&mut [99u8].as_slice()).is_err());
    }
}
