//! HyperLogLog cardinality sketch with 6-bit packed registers.
//!
//! Standard-error model: `σ ≈ 1.04 / √m` with `m = 2^p` registers, so
//! `countDistinct(x) approx 0.02` picks the smallest `p` whose σ is at
//! or below the asked-for error. Registers are packed 6 bits each
//! (`m · 6 / 8` bytes — 3 KB at p = 12), and the harmonic sum plus
//! zero-register count are maintained incrementally so both insert and
//! estimate are O(1) with **no per-event allocation**. Inserting the
//! same hash twice is a no-op, which makes replay after a crash
//! idempotent by construction.

use railgun_types::{RailgunError, Result};

use super::PaneSketch;

/// Smallest supported precision (16 registers).
pub const MIN_PRECISION: u8 = 4;
/// Largest supported precision (65 536 registers, 48 KB).
pub const MAX_PRECISION: u8 = 16;

/// Map a configured relative error (basis points, `err_bp = err · 10⁴`)
/// to the smallest register precision whose standard error covers it,
/// plus one guard bit: near the linear-counting crossover (`n ≈ 2.5m`)
/// the raw estimator's bias exceeds σ (the region HLL++ patches with an
/// empirical bias table), and doubling `m` pushes the crossover past it.
pub fn precision_for_err_bp(err_bp: u32) -> u8 {
    let err = f64::from(err_bp) / 10_000.0;
    let m_needed = (1.04 / err).powi(2);
    let p = m_needed.log2().ceil() as i64 + 1;
    p.clamp(i64::from(MIN_PRECISION), i64::from(MAX_PRECISION)) as u8
}

/// `2^-x` for register values (x ≤ 64), via exponent-field construction.
#[inline]
fn pow2_neg(x: u8) -> f64 {
    f64::from_bits((1023 - u64::from(x)) << 52)
}

#[derive(Debug, Clone, PartialEq)]
pub struct Hll {
    p: u8,
    /// `2^p` 6-bit registers, little-end-first packed.
    registers: Vec<u8>,
    /// Incremental `Σ 2^-reg[i]` (the harmonic-mean denominator).
    sum: f64,
    /// Incremental count of zero registers (linear-counting input).
    zeros: u32,
}

impl Hll {
    pub fn new(p: u8) -> Self {
        let p = p.clamp(MIN_PRECISION, MAX_PRECISION);
        let m = 1usize << p;
        Hll {
            p,
            registers: vec![0; (m * 6).div_ceil(8)],
            sum: m as f64,
            zeros: m as u32,
        }
    }

    pub fn precision(&self) -> u8 {
        self.p
    }

    #[inline]
    fn get(&self, i: usize) -> u8 {
        let bit = i * 6;
        let byte = bit / 8;
        let shift = bit % 8;
        let lo = u16::from(self.registers[byte]);
        let hi = u16::from(*self.registers.get(byte + 1).unwrap_or(&0));
        (((lo | (hi << 8)) >> shift) & 0x3f) as u8
    }

    #[inline]
    fn set(&mut self, i: usize, v: u8) {
        let bit = i * 6;
        let byte = bit / 8;
        let shift = bit % 8;
        let mask = 0x3fu16 << shift;
        let word = u16::from(self.registers[byte])
            | self.registers.get(byte + 1).map_or(0, |b| u16::from(*b) << 8);
        let word = (word & !mask) | (u16::from(v) << shift);
        self.registers[byte] = word as u8;
        if let Some(b) = self.registers.get_mut(byte + 1) {
            *b = (word >> 8) as u8;
        }
    }

    /// Record a (pre-finalized) 64-bit hash. O(1), allocation-free,
    /// idempotent for repeated hashes.
    pub fn insert_hash(&mut self, h: u64) {
        let idx = (h >> (64 - self.p)) as usize;
        let rest = h << self.p;
        // Rank of the first set bit in the remaining 64 - p bits; all
        // zero ⇒ the maximum rank. Always ≤ 61 for p ≥ 4, fits 6 bits.
        let rho = if rest == 0 {
            64 - self.p + 1
        } else {
            rest.leading_zeros() as u8 + 1
        };
        let old = self.get(idx);
        if rho > old {
            self.sum += pow2_neg(rho) - pow2_neg(old);
            if old == 0 {
                self.zeros -= 1;
            }
            self.set(idx, rho);
        }
    }

    /// Current cardinality estimate, with the standard linear-counting
    /// small-range correction.
    pub fn estimate(&self) -> i64 {
        let m = (1usize << self.p) as f64;
        let alpha = match 1usize << self.p {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let raw = alpha * m * m / self.sum;
        let est = if raw <= 2.5 * m && self.zeros > 0 {
            m * (m / f64::from(self.zeros)).ln()
        } else {
            raw
        };
        est.round() as i64
    }
}

impl PaneSketch for Hll {
    fn fresh(&self) -> Self {
        Hll::new(self.p)
    }

    /// Register-wise max: exactly the sketch of the union of the two
    /// input streams, hence associative and commutative (pinned by
    /// proptests).
    fn merge_from(&mut self, other: &Self) {
        debug_assert_eq!(self.p, other.p, "merging HLLs of different precision");
        let m = 1usize << self.p;
        for i in 0..m {
            let o = other.get(i);
            if o > self.get(i) {
                self.set(i, o);
            }
        }
        // Recompute the incremental stats once per merge.
        self.sum = 0.0;
        self.zeros = 0;
        for i in 0..m {
            let r = self.get(i);
            self.sum += pow2_neg(r);
            if r == 0 {
                self.zeros += 1;
            }
        }
    }

    /// Layout: `[p: u8][registers: (2^p·6+7)/8 bytes]`. The harmonic sum
    /// and zero count are recomputed on decode, so the roundtrip is
    /// byte-identical by construction.
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(self.p);
        buf.extend_from_slice(&self.registers);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        use bytes::Buf;
        if !buf.has_remaining() {
            return Err(RailgunError::Corruption("truncated HLL blob".into()));
        }
        let p = buf.get_u8();
        if !(MIN_PRECISION..=MAX_PRECISION).contains(&p) {
            return Err(RailgunError::Corruption(format!("bad HLL precision {p}")));
        }
        let m = 1usize << p;
        let nbytes = (m * 6).div_ceil(8);
        if buf.remaining() < nbytes {
            return Err(RailgunError::Corruption("truncated HLL registers".into()));
        }
        let mut hll = Hll::new(p);
        hll.registers.copy_from_slice(&buf[..nbytes]);
        buf.advance(nbytes);
        hll.sum = 0.0;
        hll.zeros = 0;
        for i in 0..m {
            let r = hll.get(i);
            if r > 64 - p + 1 {
                return Err(RailgunError::Corruption(format!("bad HLL register {r}")));
            }
            hll.sum += pow2_neg(r);
            if r == 0 {
                hll.zeros += 1;
            }
        }
        Ok(hll)
    }
}

#[cfg(test)]
mod tests {
    use super::super::finalize;
    use super::*;

    #[test]
    fn precision_for_error_matches_sigma_model() {
        // σ model picks 2% → p=12, 1% → p=14, 10% → p=7; the crossover
        // guard bit adds one to each.
        assert_eq!(precision_for_err_bp(200), 13);
        assert_eq!(precision_for_err_bp(100), 15);
        assert_eq!(precision_for_err_bp(1000), 8);
        // Clamped at both ends.
        assert_eq!(precision_for_err_bp(5000), MIN_PRECISION);
        assert_eq!(precision_for_err_bp(1), MAX_PRECISION);
    }

    #[test]
    fn registers_pack_and_unpack() {
        let mut h = Hll::new(MIN_PRECISION);
        for i in 0..16 {
            h.set(i, (i as u8 * 3) % 64);
        }
        for i in 0..16 {
            assert_eq!(h.get(i), (i as u8 * 3) % 64, "register {i}");
        }
    }

    #[test]
    fn estimates_within_a_few_sigma() {
        for &n in &[100u64, 10_000, 200_000] {
            let mut h = Hll::new(12);
            for i in 0..n {
                h.insert_hash(finalize(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
            }
            let est = h.estimate() as f64;
            let sigma = 1.04 / (4096f64).sqrt();
            let err = (est - n as f64).abs() / n as f64;
            assert!(
                err < 4.0 * sigma,
                "n={n}: estimate {est} off by {:.2}% (> 4σ)",
                err * 100.0
            );
        }
    }

    #[test]
    fn insert_is_idempotent() {
        let mut h = Hll::new(10);
        for i in 0..1000u64 {
            h.insert_hash(finalize(i));
        }
        let snap = h.clone();
        for i in 0..1000u64 {
            h.insert_hash(finalize(i));
        }
        assert_eq!(h, snap, "replaying the same hashes must not change state");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = Hll::new(11);
        let mut b = Hll::new(11);
        let mut union = Hll::new(11);
        for i in 0..5000u64 {
            let h = finalize(i);
            if i % 2 == 0 {
                a.insert_hash(h);
            } else {
                b.insert_hash(h);
            }
            union.insert_hash(h);
        }
        a.merge_from(&b);
        assert_eq!(a, union);
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let mut h = Hll::new(9);
        for i in 0..500u64 {
            h.insert_hash(finalize(i));
        }
        let mut a = Vec::new();
        h.encode(&mut a);
        let back = Hll::decode(&mut a.as_slice()).unwrap();
        assert_eq!(back, h);
        let mut b = Vec::new();
        back.encode(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn decode_rejects_truncation_and_bad_precision() {
        assert!(Hll::decode(&mut [].as_slice()).is_err());
        assert!(Hll::decode(&mut [3u8].as_slice()).is_err());
        assert!(Hll::decode(&mut [12u8, 0, 0].as_slice()).is_err());
    }
}
