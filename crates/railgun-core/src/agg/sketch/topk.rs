//! Space-saving heavy hitters for `topK(field, k)`.
//!
//! Classic Metwally et al. space-saving with `cap = max(8k, 64)`
//! monitored slots: a hit increments its slot; a miss over capacity
//! evicts the current minimum, charging its count as the newcomer's
//! error bound. The reported top-k counts overestimate by at most the
//! evicted minimum (`err` per slot tracks exactly that), and any value
//! with true frequency above `n / cap` is guaranteed monitored.
//!
//! Values are identified by their finalized 64-bit hash (collisions
//! conflate two values — at 2⁻⁶⁴ per pair this is far below the sketch's
//! own error). Ties in the top-k report break by hash, which makes the
//! report deterministic across replays and merge orders.

use railgun_types::{encode, RailgunError, Result, Value};
use railgun_types::hash::FastHashMap;

use super::PaneSketch;

#[derive(Debug, Clone, PartialEq)]
struct Slot {
    hash: u64,
    value: Value,
    count: i64,
    /// Overestimation bound inherited from the slot evicted for us.
    err: i64,
}

#[derive(Debug, Clone, PartialEq)]
pub struct TopKSketch {
    k: u32,
    cap: usize,
    slots: Vec<Slot>,
    /// value-hash → slot index.
    index: FastHashMap<u64, usize>,
}

impl TopKSketch {
    pub fn new(k: u32) -> Self {
        let k = k.max(1);
        let cap = (k as usize * 8).clamp(64, 4096);
        TopKSketch {
            k,
            cap,
            slots: Vec::new(),
            index: FastHashMap::default(),
        }
    }

    pub fn k(&self) -> u32 {
        self.k
    }

    /// Record one observation of `v` (hashed as `h`). O(1) for
    /// monitored values; an eviction is a linear scan over `cap` slots.
    pub fn insert(&mut self, v: &Value, h: u64) {
        if let Some(&i) = self.index.get(&h) {
            self.slots[i].count += 1;
            return;
        }
        if self.slots.len() < self.cap {
            self.index.insert(h, self.slots.len());
            self.slots.push(Slot {
                hash: h,
                value: v.clone(),
                count: 1,
                err: 0,
            });
            return;
        }
        // Space-saving eviction: replace the minimum-count slot (ties by
        // hash for determinism) and inherit its count as our error.
        let (mut min_i, mut min) = (0usize, (i64::MAX, u64::MAX));
        for (i, s) in self.slots.iter().enumerate() {
            if (s.count, s.hash) < min {
                min = (s.count, s.hash);
                min_i = i;
            }
        }
        let old = &mut self.slots[min_i];
        self.index.remove(&old.hash);
        self.index.insert(h, min_i);
        *old = Slot {
            hash: h,
            value: v.clone(),
            count: min.0 + 1,
            err: min.0,
        };
    }

    /// The top `k` monitored values, heaviest first; ties break by hash
    /// so the report is deterministic.
    pub fn top(&self) -> Vec<(Value, i64)> {
        let mut order: Vec<&Slot> = self.slots.iter().collect();
        order.sort_by(|a, b| b.count.cmp(&a.count).then(a.hash.cmp(&b.hash)));
        order
            .into_iter()
            .take(self.k as usize)
            .map(|s| (s.value.clone(), s.count))
            .collect()
    }
}

impl PaneSketch for TopKSketch {
    fn fresh(&self) -> Self {
        TopKSketch::new(self.k)
    }

    /// Combine monitored sets: counts add for common values; the union
    /// is then cut back to `cap` keeping the heaviest (ties by hash).
    /// Exact — and order-independent — whenever the union fits in
    /// `cap`; beyond that the cut charges the usual space-saving error.
    fn merge_from(&mut self, other: &Self) {
        for s in &other.slots {
            if let Some(&i) = self.index.get(&s.hash) {
                self.slots[i].count += s.count;
                self.slots[i].err += s.err;
            } else {
                self.slots.push(s.clone());
            }
        }
        self.slots
            .sort_by(|a, b| b.count.cmp(&a.count).then(a.hash.cmp(&b.hash)));
        self.slots.truncate(self.cap);
        self.index = self
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| (s.hash, i))
            .collect();
    }

    /// Layout: `[k][cap][n][(hash: u64 LE, value, count, err)*]` with
    /// slots in internal order, so the roundtrip is byte-identical.
    fn encode(&self, buf: &mut Vec<u8>) {
        encode::put_uvarint(buf, u64::from(self.k));
        encode::put_uvarint(buf, self.cap as u64);
        encode::put_uvarint(buf, self.slots.len() as u64);
        for s in &self.slots {
            buf.extend_from_slice(&s.hash.to_le_bytes());
            encode::put_value(buf, &s.value);
            encode::put_ivarint(buf, s.count);
            encode::put_ivarint(buf, s.err);
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        use bytes::Buf;
        let k = encode::get_uvarint(buf)? as u32;
        let cap = encode::get_uvarint(buf)? as usize;
        let n = encode::get_uvarint(buf)? as usize;
        if k == 0 || cap == 0 || n > cap || cap > 1 << 20 {
            return Err(RailgunError::Corruption("bad topK sketch header".into()));
        }
        let mut slots = Vec::with_capacity(n);
        let mut index = FastHashMap::default();
        for i in 0..n {
            if buf.remaining() < 8 {
                return Err(RailgunError::Corruption("truncated topK slot".into()));
            }
            let hash = buf.get_u64_le();
            let value = encode::get_value(buf)?;
            let count = encode::get_ivarint(buf)?;
            let err = encode::get_ivarint(buf)?;
            if index.insert(hash, i).is_some() {
                return Err(RailgunError::Corruption("duplicate topK slot".into()));
            }
            slots.push(Slot {
                hash,
                value,
                count,
                err,
            });
        }
        Ok(TopKSketch {
            k,
            cap,
            slots,
            index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::hash_value;
    use super::*;

    fn sv(s: &str) -> Value {
        Value::Str(s.to_string())
    }

    #[test]
    fn exact_when_under_capacity() {
        let mut tk = TopKSketch::new(2);
        for (name, n) in [("a", 50), ("b", 30), ("c", 7)] {
            let v = sv(name);
            let h = hash_value(&v);
            for _ in 0..n {
                tk.insert(&v, h);
            }
        }
        assert_eq!(tk.top(), vec![(sv("a"), 50), (sv("b"), 30)]);
    }

    #[test]
    fn heavy_hitters_survive_eviction_pressure() {
        let mut tk = TopKSketch::new(3);
        // Three heavy keys among a long tail that forces evictions.
        for i in 0..20_000u64 {
            let v = if i % 4 == 0 {
                sv("hot1")
            } else if i % 4 == 1 {
                sv("hot2")
            } else {
                Value::Int((i % 1000) as i64)
            };
            tk.insert(&v.clone(), hash_value(&v));
        }
        let top: Vec<String> = tk
            .top()
            .iter()
            .map(|(v, _)| match v {
                Value::Str(s) => s.clone(),
                other => format!("{other:?}"),
            })
            .collect();
        assert!(top.contains(&"hot1".to_string()), "top = {top:?}");
        assert!(top.contains(&"hot2".to_string()), "top = {top:?}");
    }

    #[test]
    fn merge_is_exact_and_commutative_under_capacity() {
        let mut a = TopKSketch::new(2);
        let mut b = TopKSketch::new(2);
        for (name, n) in [("x", 10), ("y", 5)] {
            let v = sv(name);
            let h = hash_value(&v);
            for _ in 0..n {
                a.insert(&v, h);
            }
        }
        for (name, n) in [("x", 3), ("z", 8)] {
            let v = sv(name);
            let h = hash_value(&v);
            for _ in 0..n {
                b.insert(&v, h);
            }
        }
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab.top(), ba.top());
        assert_eq!(ab.top(), vec![(sv("x"), 13), (sv("z"), 8)]);
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let mut tk = TopKSketch::new(4);
        for i in 0..500u64 {
            let v = Value::Int((i % 97) as i64);
            tk.insert(&v, hash_value(&v));
        }
        let mut a = Vec::new();
        tk.encode(&mut a);
        let back = TopKSketch::decode(&mut a.as_slice()).unwrap();
        assert_eq!(back, tk);
        let mut b = Vec::new();
        back.encode(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(TopKSketch::decode(&mut [].as_slice()).is_err());
        let mut buf = Vec::new();
        encode::put_uvarint(&mut buf, 0); // k = 0
        encode::put_uvarint(&mut buf, 64);
        encode::put_uvarint(&mut buf, 0);
        assert!(TopKSketch::decode(&mut buf.as_slice()).is_err());
    }
}
