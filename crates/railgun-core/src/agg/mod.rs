//! Incremental window aggregators (paper §4.1.3).
//!
//! Every aggregator supports O(1)-ish `insert` and `evict` so real-time
//! sliding windows can update metrics with exactly the events entering and
//! leaving the window — never recomputing from scratch (the failure mode of
//! the Flink custom solution \[21\], reproduced in `railgun-baseline`).
//!
//! State is serialized to bytes and stored per `(plan leaf, entity)` key in
//! the task processor's state store, matching the paper's description:
//! "each key holds the aggregation current value for the specific window
//! and the specific entity", with auxiliary data per type:
//!
//! * `avg` carries a count; `stdDev` the Welford triple \[50\];
//! * `max`/`min` a monotonic deque \[30\] ([`deque`]);
//! * `countDistinct` keeps per-value counts in a dedicated **column
//!   family** of the state store;
//! * the approximate family (`countDistinct … approx`, `topK`,
//!   `percentile`) keeps **one serialized sketch blob** per
//!   (leaf, entity) in the same column family ([`sketch`]), cached
//!   in memory ([`AggScratch`]) and flushed at checkpoints.

pub mod deque;
pub mod sketch;

use std::cell::RefCell;

use bytes::Buf;
use railgun_store::{ColumnFamilyId, Db};
use railgun_types::encode::{
    get_ivarint, get_uvarint, get_value, put_ivarint, put_uvarint, put_value,
};
use railgun_types::hash::FastHashMap;
use railgun_types::{RailgunError, Result, Value};

use crate::lang::AggFunc;
use deque::{max_keeps, min_keeps, MinMaxDeque};
use sketch::{SketchKind, SketchState};

/// Per-task scratch shared by every aggregator the task drives: reusable
/// key/estimate buffers (no per-event allocation on the aux paths) and
/// the in-memory sketch cache.
///
/// The cache is the reason the approximate path can beat the exact one:
/// a sketch blob is kilobytes, so decoding and re-encoding it per event
/// would drown the O(1) kernel update. Instead blobs live here between
/// events and hit the store only at checkpoints (`flush`) or on cache
/// eviction. Crash safety is unaffected: recovery always starts from a
/// checkpoint image (which sees a flushed cache) or from an empty store
/// with a full ordered replay, and the kernels are deterministic under
/// replay, so both arms converge (pinned by `tests/crash_recovery.rs`).
#[derive(Default)]
pub struct AggScratch {
    /// Reusable aux/blob key buffer (the exact path's per-event
    /// `aux_key` allocation removed).
    key_buf: RefCell<Vec<u8>>,
    /// Reusable encode buffer for blob flushes.
    blob_buf: RefCell<Vec<u8>>,
    /// Reusable weighted-walk buffer for quantile estimates.
    rank_buf: RefCell<Vec<(f64, u64)>>,
    /// state key → live sketch, with a dirty bit since the last flush.
    cache: RefCell<FastHashMap<Vec<u8>, (SketchState, bool)>>,
}

/// Max cached sketches per task before least-recently-inserted entries
/// are flushed out (bounds memory at ~tens of MB worst case).
const SKETCH_CACHE_CAP: usize = 1024;

impl AggScratch {
    /// Run `f` against the live sketch for `state_key`, loading the blob
    /// from the store (or creating a fresh sketch) on cache miss. The
    /// sketch is marked dirty; it reaches the store on the next `flush`.
    fn with_sketch<R>(
        &self,
        ctx: &AggContext<'_>,
        kind: SketchKind,
        f: impl FnOnce(&mut SketchState, &AggScratch) -> Result<R>,
    ) -> Result<R> {
        let mut cache = self.cache.borrow_mut();
        if !cache.contains_key(ctx.state_key) {
            if cache.len() >= SKETCH_CACHE_CAP {
                self.flush_locked(&mut cache, ctx.db, ctx.aux_cf)?;
                cache.clear();
            }
            let sliding = ctx.window_ms > 0;
            let loaded = {
                let mut key = self.key_buf.borrow_mut();
                blob_key_into(&mut key, ctx.state_key);
                ctx.db.get(ctx.aux_cf, &key)?
            };
            let sketch = match loaded {
                Some(raw) => {
                    let st = SketchState::decode(&mut raw.as_slice())?;
                    if !st.matches(kind, sliding) {
                        return Err(RailgunError::Corruption(
                            "sketch blob does not match leaf parameters".into(),
                        ));
                    }
                    st
                }
                None => SketchState::new(
                    kind,
                    sliding.then(|| (ctx.window_ms / sketch::NPANES).max(1)),
                ),
            };
            cache.insert(ctx.state_key.to_vec(), (sketch, true));
        }
        let entry = cache.get_mut(ctx.state_key).expect("just inserted");
        entry.1 = true;
        f(&mut entry.0, self)
    }

    /// Write every dirty cached sketch to the aux CF. Called on
    /// checkpoint so the on-disk image is complete.
    pub fn flush(&self, db: &Db, aux_cf: ColumnFamilyId) -> Result<()> {
        self.flush_locked(&mut self.cache.borrow_mut(), db, aux_cf)
    }

    fn flush_locked(
        &self,
        cache: &mut FastHashMap<Vec<u8>, (SketchState, bool)>,
        db: &Db,
        aux_cf: ColumnFamilyId,
    ) -> Result<()> {
        let mut key = self.key_buf.borrow_mut();
        let mut blob = self.blob_buf.borrow_mut();
        for (state_key, (sketch, dirty)) in cache.iter_mut() {
            if !*dirty {
                continue;
            }
            blob_key_into(&mut key, state_key);
            blob.clear();
            sketch.encode(&mut blob);
            db.put(aux_cf, &key, &blob)?;
            *dirty = false;
        }
        Ok(())
    }

    /// Drop cached sketches whose state key starts with `prefix`
    /// (query unregistration; the store-side blobs are deleted by the
    /// caller's aux-CF scan).
    pub fn drop_prefix(&self, prefix: &[u8]) {
        self.cache
            .borrow_mut()
            .retain(|k, _| !k.starts_with(prefix));
    }
}

/// Where an aggregator's auxiliary data lives, plus the window geometry
/// sketch-backed aggregators need for pane routing.
pub struct AggContext<'a> {
    pub db: &'a Db,
    /// Column family for `countDistinct` per-value counts and sketch
    /// blobs.
    pub aux_cf: ColumnFamilyId,
    /// The state key of this (leaf, entity) — aux keys are derived from it.
    pub state_key: &'a [u8],
    /// Timestamp (ms) of the event being inserted/evicted.
    pub event_ts_ms: i64,
    /// Lower bound (ms) of the live window (events below are expired).
    pub window_lower_ms: i64,
    /// Sliding-window size in ms; `0` means tumbling/infinite (sketches
    /// run in single-sketch mode, no pane ring).
    pub window_ms: i64,
    /// Per-task scratch buffers and the sketch cache.
    pub scratch: &'a AggScratch,
}

impl<'a> AggContext<'a> {
    /// Context for a tumbling/infinite-window leaf (no pane ring).
    pub fn new(
        db: &'a Db,
        aux_cf: ColumnFamilyId,
        state_key: &'a [u8],
        scratch: &'a AggScratch,
    ) -> Self {
        AggContext {
            db,
            aux_cf,
            state_key,
            event_ts_ms: 0,
            window_lower_ms: i64::MIN,
            window_ms: 0,
            scratch,
        }
    }

    /// Attach sliding-window geometry (event timestamp, window lower
    /// bound, window size) for pane-ring routing.
    pub fn windowed(mut self, event_ts_ms: i64, window_lower_ms: i64, window_ms: i64) -> Self {
        self.event_ts_ms = event_ts_ms;
        self.window_lower_ms = window_lower_ms;
        self.window_ms = window_ms;
        self
    }
}

/// In-memory aggregation state for one (metric leaf, entity).
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    Count { count: i64 },
    Sum { sum: f64 },
    Avg { sum: f64, count: i64 },
    StdDev { count: i64, mean: f64, m2: f64 },
    Max { deque: MinMaxDeque },
    Min { deque: MinMaxDeque },
    Last { count: i64, last: Option<Value> },
    Prev {
        count: i64,
        last: Option<Value>,
        prev: Option<Value>,
    },
    CountDistinct { distinct: i64 },
    /// HLL-backed `countDistinct … approx`: the cached estimate plus the
    /// configured error (basis points). The sketch itself lives in the
    /// aux CF as one blob per (leaf, entity).
    ApproxDistinct { estimate: i64, err_bp: u32 },
    /// Space-saving `topK`: the current top-k snapshot, heaviest first.
    TopK { top: Vec<(Value, i64)>, k: u32 },
    /// Quantile-sketch `percentile`: the cached estimate for the
    /// configured rank (basis points of a percent, `9900` = p99).
    Percentile { estimate: Option<f64>, rank_bp: u32 },
}

const TAG_COUNT: u8 = 1;
const TAG_SUM: u8 = 2;
const TAG_AVG: u8 = 3;
const TAG_STDDEV: u8 = 4;
const TAG_MAX: u8 = 5;
const TAG_MIN: u8 = 6;
const TAG_LAST: u8 = 7;
const TAG_PREV: u8 = 8;
const TAG_DISTINCT: u8 = 9;
const TAG_APPROX_DISTINCT: u8 = 10;
const TAG_TOPK: u8 = 11;
const TAG_PERCENTILE: u8 = 12;

impl AggState {
    /// Fresh state for a function.
    pub fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => AggState::Count { count: 0 },
            AggFunc::Sum => AggState::Sum { sum: 0.0 },
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggFunc::StdDev => AggState::StdDev {
                count: 0,
                mean: 0.0,
                m2: 0.0,
            },
            AggFunc::Max => AggState::Max {
                deque: MinMaxDeque::default(),
            },
            AggFunc::Min => AggState::Min {
                deque: MinMaxDeque::default(),
            },
            AggFunc::Last => AggState::Last {
                count: 0,
                last: None,
            },
            AggFunc::Prev => AggState::Prev {
                count: 0,
                last: None,
                prev: None,
            },
            AggFunc::CountDistinct => AggState::CountDistinct { distinct: 0 },
            AggFunc::ApproxCountDistinct { err_bp } => AggState::ApproxDistinct {
                estimate: 0,
                err_bp,
            },
            AggFunc::TopK { k } => AggState::TopK { top: Vec::new(), k },
            AggFunc::Percentile { rank_bp } => AggState::Percentile {
                estimate: None,
                rank_bp,
            },
        }
    }

    /// Apply an entering value. `v` is `None` for `count(*)` over an event
    /// with no projected field; NULL values are ignored by value
    /// aggregations (SQL semantics).
    pub fn insert(&mut self, v: Option<&Value>, ctx: &AggContext<'_>) -> Result<()> {
        match self {
            AggState::Count { count } => {
                // count(*) counts rows; count(field) counts non-null.
                if v.is_none_or(|v| !v.is_null()) {
                    *count += 1;
                }
            }
            AggState::Sum { sum } => {
                if let Some(x) = v.and_then(Value::as_f64) {
                    *sum += x;
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(x) = v.and_then(Value::as_f64) {
                    *sum += x;
                    *count += 1;
                }
            }
            AggState::StdDev { count, mean, m2 } => {
                if let Some(x) = v.and_then(Value::as_f64) {
                    *count += 1;
                    let d = x - *mean;
                    *mean += d / *count as f64;
                    *m2 += d * (x - *mean);
                }
            }
            AggState::Max { deque } => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    deque.insert(v, max_keeps);
                }
            }
            AggState::Min { deque } => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    deque.insert(v, min_keeps);
                }
            }
            AggState::Last { count, last } => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    *count += 1;
                    *last = Some(v.clone());
                }
            }
            AggState::Prev { count, last, prev } => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    *count += 1;
                    *prev = last.take();
                    *last = Some(v.clone());
                }
            }
            AggState::CountDistinct { distinct } => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    let mut key = ctx.scratch.key_buf.borrow_mut();
                    aux_key_into(&mut key, ctx.state_key, v);
                    let n = read_u64(ctx.db, ctx.aux_cf, &key)?;
                    if n == 0 {
                        *distinct += 1;
                    }
                    write_u64(ctx.db, ctx.aux_cf, &key, n + 1)?;
                }
            }
            AggState::ApproxDistinct { estimate, err_bp } => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    let h = sketch::hash_value(v);
                    let kind = SketchKind::Distinct {
                        precision: sketch::hll::precision_for_err_bp(*err_bp),
                    };
                    *estimate = ctx.scratch.with_sketch(ctx, kind, |st, _| {
                        st.insert_hash(h, ctx.event_ts_ms)?;
                        st.distinct_estimate()
                    })?;
                }
            }
            AggState::TopK { top, k } => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    let h = sketch::hash_value(v);
                    let kind = SketchKind::TopK { k: *k };
                    *top = ctx.scratch.with_sketch(ctx, kind, |st, _| {
                        st.insert_topk(v, h, ctx.event_ts_ms)?;
                        st.topk_snapshot()
                    })?;
                }
            }
            AggState::Percentile { estimate, rank_bp } => {
                if let Some(x) = v.and_then(Value::as_f64) {
                    let rank = f64::from(*rank_bp) / 10_000.0;
                    *estimate =
                        ctx.scratch
                            .with_sketch(ctx, SketchKind::Quantile, |st, scratch| {
                                st.insert_sample(x, ctx.event_ts_ms)?;
                                st.quantile_estimate(rank, &mut scratch.rank_buf.borrow_mut())
                            })?;
                }
            }
        }
        Ok(())
    }

    /// Apply an expiring value. Must mirror a previous `insert` with the
    /// same value (the window operator guarantees this).
    pub fn evict(&mut self, v: Option<&Value>, ctx: &AggContext<'_>) -> Result<()> {
        match self {
            AggState::Count { count } => {
                if v.is_none_or(|v| !v.is_null()) {
                    *count -= 1;
                }
            }
            AggState::Sum { sum } => {
                if let Some(x) = v.and_then(Value::as_f64) {
                    *sum -= x;
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(x) = v.and_then(Value::as_f64) {
                    *sum -= x;
                    *count -= 1;
                    if *count == 0 {
                        *sum = 0.0;
                    }
                }
            }
            AggState::StdDev { count, mean, m2 } => {
                if let Some(x) = v.and_then(Value::as_f64) {
                    if *count <= 1 {
                        *count = 0;
                        *mean = 0.0;
                        *m2 = 0.0;
                    } else {
                        let n = *count as f64;
                        let mean_new = (n * *mean - x) / (n - 1.0);
                        *m2 -= (x - *mean) * (x - mean_new);
                        if *m2 < 0.0 {
                            *m2 = 0.0; // numeric guard
                        }
                        *mean = mean_new;
                        *count -= 1;
                    }
                }
            }
            AggState::Max { deque } | AggState::Min { deque } => {
                if v.is_some_and(|v| !v.is_null()) {
                    deque.evict();
                }
            }
            AggState::Last { count, last } => {
                if v.is_some_and(|v| !v.is_null()) {
                    *count -= 1;
                    if *count <= 0 {
                        *last = None;
                    }
                }
            }
            AggState::Prev { count, last, prev } => {
                if v.is_some_and(|v| !v.is_null()) {
                    *count -= 1;
                    if *count <= 1 {
                        *prev = None;
                    }
                    if *count <= 0 {
                        *last = None;
                    }
                }
            }
            AggState::CountDistinct { distinct } => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    let mut key = ctx.scratch.key_buf.borrow_mut();
                    aux_key_into(&mut key, ctx.state_key, v);
                    let n = read_u64(ctx.db, ctx.aux_cf, &key)?;
                    if n <= 1 {
                        ctx.db.delete(ctx.aux_cf, &key)?;
                        if n == 1 {
                            *distinct -= 1;
                        }
                    } else {
                        write_u64(ctx.db, ctx.aux_cf, &key, n - 1)?;
                    }
                }
            }
            // Sketches cannot evict single events; sliding windows prune
            // whole expired panes instead (pane-granular expiry, see
            // [`sketch`]). Tumbling/infinite leaves (`window_ms == 0`)
            // have nothing to do.
            AggState::ApproxDistinct { estimate, err_bp } => {
                if ctx.window_ms > 0 {
                    let kind = SketchKind::Distinct {
                        precision: sketch::hll::precision_for_err_bp(*err_bp),
                    };
                    *estimate = ctx.scratch.with_sketch(ctx, kind, |st, _| {
                        st.prune(ctx.window_lower_ms);
                        st.distinct_estimate()
                    })?;
                }
            }
            AggState::TopK { top, k } => {
                if ctx.window_ms > 0 {
                    let kind = SketchKind::TopK { k: *k };
                    *top = ctx.scratch.with_sketch(ctx, kind, |st, _| {
                        st.prune(ctx.window_lower_ms);
                        st.topk_snapshot()
                    })?;
                }
            }
            AggState::Percentile { estimate, rank_bp } => {
                if ctx.window_ms > 0 {
                    let rank = f64::from(*rank_bp) / 10_000.0;
                    *estimate =
                        ctx.scratch
                            .with_sketch(ctx, SketchKind::Quantile, |st, scratch| {
                                st.prune(ctx.window_lower_ms);
                                st.quantile_estimate(rank, &mut scratch.rank_buf.borrow_mut())
                            })?;
                }
            }
        }
        Ok(())
    }

    /// The current aggregation result.
    pub fn value(&self) -> Value {
        match self {
            AggState::Count { count } => Value::Int(*count),
            AggState::Sum { sum } => Value::Float(*sum),
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(*sum / *count as f64)
                }
            }
            AggState::StdDev { count, m2, .. } => {
                if *count < 2 {
                    if *count == 1 {
                        Value::Float(0.0)
                    } else {
                        Value::Null
                    }
                } else {
                    // Sample standard deviation (Welford's corrected sums).
                    Value::Float((m2 / (*count as f64 - 1.0)).sqrt())
                }
            }
            AggState::Max { deque } | AggState::Min { deque } => {
                deque.extreme().cloned().unwrap_or(Value::Null)
            }
            AggState::Last { last, .. } => last.clone().unwrap_or(Value::Null),
            AggState::Prev { prev, .. } => prev.clone().unwrap_or(Value::Null),
            AggState::CountDistinct { distinct } => Value::Int(*distinct),
            AggState::ApproxDistinct { estimate, .. } => Value::Int(*estimate),
            AggState::TopK { top, .. } => Value::Str(render_topk(top)),
            AggState::Percentile { estimate, .. } => {
                estimate.map(Value::Float).unwrap_or(Value::Null)
            }
        }
    }

    /// Serialize into `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            AggState::Count { count } => {
                buf.push(TAG_COUNT);
                put_ivarint(buf, *count);
            }
            AggState::Sum { sum } => {
                buf.push(TAG_SUM);
                buf.extend_from_slice(&sum.to_le_bytes());
            }
            AggState::Avg { sum, count } => {
                buf.push(TAG_AVG);
                buf.extend_from_slice(&sum.to_le_bytes());
                put_ivarint(buf, *count);
            }
            AggState::StdDev { count, mean, m2 } => {
                buf.push(TAG_STDDEV);
                put_ivarint(buf, *count);
                buf.extend_from_slice(&mean.to_le_bytes());
                buf.extend_from_slice(&m2.to_le_bytes());
            }
            AggState::Max { deque } => {
                buf.push(TAG_MAX);
                deque.encode(buf);
            }
            AggState::Min { deque } => {
                buf.push(TAG_MIN);
                deque.encode(buf);
            }
            AggState::Last { count, last } => {
                buf.push(TAG_LAST);
                put_ivarint(buf, *count);
                put_opt_value(buf, last);
            }
            AggState::Prev { count, last, prev } => {
                buf.push(TAG_PREV);
                put_ivarint(buf, *count);
                put_opt_value(buf, last);
                put_opt_value(buf, prev);
            }
            AggState::CountDistinct { distinct } => {
                buf.push(TAG_DISTINCT);
                put_ivarint(buf, *distinct);
            }
            AggState::ApproxDistinct { estimate, err_bp } => {
                buf.push(TAG_APPROX_DISTINCT);
                put_ivarint(buf, *estimate);
                put_uvarint(buf, u64::from(*err_bp));
            }
            AggState::TopK { top, k } => {
                buf.push(TAG_TOPK);
                put_uvarint(buf, u64::from(*k));
                put_uvarint(buf, top.len() as u64);
                for (v, count) in top {
                    put_value(buf, v);
                    put_ivarint(buf, *count);
                }
            }
            AggState::Percentile { estimate, rank_bp } => {
                buf.push(TAG_PERCENTILE);
                put_uvarint(buf, u64::from(*rank_bp));
                match estimate {
                    Some(x) => {
                        buf.push(1);
                        buf.extend_from_slice(&x.to_le_bytes());
                    }
                    None => buf.push(0),
                }
            }
        }
    }

    /// Deserialize from bytes written by [`AggState::encode`].
    pub fn decode(mut buf: &[u8]) -> Result<Self> {
        if buf.is_empty() {
            return Err(RailgunError::Corruption("empty aggregator state".into()));
        }
        let tag = buf.get_u8();
        Ok(match tag {
            TAG_COUNT => AggState::Count {
                count: get_ivarint(&mut buf)?,
            },
            TAG_SUM => AggState::Sum {
                sum: get_f64(&mut buf)?,
            },
            TAG_AVG => AggState::Avg {
                sum: get_f64(&mut buf)?,
                count: get_ivarint(&mut buf)?,
            },
            TAG_STDDEV => AggState::StdDev {
                count: get_ivarint(&mut buf)?,
                mean: get_f64(&mut buf)?,
                m2: get_f64(&mut buf)?,
            },
            TAG_MAX => AggState::Max {
                deque: MinMaxDeque::decode(&mut buf)?,
            },
            TAG_MIN => AggState::Min {
                deque: MinMaxDeque::decode(&mut buf)?,
            },
            TAG_LAST => AggState::Last {
                count: get_ivarint(&mut buf)?,
                last: get_opt_value(&mut buf)?,
            },
            TAG_PREV => AggState::Prev {
                count: get_ivarint(&mut buf)?,
                last: get_opt_value(&mut buf)?,
                prev: get_opt_value(&mut buf)?,
            },
            TAG_DISTINCT => AggState::CountDistinct {
                distinct: get_ivarint(&mut buf)?,
            },
            TAG_APPROX_DISTINCT => AggState::ApproxDistinct {
                estimate: get_ivarint(&mut buf)?,
                err_bp: get_uvarint(&mut buf)? as u32,
            },
            TAG_TOPK => {
                let k = get_uvarint(&mut buf)? as u32;
                let n = get_uvarint(&mut buf)? as usize;
                if n > k as usize {
                    return Err(RailgunError::Corruption("topK snapshot too long".into()));
                }
                let mut top = Vec::with_capacity(n);
                for _ in 0..n {
                    let v = get_value(&mut buf)?;
                    let count = get_ivarint(&mut buf)?;
                    top.push((v, count));
                }
                AggState::TopK { top, k }
            }
            TAG_PERCENTILE => {
                let rank_bp = get_uvarint(&mut buf)? as u32;
                let estimate = match get_opt_value_tag(&mut buf)? {
                    true => Some(get_f64(&mut buf)?),
                    false => None,
                };
                AggState::Percentile { estimate, rank_bp }
            }
            other => {
                return Err(RailgunError::Corruption(format!(
                    "unknown aggregator tag {other}"
                )))
            }
        })
    }
}

fn put_opt_value(buf: &mut Vec<u8>, v: &Option<Value>) {
    match v {
        Some(v) => {
            buf.push(1);
            put_value(buf, v);
        }
        None => buf.push(0),
    }
}

fn get_opt_value(buf: &mut impl Buf) -> Result<Option<Value>> {
    if !buf.has_remaining() {
        return Err(RailgunError::Corruption("truncated option".into()));
    }
    match buf.get_u8() {
        0 => Ok(None),
        1 => Ok(Some(get_value(buf)?)),
        other => Err(RailgunError::Corruption(format!(
            "bad option tag {other}"
        ))),
    }
}

fn get_f64(buf: &mut impl Buf) -> Result<f64> {
    if buf.remaining() < 8 {
        return Err(RailgunError::Corruption("truncated f64".into()));
    }
    Ok(buf.get_f64_le())
}

/// Render a top-k snapshot as the deterministic `value=count,…` string
/// reported as the metric value.
fn render_topk(top: &[(Value, i64)]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for (i, (v, count)) in top.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match v {
            Value::Str(s) => out.push_str(s),
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(x) => {
                let _ = write!(out, "{x}");
            }
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Null => out.push_str("null"),
        }
        let _ = write!(out, "={count}");
    }
    out
}

fn get_opt_value_tag(buf: &mut impl Buf) -> Result<bool> {
    if !buf.has_remaining() {
        return Err(RailgunError::Corruption("truncated option".into()));
    }
    match buf.get_u8() {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(RailgunError::Corruption(format!("bad option tag {other}"))),
    }
}

/// Auxiliary CF key for a countDistinct value, written into a reusable
/// buffer: the state key length-prefixed (collision-free) followed by
/// the encoded value.
fn aux_key_into(key: &mut Vec<u8>, state_key: &[u8], v: &Value) {
    key.clear();
    put_uvarint(key, state_key.len() as u64);
    key.extend_from_slice(state_key);
    put_value(key, v);
}

///// Auxiliary CF key for a (leaf, entity) sketch blob: the length-
/// prefixed state key with **no** value suffix. Every exact aux key
/// appends at least one encoded-value byte after the same prefix, so
/// blob keys can never collide with per-value count keys even when both
/// families share the aux CF.
fn blob_key_into(key: &mut Vec<u8>, state_key: &[u8]) {
    key.clear();
    put_uvarint(key, state_key.len() as u64);
    key.extend_from_slice(state_key);
}

/// Test helper: the blob-form aux key for `state_key` (used by the
/// horizon-filter tests to build aux keys without an `AggContext`).
#[cfg(test)]
pub(crate) fn blob_key_for_tests(state_key: &[u8]) -> Vec<u8> {
    let mut key = Vec::new();
    blob_key_into(&mut key, state_key);
    key
}

fn read_u64(db: &Db, cf: ColumnFamilyId, key: &[u8]) -> Result<u64> {
    Ok(db
        .get(cf, key)?
        .map(|raw| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&raw[..8.min(raw.len())]);
            u64::from_le_bytes(b)
        })
        .unwrap_or(0))
}

fn write_u64(db: &Db, cf: ColumnFamilyId, key: &[u8], v: u64) -> Result<()> {
    db.put(cf, key, &v.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use railgun_store::DbOptions;

    fn test_db(name: &str) -> Db {
        let dir = std::env::temp_dir().join(format!("railgun-agg-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        Db::open(&dir, DbOptions::default()).unwrap()
    }

    fn ctx<'a>(db: &'a Db, cf: ColumnFamilyId, scratch: &'a AggScratch) -> AggContext<'a> {
        AggContext::new(db, cf, b"leaf0/card-1", scratch)
    }

    fn f(v: f64) -> Value {
        Value::Float(v)
    }

    #[test]
    fn count_star_and_count_field() {
        let db = test_db("count");
        let scratch = AggScratch::default();
        let c = ctx(&db, Db::DEFAULT_CF, &scratch);
        let mut star = AggState::new(AggFunc::Count);
        star.insert(None, &c).unwrap();
        star.insert(None, &c).unwrap();
        assert_eq!(star.value(), Value::Int(2));
        star.evict(None, &c).unwrap();
        assert_eq!(star.value(), Value::Int(1));

        let mut field = AggState::new(AggFunc::Count);
        field.insert(Some(&Value::Null), &c).unwrap();
        field.insert(Some(&f(1.0)), &c).unwrap();
        assert_eq!(field.value(), Value::Int(1), "count(field) skips NULL");
    }

    #[test]
    fn sum_avg_roundtrip() {
        let db = test_db("sumavg");
        let scratch = AggScratch::default();
        let c = ctx(&db, Db::DEFAULT_CF, &scratch);
        let mut sum = AggState::new(AggFunc::Sum);
        let mut avg = AggState::new(AggFunc::Avg);
        for x in [10.0, 20.0, 30.0] {
            sum.insert(Some(&f(x)), &c).unwrap();
            avg.insert(Some(&f(x)), &c).unwrap();
        }
        assert_eq!(sum.value(), f(60.0));
        assert_eq!(avg.value(), f(20.0));
        sum.evict(Some(&f(10.0)), &c).unwrap();
        avg.evict(Some(&f(10.0)), &c).unwrap();
        assert_eq!(sum.value(), f(50.0));
        assert_eq!(avg.value(), f(25.0));
        // Empty average is NULL.
        avg.evict(Some(&f(20.0)), &c).unwrap();
        avg.evict(Some(&f(30.0)), &c).unwrap();
        assert_eq!(avg.value(), Value::Null);
    }

    #[test]
    fn stddev_matches_naive_under_slide() {
        let db = test_db("stddev");
        let scratch = AggScratch::default();
        let c = ctx(&db, Db::DEFAULT_CF, &scratch);
        let xs: Vec<f64> = (0..100).map(|i| ((i * 37) % 41) as f64).collect();
        let mut st = AggState::new(AggFunc::StdDev);
        const W: usize = 20;
        for i in 0..xs.len() {
            st.insert(Some(&f(xs[i])), &c).unwrap();
            if i >= W {
                st.evict(Some(&f(xs[i - W])), &c).unwrap();
            }
            let start = if i >= W { i - W + 1 } else { 0 };
            let win = &xs[start..=i];
            if win.len() >= 2 {
                let mean = win.iter().sum::<f64>() / win.len() as f64;
                let var =
                    win.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                        / (win.len() - 1) as f64;
                let expect = var.sqrt();
                let got = st.value().as_f64().unwrap();
                assert!(
                    (got - expect).abs() < 1e-6,
                    "step {i}: got {got}, expected {expect}"
                );
            }
        }
    }

    #[test]
    fn minmax_track_window() {
        let db = test_db("minmax");
        let scratch = AggScratch::default();
        let c = ctx(&db, Db::DEFAULT_CF, &scratch);
        let mut mx = AggState::new(AggFunc::Max);
        let mut mn = AggState::new(AggFunc::Min);
        for x in [5.0, 1.0, 9.0, 3.0] {
            mx.insert(Some(&f(x)), &c).unwrap();
            mn.insert(Some(&f(x)), &c).unwrap();
        }
        assert_eq!(mx.value(), f(9.0));
        assert_eq!(mn.value(), f(1.0));
        // Evict 5.0 and 1.0 (arrival order).
        for x in [5.0, 1.0] {
            mx.evict(Some(&f(x)), &c).unwrap();
            mn.evict(Some(&f(x)), &c).unwrap();
        }
        assert_eq!(mx.value(), f(9.0));
        assert_eq!(mn.value(), f(3.0));
    }

    #[test]
    fn last_and_prev() {
        let db = test_db("lastprev");
        let scratch = AggScratch::default();
        let c = ctx(&db, Db::DEFAULT_CF, &scratch);
        let mut last = AggState::new(AggFunc::Last);
        let mut prev = AggState::new(AggFunc::Prev);
        for x in [1.0, 2.0, 3.0] {
            last.insert(Some(&f(x)), &c).unwrap();
            prev.insert(Some(&f(x)), &c).unwrap();
        }
        assert_eq!(last.value(), f(3.0));
        assert_eq!(prev.value(), f(2.0));
        // Window empties entirely.
        for x in [1.0, 2.0, 3.0] {
            last.evict(Some(&f(x)), &c).unwrap();
            prev.evict(Some(&f(x)), &c).unwrap();
        }
        assert_eq!(last.value(), Value::Null);
        assert_eq!(prev.value(), Value::Null);
    }

    #[test]
    fn count_distinct_uses_aux_cf() {
        let db = test_db("distinct");
        let aux = db.create_cf("distinct-aux").unwrap();
        let scratch = AggScratch::default();
        let c = ctx(&db, aux, &scratch);
        let mut d = AggState::new(AggFunc::CountDistinct);
        for addr in ["a", "b", "a", "c", "a"] {
            d.insert(Some(&Value::Str(addr.into())), &c).unwrap();
        }
        assert_eq!(d.value(), Value::Int(3));
        // Evict one "a": still 3 distinct (two "a"s remain).
        d.evict(Some(&Value::Str("a".into())), &c).unwrap();
        assert_eq!(d.value(), Value::Int(3));
        // Evict "b": down to 2.
        d.evict(Some(&Value::Str("b".into())), &c).unwrap();
        assert_eq!(d.value(), Value::Int(2));
        // Aux CF has entries for remaining values only.
        assert!(db.scan_prefix(aux, &[]).unwrap().len() == 2);
    }

    #[test]
    fn distinct_states_do_not_collide_across_keys() {
        let db = test_db("distinct-iso");
        let aux = db.create_cf("aux").unwrap();
        let scratch = AggScratch::default();
        let c1 = AggContext::new(&db, aux, b"leaf0/cardA", &scratch);
        let c2 = AggContext::new(&db, aux, b"leaf0/cardB", &scratch);
        let mut d1 = AggState::new(AggFunc::CountDistinct);
        let mut d2 = AggState::new(AggFunc::CountDistinct);
        d1.insert(Some(&Value::Str("x".into())), &c1).unwrap();
        d2.insert(Some(&Value::Str("x".into())), &c2).unwrap();
        d1.evict(Some(&Value::Str("x".into())), &c1).unwrap();
        assert_eq!(d1.value(), Value::Int(0));
        assert_eq!(d2.value(), Value::Int(1), "cardB unaffected by cardA");
    }

    #[test]
    fn all_states_encode_decode() {
        let db = test_db("codec");
        let scratch = AggScratch::default();
        // One state key per func: sketch-backed states cache their blob
        // under the context's state key, so sharing one across kinds
        // would (correctly) trip the kind-mismatch check.
        for (i, func) in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::StdDev,
            AggFunc::Max,
            AggFunc::Min,
            AggFunc::Last,
            AggFunc::Prev,
            AggFunc::CountDistinct,
            AggFunc::ApproxCountDistinct { err_bp: 200 },
            AggFunc::TopK { k: 3 },
            AggFunc::Percentile { rank_bp: 9900 },
        ]
        .into_iter()
        .enumerate()
        {
            let key = format!("leaf{i}/k");
            let c = AggContext::new(&db, Db::DEFAULT_CF, key.as_bytes(), &scratch);
            let mut s = AggState::new(func);
            for x in [4.0, 2.0, 7.0] {
                s.insert(Some(&f(x)), &c).unwrap();
            }
            let mut buf = Vec::new();
            s.encode(&mut buf);
            let back = AggState::decode(&buf).unwrap();
            assert_eq!(s, back, "{func:?}");
            assert_eq!(s.value(), back.value());
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(AggState::decode(&[]).is_err());
        assert!(AggState::decode(&[200]).is_err());
    }

    #[test]
    fn approx_distinct_is_exact_at_small_cardinality() {
        let db = test_db("approx-small");
        let aux = db.create_cf("distinct-aux").unwrap();
        let scratch = AggScratch::default();
        let c = ctx(&db, aux, &scratch);
        let mut d = AggState::new(AggFunc::ApproxCountDistinct { err_bp: 200 });
        for addr in ["a", "b", "a", "c", "a", "b"] {
            d.insert(Some(&Value::Str(addr.into())), &c).unwrap();
        }
        // Linear counting makes tiny cardinalities exact.
        assert_eq!(d.value(), Value::Int(3));
    }

    #[test]
    fn topk_reports_heaviest_first() {
        let db = test_db("topk-state");
        let aux = db.create_cf("distinct-aux").unwrap();
        let scratch = AggScratch::default();
        let c = ctx(&db, aux, &scratch);
        let mut t = AggState::new(AggFunc::TopK { k: 2 });
        for (name, n) in [("a", 5), ("b", 9), ("c", 2)] {
            for _ in 0..n {
                t.insert(Some(&Value::Str(name.into())), &c).unwrap();
            }
        }
        assert_eq!(t.value(), Value::Str("b=9,a=5".into()));
    }

    #[test]
    fn percentile_tracks_the_distribution() {
        let db = test_db("pct-state");
        let aux = db.create_cf("distinct-aux").unwrap();
        let scratch = AggScratch::default();
        let c = ctx(&db, aux, &scratch);
        let mut p = AggState::new(AggFunc::Percentile { rank_bp: 5000 });
        for i in 0..101 {
            p.insert(Some(&f(f64::from(i))), &c).unwrap();
        }
        assert_eq!(p.value(), f(50.0));
    }

    #[test]
    fn sliding_sketch_expires_whole_panes() {
        let db = test_db("approx-slide");
        let aux = db.create_cf("distinct-aux").unwrap();
        let scratch = AggScratch::default();
        let mut d = AggState::new(AggFunc::ApproxCountDistinct { err_bp: 200 });
        // 80ms window → 10ms panes. 8 distinct values, one per pane.
        for i in 0..8i64 {
            let c = ctx(&db, aux, &scratch).windowed(i * 10, i * 10 - 80, 80);
            d.insert(Some(&Value::Int(i)), &c).unwrap();
        }
        assert_eq!(d.value(), Value::Int(8));
        // Window advances: everything below 40ms expires (4 panes die).
        let c = ctx(&db, aux, &scratch).windowed(110, 40, 80);
        d.evict(Some(&Value::Int(0)), &c).unwrap();
        assert_eq!(d.value(), Value::Int(4));
    }

    #[test]
    fn sketch_cache_flushes_and_reloads() {
        let db = test_db("sketch-flush");
        let aux = db.create_cf("distinct-aux").unwrap();
        let scratch = AggScratch::default();
        let mut d = AggState::new(AggFunc::ApproxCountDistinct { err_bp: 200 });
        {
            let c = ctx(&db, aux, &scratch);
            for i in 0..50 {
                d.insert(Some(&Value::Int(i)), &c).unwrap();
            }
        }
        assert!(
            db.scan_prefix(aux, &[]).unwrap().is_empty(),
            "no store traffic before flush"
        );
        scratch.flush(&db, aux).unwrap();
        let blobs = db.scan_prefix(aux, &[]).unwrap();
        assert_eq!(blobs.len(), 1, "one blob per (leaf, entity)");
        // A brand-new scratch (fresh task) reloads the flushed sketch.
        let scratch2 = AggScratch::default();
        let c2 = ctx(&db, aux, &scratch2);
        d.insert(Some(&Value::Int(0)), &c2).unwrap();
        assert_eq!(d.value(), Value::Int(50), "estimate survives reload");
    }

    #[test]
    fn nulls_are_ignored_by_value_aggs() {
        let db = test_db("nulls");
        let scratch = AggScratch::default();
        let c = ctx(&db, Db::DEFAULT_CF, &scratch);
        for func in [AggFunc::Sum, AggFunc::Avg, AggFunc::Max, AggFunc::Min] {
            let mut s = AggState::new(func);
            s.insert(Some(&Value::Null), &c).unwrap();
            s.evict(Some(&Value::Null), &c).unwrap();
            // Still pristine.
            assert_eq!(s, AggState::new(func), "{func:?}");
        }
    }
}
