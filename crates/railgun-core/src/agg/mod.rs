//! Incremental window aggregators (paper §4.1.3).
//!
//! Every aggregator supports O(1)-ish `insert` and `evict` so real-time
//! sliding windows can update metrics with exactly the events entering and
//! leaving the window — never recomputing from scratch (the failure mode of
//! the Flink custom solution \[21\], reproduced in `railgun-baseline`).
//!
//! State is serialized to bytes and stored per `(plan leaf, entity)` key in
//! the task processor's state store, matching the paper's description:
//! "each key holds the aggregation current value for the specific window
//! and the specific entity", with auxiliary data per type:
//!
//! * `avg` carries a count; `stdDev` the Welford triple \[50\];
//! * `max`/`min` a monotonic deque \[30\] ([`deque`]);
//! * `countDistinct` keeps per-value counts in a dedicated **column
//!   family** of the state store.

pub mod deque;

use bytes::Buf;
use railgun_store::{ColumnFamilyId, Db};
use railgun_types::encode::{
    get_ivarint, get_value, put_ivarint, put_uvarint, put_value,
};
use railgun_types::{RailgunError, Result, Value};

use crate::lang::AggFunc;
use deque::{max_keeps, min_keeps, MinMaxDeque};

/// Where an aggregator's auxiliary data lives.
pub struct AggContext<'a> {
    pub db: &'a Db,
    /// Column family for `countDistinct` per-value counts.
    pub aux_cf: ColumnFamilyId,
    /// The state key of this (leaf, entity) — aux keys are derived from it.
    pub state_key: &'a [u8],
}

/// In-memory aggregation state for one (metric leaf, entity).
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    Count { count: i64 },
    Sum { sum: f64 },
    Avg { sum: f64, count: i64 },
    StdDev { count: i64, mean: f64, m2: f64 },
    Max { deque: MinMaxDeque },
    Min { deque: MinMaxDeque },
    Last { count: i64, last: Option<Value> },
    Prev {
        count: i64,
        last: Option<Value>,
        prev: Option<Value>,
    },
    CountDistinct { distinct: i64 },
}

const TAG_COUNT: u8 = 1;
const TAG_SUM: u8 = 2;
const TAG_AVG: u8 = 3;
const TAG_STDDEV: u8 = 4;
const TAG_MAX: u8 = 5;
const TAG_MIN: u8 = 6;
const TAG_LAST: u8 = 7;
const TAG_PREV: u8 = 8;
const TAG_DISTINCT: u8 = 9;

impl AggState {
    /// Fresh state for a function.
    pub fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => AggState::Count { count: 0 },
            AggFunc::Sum => AggState::Sum { sum: 0.0 },
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggFunc::StdDev => AggState::StdDev {
                count: 0,
                mean: 0.0,
                m2: 0.0,
            },
            AggFunc::Max => AggState::Max {
                deque: MinMaxDeque::default(),
            },
            AggFunc::Min => AggState::Min {
                deque: MinMaxDeque::default(),
            },
            AggFunc::Last => AggState::Last {
                count: 0,
                last: None,
            },
            AggFunc::Prev => AggState::Prev {
                count: 0,
                last: None,
                prev: None,
            },
            AggFunc::CountDistinct => AggState::CountDistinct { distinct: 0 },
        }
    }

    /// Apply an entering value. `v` is `None` for `count(*)` over an event
    /// with no projected field; NULL values are ignored by value
    /// aggregations (SQL semantics).
    pub fn insert(&mut self, v: Option<&Value>, ctx: &AggContext<'_>) -> Result<()> {
        match self {
            AggState::Count { count } => {
                // count(*) counts rows; count(field) counts non-null.
                if v.is_none_or(|v| !v.is_null()) {
                    *count += 1;
                }
            }
            AggState::Sum { sum } => {
                if let Some(x) = v.and_then(Value::as_f64) {
                    *sum += x;
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(x) = v.and_then(Value::as_f64) {
                    *sum += x;
                    *count += 1;
                }
            }
            AggState::StdDev { count, mean, m2 } => {
                if let Some(x) = v.and_then(Value::as_f64) {
                    *count += 1;
                    let d = x - *mean;
                    *mean += d / *count as f64;
                    *m2 += d * (x - *mean);
                }
            }
            AggState::Max { deque } => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    deque.insert(v, max_keeps);
                }
            }
            AggState::Min { deque } => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    deque.insert(v, min_keeps);
                }
            }
            AggState::Last { count, last } => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    *count += 1;
                    *last = Some(v.clone());
                }
            }
            AggState::Prev { count, last, prev } => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    *count += 1;
                    *prev = last.take();
                    *last = Some(v.clone());
                }
            }
            AggState::CountDistinct { distinct } => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    let key = aux_key(ctx.state_key, v);
                    let n = read_u64(ctx.db, ctx.aux_cf, &key)?;
                    if n == 0 {
                        *distinct += 1;
                    }
                    write_u64(ctx.db, ctx.aux_cf, &key, n + 1)?;
                }
            }
        }
        Ok(())
    }

    /// Apply an expiring value. Must mirror a previous `insert` with the
    /// same value (the window operator guarantees this).
    pub fn evict(&mut self, v: Option<&Value>, ctx: &AggContext<'_>) -> Result<()> {
        match self {
            AggState::Count { count } => {
                if v.is_none_or(|v| !v.is_null()) {
                    *count -= 1;
                }
            }
            AggState::Sum { sum } => {
                if let Some(x) = v.and_then(Value::as_f64) {
                    *sum -= x;
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(x) = v.and_then(Value::as_f64) {
                    *sum -= x;
                    *count -= 1;
                    if *count == 0 {
                        *sum = 0.0;
                    }
                }
            }
            AggState::StdDev { count, mean, m2 } => {
                if let Some(x) = v.and_then(Value::as_f64) {
                    if *count <= 1 {
                        *count = 0;
                        *mean = 0.0;
                        *m2 = 0.0;
                    } else {
                        let n = *count as f64;
                        let mean_new = (n * *mean - x) / (n - 1.0);
                        *m2 -= (x - *mean) * (x - mean_new);
                        if *m2 < 0.0 {
                            *m2 = 0.0; // numeric guard
                        }
                        *mean = mean_new;
                        *count -= 1;
                    }
                }
            }
            AggState::Max { deque } | AggState::Min { deque } => {
                if v.is_some_and(|v| !v.is_null()) {
                    deque.evict();
                }
            }
            AggState::Last { count, last } => {
                if v.is_some_and(|v| !v.is_null()) {
                    *count -= 1;
                    if *count <= 0 {
                        *last = None;
                    }
                }
            }
            AggState::Prev { count, last, prev } => {
                if v.is_some_and(|v| !v.is_null()) {
                    *count -= 1;
                    if *count <= 1 {
                        *prev = None;
                    }
                    if *count <= 0 {
                        *last = None;
                    }
                }
            }
            AggState::CountDistinct { distinct } => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    let key = aux_key(ctx.state_key, v);
                    let n = read_u64(ctx.db, ctx.aux_cf, &key)?;
                    if n <= 1 {
                        ctx.db.delete(ctx.aux_cf, &key)?;
                        if n == 1 {
                            *distinct -= 1;
                        }
                    } else {
                        write_u64(ctx.db, ctx.aux_cf, &key, n - 1)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// The current aggregation result.
    pub fn value(&self) -> Value {
        match self {
            AggState::Count { count } => Value::Int(*count),
            AggState::Sum { sum } => Value::Float(*sum),
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(*sum / *count as f64)
                }
            }
            AggState::StdDev { count, m2, .. } => {
                if *count < 2 {
                    if *count == 1 {
                        Value::Float(0.0)
                    } else {
                        Value::Null
                    }
                } else {
                    // Sample standard deviation (Welford's corrected sums).
                    Value::Float((m2 / (*count as f64 - 1.0)).sqrt())
                }
            }
            AggState::Max { deque } | AggState::Min { deque } => {
                deque.extreme().cloned().unwrap_or(Value::Null)
            }
            AggState::Last { last, .. } => last.clone().unwrap_or(Value::Null),
            AggState::Prev { prev, .. } => prev.clone().unwrap_or(Value::Null),
            AggState::CountDistinct { distinct } => Value::Int(*distinct),
        }
    }

    /// Serialize into `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            AggState::Count { count } => {
                buf.push(TAG_COUNT);
                put_ivarint(buf, *count);
            }
            AggState::Sum { sum } => {
                buf.push(TAG_SUM);
                buf.extend_from_slice(&sum.to_le_bytes());
            }
            AggState::Avg { sum, count } => {
                buf.push(TAG_AVG);
                buf.extend_from_slice(&sum.to_le_bytes());
                put_ivarint(buf, *count);
            }
            AggState::StdDev { count, mean, m2 } => {
                buf.push(TAG_STDDEV);
                put_ivarint(buf, *count);
                buf.extend_from_slice(&mean.to_le_bytes());
                buf.extend_from_slice(&m2.to_le_bytes());
            }
            AggState::Max { deque } => {
                buf.push(TAG_MAX);
                deque.encode(buf);
            }
            AggState::Min { deque } => {
                buf.push(TAG_MIN);
                deque.encode(buf);
            }
            AggState::Last { count, last } => {
                buf.push(TAG_LAST);
                put_ivarint(buf, *count);
                put_opt_value(buf, last);
            }
            AggState::Prev { count, last, prev } => {
                buf.push(TAG_PREV);
                put_ivarint(buf, *count);
                put_opt_value(buf, last);
                put_opt_value(buf, prev);
            }
            AggState::CountDistinct { distinct } => {
                buf.push(TAG_DISTINCT);
                put_ivarint(buf, *distinct);
            }
        }
    }

    /// Deserialize from bytes written by [`AggState::encode`].
    pub fn decode(mut buf: &[u8]) -> Result<Self> {
        if buf.is_empty() {
            return Err(RailgunError::Corruption("empty aggregator state".into()));
        }
        let tag = buf.get_u8();
        Ok(match tag {
            TAG_COUNT => AggState::Count {
                count: get_ivarint(&mut buf)?,
            },
            TAG_SUM => AggState::Sum {
                sum: get_f64(&mut buf)?,
            },
            TAG_AVG => AggState::Avg {
                sum: get_f64(&mut buf)?,
                count: get_ivarint(&mut buf)?,
            },
            TAG_STDDEV => AggState::StdDev {
                count: get_ivarint(&mut buf)?,
                mean: get_f64(&mut buf)?,
                m2: get_f64(&mut buf)?,
            },
            TAG_MAX => AggState::Max {
                deque: MinMaxDeque::decode(&mut buf)?,
            },
            TAG_MIN => AggState::Min {
                deque: MinMaxDeque::decode(&mut buf)?,
            },
            TAG_LAST => AggState::Last {
                count: get_ivarint(&mut buf)?,
                last: get_opt_value(&mut buf)?,
            },
            TAG_PREV => AggState::Prev {
                count: get_ivarint(&mut buf)?,
                last: get_opt_value(&mut buf)?,
                prev: get_opt_value(&mut buf)?,
            },
            TAG_DISTINCT => AggState::CountDistinct {
                distinct: get_ivarint(&mut buf)?,
            },
            other => {
                return Err(RailgunError::Corruption(format!(
                    "unknown aggregator tag {other}"
                )))
            }
        })
    }
}

fn put_opt_value(buf: &mut Vec<u8>, v: &Option<Value>) {
    match v {
        Some(v) => {
            buf.push(1);
            put_value(buf, v);
        }
        None => buf.push(0),
    }
}

fn get_opt_value(buf: &mut impl Buf) -> Result<Option<Value>> {
    if !buf.has_remaining() {
        return Err(RailgunError::Corruption("truncated option".into()));
    }
    match buf.get_u8() {
        0 => Ok(None),
        1 => Ok(Some(get_value(buf)?)),
        other => Err(RailgunError::Corruption(format!(
            "bad option tag {other}"
        ))),
    }
}

fn get_f64(buf: &mut impl Buf) -> Result<f64> {
    if buf.remaining() < 8 {
        return Err(RailgunError::Corruption("truncated f64".into()));
    }
    Ok(buf.get_f64_le())
}

/// Auxiliary CF key for a countDistinct value: the state key length-
/// prefixed (collision-free) followed by the encoded value.
fn aux_key(state_key: &[u8], v: &Value) -> Vec<u8> {
    let mut key = Vec::with_capacity(state_key.len() + 16);
    put_uvarint(&mut key, state_key.len() as u64);
    key.extend_from_slice(state_key);
    put_value(&mut key, v);
    key
}

fn read_u64(db: &Db, cf: ColumnFamilyId, key: &[u8]) -> Result<u64> {
    Ok(db
        .get(cf, key)?
        .map(|raw| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&raw[..8.min(raw.len())]);
            u64::from_le_bytes(b)
        })
        .unwrap_or(0))
}

fn write_u64(db: &Db, cf: ColumnFamilyId, key: &[u8], v: u64) -> Result<()> {
    db.put(cf, key, &v.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use railgun_store::DbOptions;

    fn test_db(name: &str) -> Db {
        let dir = std::env::temp_dir().join(format!("railgun-agg-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        Db::open(&dir, DbOptions::default()).unwrap()
    }

    fn ctx<'a>(db: &'a Db, cf: ColumnFamilyId) -> AggContext<'a> {
        AggContext {
            db,
            aux_cf: cf,
            state_key: b"leaf0/card-1",
        }
    }

    fn f(v: f64) -> Value {
        Value::Float(v)
    }

    #[test]
    fn count_star_and_count_field() {
        let db = test_db("count");
        let c = ctx(&db, Db::DEFAULT_CF);
        let mut star = AggState::new(AggFunc::Count);
        star.insert(None, &c).unwrap();
        star.insert(None, &c).unwrap();
        assert_eq!(star.value(), Value::Int(2));
        star.evict(None, &c).unwrap();
        assert_eq!(star.value(), Value::Int(1));

        let mut field = AggState::new(AggFunc::Count);
        field.insert(Some(&Value::Null), &c).unwrap();
        field.insert(Some(&f(1.0)), &c).unwrap();
        assert_eq!(field.value(), Value::Int(1), "count(field) skips NULL");
    }

    #[test]
    fn sum_avg_roundtrip() {
        let db = test_db("sumavg");
        let c = ctx(&db, Db::DEFAULT_CF);
        let mut sum = AggState::new(AggFunc::Sum);
        let mut avg = AggState::new(AggFunc::Avg);
        for x in [10.0, 20.0, 30.0] {
            sum.insert(Some(&f(x)), &c).unwrap();
            avg.insert(Some(&f(x)), &c).unwrap();
        }
        assert_eq!(sum.value(), f(60.0));
        assert_eq!(avg.value(), f(20.0));
        sum.evict(Some(&f(10.0)), &c).unwrap();
        avg.evict(Some(&f(10.0)), &c).unwrap();
        assert_eq!(sum.value(), f(50.0));
        assert_eq!(avg.value(), f(25.0));
        // Empty average is NULL.
        avg.evict(Some(&f(20.0)), &c).unwrap();
        avg.evict(Some(&f(30.0)), &c).unwrap();
        assert_eq!(avg.value(), Value::Null);
    }

    #[test]
    fn stddev_matches_naive_under_slide() {
        let db = test_db("stddev");
        let c = ctx(&db, Db::DEFAULT_CF);
        let xs: Vec<f64> = (0..100).map(|i| ((i * 37) % 41) as f64).collect();
        let mut st = AggState::new(AggFunc::StdDev);
        const W: usize = 20;
        for i in 0..xs.len() {
            st.insert(Some(&f(xs[i])), &c).unwrap();
            if i >= W {
                st.evict(Some(&f(xs[i - W])), &c).unwrap();
            }
            let start = if i >= W { i - W + 1 } else { 0 };
            let win = &xs[start..=i];
            if win.len() >= 2 {
                let mean = win.iter().sum::<f64>() / win.len() as f64;
                let var =
                    win.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                        / (win.len() - 1) as f64;
                let expect = var.sqrt();
                let got = st.value().as_f64().unwrap();
                assert!(
                    (got - expect).abs() < 1e-6,
                    "step {i}: got {got}, expected {expect}"
                );
            }
        }
    }

    #[test]
    fn minmax_track_window() {
        let db = test_db("minmax");
        let c = ctx(&db, Db::DEFAULT_CF);
        let mut mx = AggState::new(AggFunc::Max);
        let mut mn = AggState::new(AggFunc::Min);
        for x in [5.0, 1.0, 9.0, 3.0] {
            mx.insert(Some(&f(x)), &c).unwrap();
            mn.insert(Some(&f(x)), &c).unwrap();
        }
        assert_eq!(mx.value(), f(9.0));
        assert_eq!(mn.value(), f(1.0));
        // Evict 5.0 and 1.0 (arrival order).
        for x in [5.0, 1.0] {
            mx.evict(Some(&f(x)), &c).unwrap();
            mn.evict(Some(&f(x)), &c).unwrap();
        }
        assert_eq!(mx.value(), f(9.0));
        assert_eq!(mn.value(), f(3.0));
    }

    #[test]
    fn last_and_prev() {
        let db = test_db("lastprev");
        let c = ctx(&db, Db::DEFAULT_CF);
        let mut last = AggState::new(AggFunc::Last);
        let mut prev = AggState::new(AggFunc::Prev);
        for x in [1.0, 2.0, 3.0] {
            last.insert(Some(&f(x)), &c).unwrap();
            prev.insert(Some(&f(x)), &c).unwrap();
        }
        assert_eq!(last.value(), f(3.0));
        assert_eq!(prev.value(), f(2.0));
        // Window empties entirely.
        for x in [1.0, 2.0, 3.0] {
            last.evict(Some(&f(x)), &c).unwrap();
            prev.evict(Some(&f(x)), &c).unwrap();
        }
        assert_eq!(last.value(), Value::Null);
        assert_eq!(prev.value(), Value::Null);
    }

    #[test]
    fn count_distinct_uses_aux_cf() {
        let db = test_db("distinct");
        let aux = db.create_cf("distinct-aux").unwrap();
        let c = ctx(&db, aux);
        let mut d = AggState::new(AggFunc::CountDistinct);
        for addr in ["a", "b", "a", "c", "a"] {
            d.insert(Some(&Value::Str(addr.into())), &c).unwrap();
        }
        assert_eq!(d.value(), Value::Int(3));
        // Evict one "a": still 3 distinct (two "a"s remain).
        d.evict(Some(&Value::Str("a".into())), &c).unwrap();
        assert_eq!(d.value(), Value::Int(3));
        // Evict "b": down to 2.
        d.evict(Some(&Value::Str("b".into())), &c).unwrap();
        assert_eq!(d.value(), Value::Int(2));
        // Aux CF has entries for remaining values only.
        assert!(db.scan_prefix(aux, &[]).unwrap().len() == 2);
    }

    #[test]
    fn distinct_states_do_not_collide_across_keys() {
        let db = test_db("distinct-iso");
        let aux = db.create_cf("aux").unwrap();
        let c1 = AggContext {
            db: &db,
            aux_cf: aux,
            state_key: b"leaf0/cardA",
        };
        let c2 = AggContext {
            db: &db,
            aux_cf: aux,
            state_key: b"leaf0/cardB",
        };
        let mut d1 = AggState::new(AggFunc::CountDistinct);
        let mut d2 = AggState::new(AggFunc::CountDistinct);
        d1.insert(Some(&Value::Str("x".into())), &c1).unwrap();
        d2.insert(Some(&Value::Str("x".into())), &c2).unwrap();
        d1.evict(Some(&Value::Str("x".into())), &c1).unwrap();
        assert_eq!(d1.value(), Value::Int(0));
        assert_eq!(d2.value(), Value::Int(1), "cardB unaffected by cardA");
    }

    #[test]
    fn all_states_encode_decode() {
        let db = test_db("codec");
        let c = ctx(&db, Db::DEFAULT_CF);
        for func in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::StdDev,
            AggFunc::Max,
            AggFunc::Min,
            AggFunc::Last,
            AggFunc::Prev,
            AggFunc::CountDistinct,
        ] {
            let mut s = AggState::new(func);
            for x in [4.0, 2.0, 7.0] {
                s.insert(Some(&f(x)), &c).unwrap();
            }
            let mut buf = Vec::new();
            s.encode(&mut buf);
            let back = AggState::decode(&buf).unwrap();
            assert_eq!(s, back, "{func:?}");
            assert_eq!(s.value(), back.value());
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(AggState::decode(&[]).is_err());
        assert!(AggState::decode(&[200]).is_err());
    }

    #[test]
    fn nulls_are_ignored_by_value_aggs() {
        let db = test_db("nulls");
        let c = ctx(&db, Db::DEFAULT_CF);
        for func in [AggFunc::Sum, AggFunc::Avg, AggFunc::Max, AggFunc::Min] {
            let mut s = AggState::new(func);
            s.insert(Some(&Value::Null), &c).unwrap();
            s.evict(Some(&Value::Null), &c).unwrap();
            // Still pristine.
            assert_eq!(s, AggState::new(func), "{func:?}");
        }
    }
}
