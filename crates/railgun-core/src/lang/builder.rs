//! Typed, programmatic construction of the Figure-4 query AST.
//!
//! The builder produces exactly the same [`Query`] values the text parser
//! does, so both front doors compile to identical task plans — the
//! equivalence contract pinned by `tests/query_lifecycle.rs` and
//! documented in DESIGN.md § "Client API":
//!
//! ```
//! use railgun_core::lang::{mins, Agg, Query, Window};
//!
//! let q = Query::select(Agg::sum("amount"))
//!     .select(Agg::count())
//!     .from("payments")
//!     .group_by(["cardId"])
//!     .over(Window::sliding(mins(5)))
//!     .build()
//!     .unwrap();
//! assert_eq!(
//!     q,
//!     railgun_core::lang::parse_query(
//!         "SELECT sum(amount), count(*) FROM payments \
//!          GROUP BY cardId OVER sliding 5 min"
//!     ).unwrap()
//! );
//! ```
//!
//! Filters are built from [`field`] and [`lit`] with fluent combinators:
//!
//! ```
//! use railgun_core::lang::{field, mins, Agg, Query, Window};
//!
//! let q = Query::select(Agg::count())
//!     .from("payments")
//!     .filter(field("amount").gt(100).and(field("country").eq_to("PT")))
//!     .group_by(["cardId"])
//!     .over(Window::sliding(mins(5)).delayed_by(mins(1)))
//!     .build()
//!     .unwrap();
//! assert!(q.filter.is_some());
//! ```

use railgun_types::{RailgunError, Result, TimeDelta, Value};

use crate::expr::{ArithOp, CmpOp};
use crate::lang::ast::{AggFunc, AggSpec, PExpr, Query, WindowSpec};

/// Window expressions, by their paper name. `Window::sliding(mins(5))`
/// reads like Figure 4; the alias is the same type the AST stores.
pub type Window = WindowSpec;

/// `n` milliseconds.
pub fn millis(n: i64) -> TimeDelta {
    TimeDelta::from_millis(n)
}

/// `n` seconds.
pub fn secs(n: i64) -> TimeDelta {
    TimeDelta::from_secs(n)
}

/// `n` minutes.
pub fn mins(n: i64) -> TimeDelta {
    TimeDelta::from_minutes(n)
}

/// `n` hours.
pub fn hours(n: i64) -> TimeDelta {
    TimeDelta::from_hours(n)
}

/// `n` days.
pub fn days(n: i64) -> TimeDelta {
    TimeDelta::from_days(n)
}

/// Constructors for the aggregation functions of Figure 4.
///
/// Each returns the [`AggSpec`] the parser would produce for the same
/// SELECT item.
pub struct Agg;

impl Agg {
    /// `count(*)`.
    pub fn count() -> AggSpec {
        AggSpec {
            func: AggFunc::Count,
            field: None,
        }
    }

    /// `count(field)`.
    pub fn count_field(field: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Count,
            field: Some(field.into()),
        }
    }

    /// `sum(field)`.
    pub fn sum(field: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Sum,
            field: Some(field.into()),
        }
    }

    /// `avg(field)`.
    pub fn avg(field: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Avg,
            field: Some(field.into()),
        }
    }

    /// `stdDev(field)` (sample standard deviation).
    pub fn std_dev(field: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::StdDev,
            field: Some(field.into()),
        }
    }

    /// `max(field)`.
    pub fn max(field: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Max,
            field: Some(field.into()),
        }
    }

    /// `min(field)`.
    pub fn min(field: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Min,
            field: Some(field.into()),
        }
    }

    /// `last(field)`.
    pub fn last(field: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Last,
            field: Some(field.into()),
        }
    }

    /// `prev(field)`.
    pub fn prev(field: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Prev,
            field: Some(field.into()),
        }
    }

    /// `countDistinct(field)`.
    pub fn count_distinct(field: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::CountDistinct,
            field: Some(field.into()),
        }
    }

    /// `topK(field, k)` — sketch-backed heavy hitters. The metric value
    /// is the deterministic `value=count,…` string, heaviest first.
    pub fn top_k(field: impl Into<String>, k: u32) -> AggSpec {
        AggSpec {
            func: AggFunc::TopK { k },
            field: Some(field.into()),
        }
    }

    /// `percentile(field, rank)` with `rank` in percent (e.g. `99.9`) —
    /// sketch-backed quantile estimate. Out-of-range or sub-basis-point
    /// ranks are rejected at [`QueryBuilder::build`].
    pub fn percentile(field: impl Into<String>, rank: f64) -> AggSpec {
        let bp = rank * 100.0;
        let rank_bp = if bp.is_finite() && bp.round() >= 1.0 && bp.round() <= 9999.0
            && (bp - bp.round()).abs() <= 1e-6
        {
            bp.round() as u32
        } else {
            0 // sentinel: rejected by `AggFunc::check_params` at build
        };
        AggSpec {
            func: AggFunc::Percentile { rank_bp },
            field: Some(field.into()),
        }
    }
}

impl AggSpec {
    /// Turn exact `countDistinct` into the HLL-backed approximate form:
    /// `countDistinct(field) approx err`, with `err` the relative error
    /// (e.g. `0.02` for 2%), valid in `(0, 0.5]` at basis-point
    /// granularity. Invalid errors — or `approx` on any other
    /// aggregation — are rejected at [`QueryBuilder::build`].
    pub fn approx(mut self, err: f64) -> AggSpec {
        let bp = err * 10_000.0;
        let err_bp = if bp.is_finite() && bp.round() >= 1.0 && bp.round() <= 5000.0
            && (bp - bp.round()).abs() <= 1e-6
        {
            bp.round() as u32
        } else {
            0 // sentinel: rejected by `AggFunc::check_params` at build
        };
        // `approx` on anything but countDistinct renders to text the
        // grammar rejects, so the build-time roundtrip catches it; the
        // sentinel handles the valid-function/invalid-error case.
        if self.func == AggFunc::CountDistinct {
            self.func = AggFunc::ApproxCountDistinct { err_bp };
        } else {
            self.func = AggFunc::ApproxCountDistinct { err_bp: 0 };
        }
        self
    }
}

/// A field reference in a filter expression: `field("amount").gt(100)`.
pub fn field(name: impl Into<String>) -> PExpr {
    PExpr::Field(name.into())
}

/// A literal in a filter expression. Usually implicit — comparison
/// combinators accept `impl Into<PExpr>`, and `i64`/`f64`/`bool`/`&str`
/// all convert — but available for explicitness.
pub fn lit(value: impl Into<Value>) -> PExpr {
    PExpr::Lit(value.into())
}

impl From<i64> for PExpr {
    fn from(v: i64) -> Self {
        PExpr::Lit(Value::Int(v))
    }
}

impl From<i32> for PExpr {
    fn from(v: i32) -> Self {
        PExpr::Lit(Value::Int(i64::from(v)))
    }
}

impl From<f64> for PExpr {
    fn from(v: f64) -> Self {
        PExpr::Lit(Value::Float(v))
    }
}

impl From<bool> for PExpr {
    fn from(v: bool) -> Self {
        PExpr::Lit(Value::Bool(v))
    }
}

impl From<&str> for PExpr {
    fn from(v: &str) -> Self {
        PExpr::Lit(Value::Str(v.into()))
    }
}

impl From<String> for PExpr {
    fn from(v: String) -> Self {
        PExpr::Lit(Value::Str(v))
    }
}

impl From<Value> for PExpr {
    fn from(v: Value) -> Self {
        PExpr::Lit(v)
    }
}

impl PExpr {
    fn cmp(self, op: CmpOp, rhs: impl Into<PExpr>) -> PExpr {
        PExpr::Cmp(op, Box::new(self), Box::new(rhs.into()))
    }

    fn arith(self, op: ArithOp, rhs: impl Into<PExpr>) -> PExpr {
        PExpr::Arith(op, Box::new(self), Box::new(rhs.into()))
    }

    /// `self = rhs` (named to avoid clashing with [`PartialEq::eq`]).
    pub fn eq_to(self, rhs: impl Into<PExpr>) -> PExpr {
        self.cmp(CmpOp::Eq, rhs)
    }

    /// `self != rhs`.
    pub fn ne_to(self, rhs: impl Into<PExpr>) -> PExpr {
        self.cmp(CmpOp::Ne, rhs)
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: impl Into<PExpr>) -> PExpr {
        self.cmp(CmpOp::Lt, rhs)
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: impl Into<PExpr>) -> PExpr {
        self.cmp(CmpOp::Le, rhs)
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: impl Into<PExpr>) -> PExpr {
        self.cmp(CmpOp::Gt, rhs)
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: impl Into<PExpr>) -> PExpr {
        self.cmp(CmpOp::Ge, rhs)
    }

    /// `self AND rhs`.
    pub fn and(self, rhs: impl Into<PExpr>) -> PExpr {
        PExpr::And(Box::new(self), Box::new(rhs.into()))
    }

    /// `self OR rhs`.
    pub fn or(self, rhs: impl Into<PExpr>) -> PExpr {
        PExpr::Or(Box::new(self), Box::new(rhs.into()))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> PExpr {
        PExpr::Not(Box::new(self))
    }

    /// `self IS NULL`.
    pub fn is_null(self) -> PExpr {
        PExpr::IsNull(Box::new(self))
    }

    /// `self IS NOT NULL`.
    pub fn is_not_null(self) -> PExpr {
        PExpr::IsNotNull(Box::new(self))
    }
}

/// Arithmetic on filter expressions uses the real operators:
/// `field("amount") + field("fee")`, `field("retries") * 2`.
impl<R: Into<PExpr>> std::ops::Add<R> for PExpr {
    type Output = PExpr;
    fn add(self, rhs: R) -> PExpr {
        self.arith(ArithOp::Add, rhs)
    }
}

impl<R: Into<PExpr>> std::ops::Sub<R> for PExpr {
    type Output = PExpr;
    fn sub(self, rhs: R) -> PExpr {
        self.arith(ArithOp::Sub, rhs)
    }
}

impl<R: Into<PExpr>> std::ops::Mul<R> for PExpr {
    type Output = PExpr;
    fn mul(self, rhs: R) -> PExpr {
        self.arith(ArithOp::Mul, rhs)
    }
}

impl<R: Into<PExpr>> std::ops::Div<R> for PExpr {
    type Output = PExpr;
    fn div(self, rhs: R) -> PExpr {
        self.arith(ArithOp::Div, rhs)
    }
}

impl Query {
    /// Start building a query from its first SELECT item.
    pub fn select(agg: AggSpec) -> QueryBuilder {
        QueryBuilder {
            select: vec![agg],
            stream: None,
            filter: None,
            group_by: Vec::new(),
            window: None,
            slo: None,
        }
    }
}

/// Fluent builder for [`Query`] — see the [module docs](self) for the
/// full shape. [`QueryBuilder::build`] validates that the statement is
/// complete (a stream and a window) and expressible in the textual
/// grammar, so a built query always survives [`Query::to_text`] →
/// [`parse_query`](crate::lang::parse_query) unchanged.
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    select: Vec<AggSpec>,
    stream: Option<String>,
    filter: Option<PExpr>,
    group_by: Vec<String>,
    window: Option<WindowSpec>,
    /// Optional latency budget (SLO) — not part of the query semantics
    /// (the produced [`Query`] AST is unchanged), consumed by
    /// `Session::register` to arm per-query breach tracking.
    slo: Option<TimeDelta>,
}

impl QueryBuilder {
    /// Add another SELECT item.
    pub fn select(mut self, agg: AggSpec) -> Self {
        self.select.push(agg);
        self
    }

    /// The stream the query reads (`FROM`).
    pub fn from(mut self, stream: impl Into<String>) -> Self {
        self.stream = Some(stream.into());
        self
    }

    /// The filter predicate (`WHERE`). Calling it twice ANDs the
    /// predicates.
    pub fn filter(mut self, predicate: PExpr) -> Self {
        self.filter = Some(match self.filter.take() {
            Some(existing) => existing.and(predicate),
            None => predicate,
        });
        self
    }

    /// The grouping fields (`GROUP BY`). Extends any previous call.
    pub fn group_by<I, S>(mut self, fields: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.group_by.extend(fields.into_iter().map(Into::into));
        self
    }

    /// The window expression (`OVER`).
    pub fn over(mut self, window: WindowSpec) -> Self {
        self.window = Some(window);
        self
    }

    /// Declare a latency budget (SLO) for this query: when registered
    /// through `Session::register`, completions slower than `budget` are
    /// counted as breaches in the cluster's
    /// [`MetricsSnapshot`](crate::metrics::MetricsSnapshot), and the
    /// front-ends escalate `Backpressure` under overload (see the
    /// `metrics` module's documented policy).
    ///
    /// The budget is *operational* metadata: it does not change the
    /// query's semantics or its AST (builder↔parser equivalence is
    /// untouched), so two registrations of the same statement with
    /// different budgets compute identical metrics.
    ///
    /// Because the budget is not part of the [`Query`] AST, it only
    /// takes effect when the **builder itself** is passed to
    /// `Session::register` — calling [`QueryBuilder::build`] first
    /// drops it (register the returned [`Query`] and call
    /// `Cluster::set_query_slo` yourself if you need the two-step
    /// form).
    pub fn with_slo(mut self, budget: TimeDelta) -> Self {
        self.slo = Some(budget);
        self
    }

    /// The declared latency budget, if any.
    pub fn slo(&self) -> Option<TimeDelta> {
        self.slo
    }

    /// Finalize into a [`Query`], validating completeness and textual
    /// expressibility (the wire carries query text).
    ///
    /// Note: a latency budget declared with [`QueryBuilder::with_slo`]
    /// is **not** carried by the returned [`Query`] (budgets are
    /// operational metadata, not query semantics). Pass the builder
    /// directly to `Session::register` for the SLO to be armed, or arm
    /// it explicitly with `Cluster::set_query_slo`.
    pub fn build(self) -> Result<Query> {
        let stream = self.stream.ok_or_else(|| {
            RailgunError::InvalidArgument("query builder: missing `.from(stream)`".into())
        })?;
        let window = self.window.ok_or_else(|| {
            RailgunError::InvalidArgument("query builder: missing `.over(window)`".into())
        })?;
        let query = Query {
            select: self.select,
            stream,
            filter: self.filter,
            group_by: self.group_by,
            window,
        };
        // The wire format is text: render AND re-parse at the build site,
        // so anything the grammar cannot carry — or would reparse to a
        // different AST — is rejected now instead of at registration.
        query.check_text_roundtrip()?;
        Ok(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse_query;

    #[test]
    fn builder_matches_parser_q1() {
        let built = Query::select(Agg::sum("amount"))
            .select(Agg::count())
            .from("payments")
            .group_by(["cardId"])
            .over(Window::sliding(mins(5)))
            .build()
            .unwrap();
        let parsed = parse_query(
            "SELECT sum(amount), count(*) FROM payments GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn builder_matches_parser_with_filter_and_delay() {
        let built = Query::select(Agg::count())
            .from("payments")
            .filter(
                field("amount")
                    .gt(100)
                    .and(field("country").eq_to("PT"))
                    .or(field("retries").le(2).not()),
            )
            .group_by(["cardId"])
            .over(Window::sliding(secs(30)).delayed_by(mins(2)))
            .build()
            .unwrap();
        let parsed = parse_query(
            "SELECT count(*) FROM payments \
             WHERE amount > 100 AND country = 'PT' OR NOT retries <= 2 \
             GROUP BY cardId OVER sliding 30 s delayed by 2 min",
        )
        .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn to_text_roundtrips_builder_queries() {
        let queries = [
            Query::select(Agg::count())
                .from("s")
                .over(Window::infinite())
                .build()
                .unwrap(),
            Query::select(Agg::avg("amount"))
                .select(Agg::count_distinct("merchantId"))
                .from("payments")
                .filter(
                    (field("amount") + field("fee"))
                        .ge(10.5)
                        .and(field("email").is_not_null()),
                )
                .group_by(["cardId", "merchantId"])
                .over(Window::tumbling(hours(1)))
                .build()
                .unwrap(),
            Query::select(Agg::max("x"))
                .from("s")
                .filter(field("flag").eq_to(true).or(field("note").is_null()))
                .group_by(["k"])
                .over(Window::sliding(millis(1500)).delayed_by(days(1)))
                .build()
                .unwrap(),
            // NOT nested *under* a comparison: the unparse must
            // parenthesize the NOT as a unit or this reparses as
            // Not(Cmp(..)) instead of Cmp(Not(..), ..).
            Query::select(Agg::count())
                .from("s")
                .filter(field("x").not().eq_to(true))
                .group_by(["k"])
                .over(Window::infinite())
                .build()
                .unwrap(),
            Query::select(Agg::count())
                .from("s")
                .filter(field("a").is_null().not().and(field("b").gt(1).not().not()))
                .group_by(["k"])
                .over(Window::infinite())
                .build()
                .unwrap(),
        ];
        for q in queries {
            let text = q.to_text().unwrap();
            let reparsed = parse_query(&text).unwrap();
            assert_eq!(reparsed, q, "roundtrip failed for: {text}");
        }
    }

    #[test]
    fn builder_matches_parser_approx_family() {
        let built = Query::select(Agg::count_distinct("addr").approx(0.02))
            .select(Agg::top_k("merchant", 10))
            .select(Agg::percentile("amount", 99.9))
            .from("payments")
            .group_by(["cardId"])
            .over(Window::sliding(mins(5)))
            .build()
            .unwrap();
        let parsed = parse_query(
            "SELECT countDistinct(addr) approx 0.02, topK(merchant, 10), \
             percentile(amount, 99.9) FROM payments GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        assert_eq!(built, parsed);
        // Plan identity is pinned byte-for-byte on the Debug rendering,
        // same as the PR 4 contract for the exact family.
        assert_eq!(format!("{built:?}"), format!("{parsed:?}"));
    }

    #[test]
    fn approx_family_roundtrips_through_text() {
        for q in [
            Query::select(Agg::count_distinct("x").approx(0.005))
                .from("s")
                .over(Window::infinite())
                .build()
                .unwrap(),
            Query::select(Agg::top_k("x", 3))
                .from("s")
                .over(Window::tumbling(hours(1)))
                .build()
                .unwrap(),
            Query::select(Agg::percentile("x", 50.0))
                .from("s")
                .group_by(["k"])
                .over(Window::sliding(secs(30)))
                .build()
                .unwrap(),
        ] {
            let text = q.to_text().unwrap();
            assert_eq!(parse_query(&text).unwrap(), q, "roundtrip failed: {text}");
        }
    }

    #[test]
    fn invalid_approx_params_rejected_at_build() {
        // Error out of range / sub-basis-point.
        for err in [0.0, -0.1, 0.6, f64::NAN, 0.000_01] {
            assert!(
                Query::select(Agg::count_distinct("x").approx(err))
                    .from("s")
                    .over(Window::infinite())
                    .build()
                    .is_err(),
                "approx({err}) should be rejected"
            );
        }
        // approx on a non-countDistinct aggregation.
        assert!(Query::select(Agg::sum("x").approx(0.02))
            .from("s")
            .over(Window::infinite())
            .build()
            .is_err());
        // topK k = 0 and out-of-range percentile ranks.
        assert!(Query::select(Agg::top_k("x", 0))
            .from("s")
            .over(Window::infinite())
            .build()
            .is_err());
        for rank in [0.0, 100.0, -1.0, 99.999] {
            assert!(
                Query::select(Agg::percentile("x", rank))
                    .from("s")
                    .over(Window::infinite())
                    .build()
                    .is_err(),
                "percentile({rank}) should be rejected"
            );
        }
    }

    #[test]
    fn incomplete_builders_rejected() {
        assert!(Query::select(Agg::count())
            .over(Window::infinite())
            .build()
            .is_err());
        assert!(Query::select(Agg::count()).from("s").build().is_err());
    }

    #[test]
    fn inexpressible_queries_rejected_at_build() {
        // A stream name the grammar cannot lex.
        assert!(Query::select(Agg::count())
            .from("has spaces")
            .over(Window::infinite())
            .build()
            .is_err());
        // A non-finite float literal.
        assert!(Query::select(Agg::count())
            .from("s")
            .filter(field("x").gt(f64::NAN))
            .over(Window::infinite())
            .build()
            .is_err());
    }

    #[test]
    fn double_filter_ands() {
        let q = Query::select(Agg::count())
            .from("s")
            .filter(field("a").gt(1))
            .filter(field("b").lt(2))
            .group_by(["k"])
            .over(Window::infinite())
            .build()
            .unwrap();
        assert!(matches!(q.filter, Some(PExpr::And(_, _))));
    }
}
