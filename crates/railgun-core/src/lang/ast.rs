//! Abstract syntax of Railgun's query language (paper Figure 4).
//!
//! ```text
//! SELECT AggExpression FROM streamName
//!   [WHERE filterExpression]
//!   [GROUP BY fields]
//!   OVER WindowExpression
//! ```

use railgun_types::{Result, Schema, TimeDelta};

use crate::expr::{ArithOp, CmpOp, Expr};

/// The aggregation functions of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    StdDev,
    Max,
    Min,
    Last,
    Prev,
    CountDistinct,
}

impl AggFunc {
    /// Canonical lowercase name (as written in queries).
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::StdDev => "stdDev",
            AggFunc::Max => "max",
            AggFunc::Min => "min",
            AggFunc::Last => "last",
            AggFunc::Prev => "prev",
            AggFunc::CountDistinct => "countDistinct",
        }
    }
}

/// One `Aggregation(field)` item in the SELECT list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggSpec {
    pub func: AggFunc,
    /// `None` encodes `count(*)`.
    pub field: Option<String>,
}

impl AggSpec {
    /// Display name, e.g. `sum(amount)`.
    pub fn display(&self) -> String {
        match &self.field {
            Some(f) => format!("{}({f})", self.func.name()),
            None => format!("{}(*)", self.func.name()),
        }
    }
}

/// Window shape (Figure 4's `TimeWindowExpr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowKind {
    /// Real-time sliding window: evaluated right after every event.
    Sliding(TimeDelta),
    /// Fixed, non-overlapping buckets.
    Tumbling(TimeDelta),
    /// Events never expire.
    Infinite,
}

/// A window expression, optionally `delayed by` an offset (§3.4 — useful
/// for bot-attack detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowSpec {
    pub kind: WindowKind,
    pub delay: TimeDelta,
}

impl WindowSpec {
    pub fn sliding(size: TimeDelta) -> Self {
        WindowSpec {
            kind: WindowKind::Sliding(size),
            delay: TimeDelta::ZERO,
        }
    }

    pub fn tumbling(size: TimeDelta) -> Self {
        WindowSpec {
            kind: WindowKind::Tumbling(size),
            delay: TimeDelta::ZERO,
        }
    }

    pub fn infinite() -> Self {
        WindowSpec {
            kind: WindowKind::Infinite,
            delay: TimeDelta::ZERO,
        }
    }

    pub fn delayed_by(mut self, delay: TimeDelta) -> Self {
        self.delay = delay;
        self
    }

    /// Human-readable form, e.g. `sliding 5min delayed by 1min`.
    pub fn display(&self) -> String {
        let base = match self.kind {
            WindowKind::Sliding(ws) => format!("sliding {ws}"),
            WindowKind::Tumbling(ws) => format!("tumbling {ws}"),
            WindowKind::Infinite => "infinite".to_owned(),
        };
        if self.delay.is_positive() {
            format!("{base} delayed by {}", self.delay)
        } else {
            base
        }
    }
}

/// An unresolved filter expression (field names, not indexes).
#[derive(Debug, Clone, PartialEq)]
pub enum PExpr {
    Lit(railgun_types::Value),
    Field(String),
    Cmp(CmpOp, Box<PExpr>, Box<PExpr>),
    Arith(ArithOp, Box<PExpr>, Box<PExpr>),
    And(Box<PExpr>, Box<PExpr>),
    Or(Box<PExpr>, Box<PExpr>),
    Not(Box<PExpr>),
    IsNull(Box<PExpr>),
    IsNotNull(Box<PExpr>),
}

impl PExpr {
    /// Resolve field names against `schema`, producing a compiled [`Expr`].
    pub fn resolve(&self, schema: &Schema) -> Result<Expr> {
        Ok(match self {
            PExpr::Lit(v) => Expr::Lit(v.clone()),
            PExpr::Field(name) => Expr::field(schema, name)?,
            PExpr::Cmp(op, a, b) => Expr::Cmp(
                *op,
                Box::new(a.resolve(schema)?),
                Box::new(b.resolve(schema)?),
            ),
            PExpr::Arith(op, a, b) => Expr::Arith(
                *op,
                Box::new(a.resolve(schema)?),
                Box::new(b.resolve(schema)?),
            ),
            PExpr::And(a, b) => Expr::And(
                Box::new(a.resolve(schema)?),
                Box::new(b.resolve(schema)?),
            ),
            PExpr::Or(a, b) => Expr::Or(
                Box::new(a.resolve(schema)?),
                Box::new(b.resolve(schema)?),
            ),
            PExpr::Not(a) => Expr::Not(Box::new(a.resolve(schema)?)),
            PExpr::IsNull(a) => Expr::IsNull(Box::new(a.resolve(schema)?)),
            PExpr::IsNotNull(a) => {
                Expr::Not(Box::new(Expr::IsNull(Box::new(a.resolve(schema)?))))
            }
        })
    }
}

/// A parsed query statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub select: Vec<AggSpec>,
    pub stream: String,
    pub filter: Option<PExpr>,
    pub group_by: Vec<String>,
    pub window: WindowSpec,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_display() {
        assert_eq!(
            AggSpec {
                func: AggFunc::Sum,
                field: Some("amount".into())
            }
            .display(),
            "sum(amount)"
        );
        assert_eq!(
            AggSpec {
                func: AggFunc::Count,
                field: None
            }
            .display(),
            "count(*)"
        );
    }

    #[test]
    fn window_display() {
        assert_eq!(
            WindowSpec::sliding(TimeDelta::from_minutes(5)).display(),
            "sliding 5min"
        );
        assert_eq!(
            WindowSpec::tumbling(TimeDelta::from_hours(1))
                .delayed_by(TimeDelta::from_minutes(2))
                .display(),
            "tumbling 1h delayed by 2min"
        );
        assert_eq!(WindowSpec::infinite().display(), "infinite");
    }

    #[test]
    fn pexpr_resolution() {
        use railgun_types::{FieldType, Value};
        let schema = Schema::from_pairs(&[("x", FieldType::Int)]).unwrap();
        let p = PExpr::Cmp(
            CmpOp::Gt,
            Box::new(PExpr::Field("x".into())),
            Box::new(PExpr::Lit(Value::Int(3))),
        );
        let e = p.resolve(&schema).unwrap();
        assert!(e.matches(&[Value::Int(4)]));
        assert!(!e.matches(&[Value::Int(2)]));
        let bad = PExpr::Field("missing".into());
        assert!(bad.resolve(&schema).is_err());
    }

    #[test]
    fn is_not_null_resolves_to_negation() {
        use railgun_types::{FieldType, Value};
        let schema = Schema::from_pairs(&[("x", FieldType::Int)]).unwrap();
        let p = PExpr::IsNotNull(Box::new(PExpr::Field("x".into())));
        let e = p.resolve(&schema).unwrap();
        assert!(e.matches(&[Value::Int(1)]));
        assert!(!e.matches(&[Value::Null]));
    }
}
