//! Abstract syntax of Railgun's query language (paper Figure 4).
//!
//! ```text
//! SELECT AggExpression FROM streamName
//!   [WHERE filterExpression]
//!   [GROUP BY fields]
//!   OVER WindowExpression
//! ```

use railgun_types::{RailgunError, Result, Schema, TimeDelta};

use crate::expr::{ArithOp, CmpOp, Expr};

/// The aggregation functions of Figure 4, plus the sketch-backed
/// approximate family (`countDistinct … approx`, `topK`, `percentile`).
///
/// Numeric parameters are carried as integer basis points so the enum
/// stays `Copy + Eq + Hash` (plan-leaf sharing keys on it): `err_bp` is
/// the relative error × 10⁴ (`200` = 2%), `rank_bp` the percentile
/// rank × 10² (`9900` = p99). Valid ranges are enforced when the query
/// is planned or rendered to text: `err_bp ∈ 1..=5000`, `k ≥ 1`,
/// `rank_bp ∈ 1..=9999`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    StdDev,
    Max,
    Min,
    Last,
    Prev,
    CountDistinct,
    /// HLL-backed `countDistinct(f) approx <err>`.
    ApproxCountDistinct { err_bp: u32 },
    /// Space-saving heavy hitters `topK(f, k)`.
    TopK { k: u32 },
    /// Quantile-sketch `percentile(f, p)`.
    Percentile { rank_bp: u32 },
}

impl AggFunc {
    /// Canonical base name (as written in queries, without parameters).
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::StdDev => "stdDev",
            AggFunc::Max => "max",
            AggFunc::Min => "min",
            AggFunc::Last => "last",
            AggFunc::Prev => "prev",
            AggFunc::CountDistinct => "countDistinct",
            AggFunc::ApproxCountDistinct { .. } => "countDistinct",
            AggFunc::TopK { .. } => "topK",
            AggFunc::Percentile { .. } => "percentile",
        }
    }

    /// Validate parameter ranges (see type-level docs). The fluent
    /// builder encodes out-of-range inputs as sentinel values; this is
    /// where they are rejected with a proper error.
    pub fn check_params(self) -> Result<()> {
        match self {
            AggFunc::ApproxCountDistinct { err_bp } if !(1..=5000).contains(&err_bp) => {
                Err(RailgunError::InvalidArgument(format!(
                    "approx error must be in (0, 0.5], got {} ({err_bp} bp)",
                    f64::from(err_bp) / 10_000.0
                )))
            }
            AggFunc::TopK { k: 0 } => Err(RailgunError::InvalidArgument(
                "topK needs k >= 1".into(),
            )),
            AggFunc::Percentile { rank_bp } if !(1..=9999).contains(&rank_bp) => {
                Err(RailgunError::InvalidArgument(format!(
                    "percentile rank must be in (0, 100), got {}",
                    f64::from(rank_bp) / 100.0
                )))
            }
            _ => Ok(()),
        }
    }
}

/// One `Aggregation(field)` item in the SELECT list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggSpec {
    pub func: AggFunc,
    /// `None` encodes `count(*)`.
    pub field: Option<String>,
}

impl AggSpec {
    /// Display name, e.g. `sum(amount)` — rendered exactly as the
    /// grammar parses it, including approximate-family parameters
    /// (`countDistinct(addr) approx 0.02`, `topK(merchant, 10)`,
    /// `percentile(amount, 99.9)`).
    pub fn display(&self) -> String {
        let f = self.field.as_deref().unwrap_or("*");
        match self.func {
            AggFunc::ApproxCountDistinct { err_bp } => {
                format!("countDistinct({f}) approx {}", f64::from(err_bp) / 10_000.0)
            }
            AggFunc::TopK { k } => format!("topK({f}, {k})"),
            AggFunc::Percentile { rank_bp } => {
                if rank_bp % 100 == 0 {
                    format!("percentile({f}, {})", rank_bp / 100)
                } else {
                    format!("percentile({f}, {})", f64::from(rank_bp) / 100.0)
                }
            }
            func => format!("{}({f})", func.name()),
        }
    }
}

/// Window shape (Figure 4's `TimeWindowExpr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowKind {
    /// Real-time sliding window: evaluated right after every event.
    Sliding(TimeDelta),
    /// Fixed, non-overlapping buckets.
    Tumbling(TimeDelta),
    /// Events never expire.
    Infinite,
}

/// A window expression, optionally `delayed by` an offset (§3.4 — useful
/// for bot-attack detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowSpec {
    pub kind: WindowKind,
    pub delay: TimeDelta,
}

impl WindowSpec {
    pub fn sliding(size: TimeDelta) -> Self {
        WindowSpec {
            kind: WindowKind::Sliding(size),
            delay: TimeDelta::ZERO,
        }
    }

    pub fn tumbling(size: TimeDelta) -> Self {
        WindowSpec {
            kind: WindowKind::Tumbling(size),
            delay: TimeDelta::ZERO,
        }
    }

    pub fn infinite() -> Self {
        WindowSpec {
            kind: WindowKind::Infinite,
            delay: TimeDelta::ZERO,
        }
    }

    pub fn delayed_by(mut self, delay: TimeDelta) -> Self {
        self.delay = delay;
        self
    }

    /// Human-readable form, e.g. `sliding 5min delayed by 1min`.
    pub fn display(&self) -> String {
        let base = match self.kind {
            WindowKind::Sliding(ws) => format!("sliding {ws}"),
            WindowKind::Tumbling(ws) => format!("tumbling {ws}"),
            WindowKind::Infinite => "infinite".to_owned(),
        };
        if self.delay.is_positive() {
            format!("{base} delayed by {}", self.delay)
        } else {
            base
        }
    }
}

/// An unresolved filter expression (field names, not indexes).
#[derive(Debug, Clone, PartialEq)]
pub enum PExpr {
    Lit(railgun_types::Value),
    Field(String),
    Cmp(CmpOp, Box<PExpr>, Box<PExpr>),
    Arith(ArithOp, Box<PExpr>, Box<PExpr>),
    And(Box<PExpr>, Box<PExpr>),
    Or(Box<PExpr>, Box<PExpr>),
    Not(Box<PExpr>),
    IsNull(Box<PExpr>),
    IsNotNull(Box<PExpr>),
}

impl PExpr {
    /// Resolve field names against `schema`, producing a compiled [`Expr`].
    pub fn resolve(&self, schema: &Schema) -> Result<Expr> {
        Ok(match self {
            PExpr::Lit(v) => Expr::Lit(v.clone()),
            PExpr::Field(name) => Expr::field(schema, name)?,
            PExpr::Cmp(op, a, b) => Expr::Cmp(
                *op,
                Box::new(a.resolve(schema)?),
                Box::new(b.resolve(schema)?),
            ),
            PExpr::Arith(op, a, b) => Expr::Arith(
                *op,
                Box::new(a.resolve(schema)?),
                Box::new(b.resolve(schema)?),
            ),
            PExpr::And(a, b) => Expr::And(
                Box::new(a.resolve(schema)?),
                Box::new(b.resolve(schema)?),
            ),
            PExpr::Or(a, b) => Expr::Or(
                Box::new(a.resolve(schema)?),
                Box::new(b.resolve(schema)?),
            ),
            PExpr::Not(a) => Expr::Not(Box::new(a.resolve(schema)?)),
            PExpr::IsNull(a) => Expr::IsNull(Box::new(a.resolve(schema)?)),
            PExpr::IsNotNull(a) => {
                Expr::Not(Box::new(Expr::IsNull(Box::new(a.resolve(schema)?))))
            }
        })
    }
}

/// A parsed query statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub select: Vec<AggSpec>,
    pub stream: String,
    pub filter: Option<PExpr>,
    pub group_by: Vec<String>,
    pub window: WindowSpec,
}

impl Query {
    /// Render this query back to its textual form (Figure 4 syntax).
    ///
    /// This is the bridge between the typed builder and the wire: a
    /// builder-constructed query travels the ops topic as text and is
    /// parsed by every node, exactly like a hand-written statement. The
    /// contract `parse_query(q.to_text()) == q` is pinned by tests (see
    /// DESIGN.md § "Client API").
    ///
    /// Errors with [`RailgunError::InvalidArgument`] for queries the
    /// textual grammar cannot express: non-identifier field/stream names,
    /// non-finite float literals, `i64::MIN`, or string literals
    /// containing both quote characters.
    pub fn to_text(&self) -> Result<String> {
        let mut out = String::with_capacity(128);
        out.push_str("SELECT ");
        if self.select.is_empty() {
            return Err(RailgunError::InvalidArgument(
                "query selects no aggregations".into(),
            ));
        }
        for (i, agg) in self.select.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            if let Some(f) = &agg.field {
                check_ident(f)?;
            }
            agg.func.check_params()?;
            out.push_str(&agg.display());
        }
        check_ident(&self.stream)?;
        out.push_str(" FROM ");
        out.push_str(&self.stream);
        if let Some(filter) = &self.filter {
            out.push_str(" WHERE ");
            unparse_expr(filter, &mut out)?;
        }
        if !self.group_by.is_empty() {
            out.push_str(" GROUP BY ");
            for (i, f) in self.group_by.iter().enumerate() {
                check_ident(f)?;
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(f);
            }
        }
        out.push_str(" OVER ");
        match self.window.kind {
            WindowKind::Sliding(ws) => {
                out.push_str("sliding ");
                unparse_duration(ws, &mut out)?;
            }
            WindowKind::Tumbling(ws) => {
                out.push_str("tumbling ");
                unparse_duration(ws, &mut out)?;
            }
            WindowKind::Infinite => out.push_str("infinite"),
        }
        if self.window.delay.is_positive() {
            out.push_str(" delayed by ");
            unparse_duration(self.window.delay, &mut out)?;
        }
        Ok(out)
    }

    /// Render this query to text and re-parse it, erroring unless the
    /// roundtrip reproduces `self` exactly. This is the release-mode
    /// backstop for the builder↔parser equivalence contract: the wire
    /// carries text, so a query whose textual form parses to anything
    /// else must never reach the ops topic.
    pub fn check_text_roundtrip(&self) -> Result<String> {
        let text = self.to_text()?;
        let reparsed = crate::lang::parse_query(&text)?;
        if &reparsed != self {
            return Err(RailgunError::InvalidArgument(format!(
                "query does not survive its textual form `{text}`: \
                 reparsed to a different statement"
            )));
        }
        Ok(text)
    }

    /// Display name of the `index`-th SELECT item as replies carry it,
    /// e.g. `sum(amount) over sliding 5min` — the single source of the
    /// reply-name format (plan metric refs and session handles both use
    /// it).
    pub fn metric_name(&self, index: usize) -> Option<String> {
        self.select
            .get(index)
            .map(|agg| format!("{} over {}", agg.display(), self.window.display()))
    }
}

/// True iff `name` lexes as a single identifier token.
fn is_ident(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn check_ident(name: &str) -> Result<()> {
    if is_ident(name) {
        Ok(())
    } else {
        Err(RailgunError::InvalidArgument(format!(
            "`{name}` is not a valid identifier (must match [A-Za-z_][A-Za-z0-9_.]*)"
        )))
    }
}

/// Unparse a duration as raw milliseconds — always re-parseable,
/// independent of how the display formatter would pick units.
fn unparse_duration(d: TimeDelta, out: &mut String) -> Result<()> {
    let ms = d.as_millis();
    if ms <= 0 {
        return Err(RailgunError::InvalidArgument(format!(
            "window durations must be positive, got {ms} ms"
        )));
    }
    use std::fmt::Write;
    let _ = write!(out, "{ms} ms");
    Ok(())
}

fn unparse_value(v: &railgun_types::Value, out: &mut String) -> Result<()> {
    use railgun_types::Value;
    use std::fmt::Write;
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => {
            // `-n` is unparsed as a unary minus on the positive literal,
            // which the lexer cannot represent for i64::MIN.
            if *n == i64::MIN {
                return Err(RailgunError::InvalidArgument(
                    "i64::MIN literal is not expressible in query text".into(),
                ));
            }
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(RailgunError::InvalidArgument(format!(
                    "non-finite float literal {f} is not expressible in query text"
                )));
            }
            if *f == f.trunc() {
                // Keep the decimal point so it lexes back as a float.
                let _ = write!(out, "{f:.1}");
            } else {
                let _ = write!(out, "{f}");
            }
        }
        Value::Str(s) => {
            let quote = if !s.contains('\'') {
                '\''
            } else if !s.contains('"') {
                '"'
            } else {
                return Err(RailgunError::InvalidArgument(format!(
                    "string literal {s:?} contains both quote characters"
                )));
            };
            out.push(quote);
            out.push_str(s);
            out.push(quote);
        }
    }
    Ok(())
}

/// Unparse a filter expression, fully parenthesized so precedence never
/// has to be reconstructed.
fn unparse_expr(e: &PExpr, out: &mut String) -> Result<()> {
    use crate::expr::{ArithOp, CmpOp};
    match e {
        PExpr::Lit(v) => unparse_value(v, out)?,
        PExpr::Field(name) => {
            check_ident(name)?;
            out.push_str(name);
        }
        PExpr::Cmp(op, a, b) => {
            let sym = match op {
                CmpOp::Eq => "=",
                CmpOp::Ne => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            out.push('(');
            unparse_expr(a, out)?;
            out.push(' ');
            out.push_str(sym);
            out.push(' ');
            unparse_expr(b, out)?;
            out.push(')');
        }
        PExpr::Arith(op, a, b) => {
            let sym = match op {
                ArithOp::Add => "+",
                ArithOp::Sub => "-",
                ArithOp::Mul => "*",
                ArithOp::Div => "/",
            };
            out.push('(');
            unparse_expr(a, out)?;
            out.push(' ');
            out.push_str(sym);
            out.push(' ');
            unparse_expr(b, out)?;
            out.push(')');
        }
        PExpr::And(a, b) => {
            out.push('(');
            unparse_expr(a, out)?;
            out.push_str(" AND ");
            unparse_expr(b, out)?;
            out.push(')');
        }
        PExpr::Or(a, b) => {
            out.push('(');
            unparse_expr(a, out)?;
            out.push_str(" OR ");
            unparse_expr(b, out)?;
            out.push(')');
        }
        PExpr::Not(a) => {
            // Parenthesized as a unit: the parser's NOT binds looser than
            // comparison, so a bare `NOT x = true` would reparse as
            // `NOT (x = true)` when this node sits under a comparison.
            out.push_str("(NOT ");
            unparse_expr(a, out)?;
            out.push(')');
        }
        PExpr::IsNull(a) => {
            out.push('(');
            unparse_expr(a, out)?;
            out.push_str(" IS NULL)");
        }
        PExpr::IsNotNull(a) => {
            out.push('(');
            unparse_expr(a, out)?;
            out.push_str(" IS NOT NULL)");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_display() {
        assert_eq!(
            AggSpec {
                func: AggFunc::Sum,
                field: Some("amount".into())
            }
            .display(),
            "sum(amount)"
        );
        assert_eq!(
            AggSpec {
                func: AggFunc::Count,
                field: None
            }
            .display(),
            "count(*)"
        );
    }

    #[test]
    fn approx_family_display() {
        let spec = |func| AggSpec {
            func,
            field: Some("addr".into()),
        };
        assert_eq!(
            spec(AggFunc::ApproxCountDistinct { err_bp: 200 }).display(),
            "countDistinct(addr) approx 0.02"
        );
        assert_eq!(spec(AggFunc::TopK { k: 10 }).display(), "topK(addr, 10)");
        assert_eq!(
            spec(AggFunc::Percentile { rank_bp: 9900 }).display(),
            "percentile(addr, 99)"
        );
        assert_eq!(
            spec(AggFunc::Percentile { rank_bp: 9990 }).display(),
            "percentile(addr, 99.9)"
        );
    }

    #[test]
    fn param_validation() {
        assert!(AggFunc::ApproxCountDistinct { err_bp: 0 }.check_params().is_err());
        assert!(AggFunc::ApproxCountDistinct { err_bp: 5001 }.check_params().is_err());
        assert!(AggFunc::ApproxCountDistinct { err_bp: 200 }.check_params().is_ok());
        assert!(AggFunc::TopK { k: 0 }.check_params().is_err());
        assert!(AggFunc::TopK { k: 1 }.check_params().is_ok());
        assert!(AggFunc::Percentile { rank_bp: 0 }.check_params().is_err());
        assert!(AggFunc::Percentile { rank_bp: 10000 }.check_params().is_err());
        assert!(AggFunc::Percentile { rank_bp: 5000 }.check_params().is_ok());
    }

    #[test]
    fn window_display() {
        assert_eq!(
            WindowSpec::sliding(TimeDelta::from_minutes(5)).display(),
            "sliding 5min"
        );
        assert_eq!(
            WindowSpec::tumbling(TimeDelta::from_hours(1))
                .delayed_by(TimeDelta::from_minutes(2))
                .display(),
            "tumbling 1h delayed by 2min"
        );
        assert_eq!(WindowSpec::infinite().display(), "infinite");
    }

    #[test]
    fn pexpr_resolution() {
        use railgun_types::{FieldType, Value};
        let schema = Schema::from_pairs(&[("x", FieldType::Int)]).unwrap();
        let p = PExpr::Cmp(
            CmpOp::Gt,
            Box::new(PExpr::Field("x".into())),
            Box::new(PExpr::Lit(Value::Int(3))),
        );
        let e = p.resolve(&schema).unwrap();
        assert!(e.matches(&[Value::Int(4)]));
        assert!(!e.matches(&[Value::Int(2)]));
        let bad = PExpr::Field("missing".into());
        assert!(bad.resolve(&schema).is_err());
    }

    #[test]
    fn is_not_null_resolves_to_negation() {
        use railgun_types::{FieldType, Value};
        let schema = Schema::from_pairs(&[("x", FieldType::Int)]).unwrap();
        let p = PExpr::IsNotNull(Box::new(PExpr::Field("x".into())));
        let e = p.resolve(&schema).unwrap();
        assert!(e.matches(&[Value::Int(1)]));
        assert!(!e.matches(&[Value::Null]));
    }
}
