//! Tokenizer for the query language.

use railgun_types::{RailgunError, Result};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are matched case-insensitively by
    /// the parser; the original spelling is preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single- or double-quoted string literal.
    Str(String),
    LParen,
    RParen,
    Comma,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Split `input` into tokens.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '=' => {
                // accept both `=` and `==`
                i += if bytes.get(i + 1) == Some(&b'=') { 2 } else { 1 };
                out.push(Token::Eq);
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(RailgunError::Parse(format!(
                        "unexpected `!` at byte {i} (did you mean `!=`?)"
                    )));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::NotEq);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] as char != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(RailgunError::Parse(format!(
                        "unterminated string starting at byte {i}"
                    )));
                }
                out.push(Token::Str(input[start..j].to_owned()));
                i = j + 1;
            }
            '0'..='9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() {
                    match bytes[i] as char {
                        '0'..='9' => i += 1,
                        '.' if !is_float => {
                            is_float = true;
                            i += 1;
                        }
                        _ => break,
                    }
                }
                let text = &input[start..i];
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| {
                        RailgunError::Parse(format!("bad float literal `{text}`"))
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| {
                        RailgunError::Parse(format!("bad int literal `{text}`"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(input[start..i].to_owned()));
            }
            other => {
                return Err(RailgunError::Parse(format!(
                    "unexpected character `{other}` at byte {i}"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_full_query() {
        let toks = tokenize(
            "SELECT sum(amount), count(*) FROM payments WHERE amount > 10.5 \
             GROUP BY cardId OVER sliding 5 minutes",
        )
        .unwrap();
        assert!(toks.contains(&Token::Ident("sum".into())));
        assert!(toks.contains(&Token::Star));
        assert!(toks.contains(&Token::Gt));
        assert!(toks.contains(&Token::Float(10.5)));
        assert!(toks.contains(&Token::Int(5)));
    }

    #[test]
    fn operators_and_aliases() {
        assert_eq!(tokenize("= ==").unwrap(), vec![Token::Eq, Token::Eq]);
        assert_eq!(tokenize("!= <>").unwrap(), vec![Token::NotEq, Token::NotEq]);
        assert_eq!(
            tokenize("< <= > >=").unwrap(),
            vec![Token::Lt, Token::Le, Token::Gt, Token::Ge]
        );
    }

    #[test]
    fn string_literals_both_quotes() {
        assert_eq!(
            tokenize("'abc' \"xyz\"").unwrap(),
            vec![Token::Str("abc".into()), Token::Str("xyz".into())]
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("№").is_err());
    }

    #[test]
    fn identifiers_with_dots_and_underscores() {
        assert_eq!(
            tokenize("a_b payments.card").unwrap(),
            vec![
                Token::Ident("a_b".into()),
                Token::Ident("payments.card".into())
            ]
        );
    }
}
