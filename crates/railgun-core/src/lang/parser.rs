//! Recursive-descent parser for the query language of Figure 4.

use railgun_types::{RailgunError, Result, TimeDelta, Value};

use crate::expr::{ArithOp, CmpOp};
use crate::lang::ast::{AggFunc, AggSpec, PExpr, Query, WindowKind, WindowSpec};
use crate::lang::lexer::{tokenize, Token};

/// Parse one query statement.
pub fn parse_query(input: &str) -> Result<Query> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(RailgunError::Parse(format!(
            "trailing tokens after query: {:?}",
            &p.tokens[p.pos..]
        )));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consume an identifier matching `kw` case-insensitively.
    fn keyword(&mut self, kw: &str) -> Result<()> {
        match self.next() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(RailgunError::Parse(format!(
                "expected keyword `{kw}`, found {other:?}"
            ))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(RailgunError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn expect(&mut self, tok: &Token) -> Result<()> {
        match self.next() {
            Some(t) if t == *tok => Ok(()),
            other => Err(RailgunError::Parse(format!(
                "expected {tok:?}, found {other:?}"
            ))),
        }
    }

    fn query(&mut self) -> Result<Query> {
        self.keyword("select")?;
        let mut select = vec![self.agg_spec()?];
        while matches!(self.peek(), Some(Token::Comma)) {
            self.next();
            select.push(self.agg_spec()?);
        }
        self.keyword("from")?;
        let stream = self.ident()?;
        let filter = if self.peek_keyword("where") {
            self.next();
            Some(self.or_expr()?)
        } else {
            None
        };
        let group_by = if self.peek_keyword("group") {
            self.next();
            self.keyword("by")?;
            let mut fields = vec![self.ident()?];
            while matches!(self.peek(), Some(Token::Comma)) {
                self.next();
                fields.push(self.ident()?);
            }
            fields
        } else {
            Vec::new()
        };
        self.keyword("over")?;
        let window = self.window_spec()?;
        Ok(Query {
            select,
            stream,
            filter,
            group_by,
            window,
        })
    }

    fn agg_spec(&mut self) -> Result<AggSpec> {
        let name = self.ident()?;
        let lname = name.to_ascii_lowercase();
        let func = match lname.as_str() {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            "stddev" => AggFunc::StdDev,
            "max" => AggFunc::Max,
            "min" => AggFunc::Min,
            "last" => AggFunc::Last,
            "prev" => AggFunc::Prev,
            "countdistinct" => AggFunc::CountDistinct,
            // Parameters parsed below, after the field.
            "topk" => AggFunc::TopK { k: 0 },
            "percentile" => AggFunc::Percentile { rank_bp: 0 },
            other => {
                return Err(RailgunError::Parse(format!(
                    "unknown aggregation `{other}`"
                )))
            }
        };
        self.expect(&Token::LParen)?;
        let field = match self.peek() {
            Some(Token::Star) => {
                self.next();
                if func != AggFunc::Count {
                    return Err(RailgunError::Parse(format!(
                        "`*` is only valid in count(*), not {}",
                        func.name()
                    )));
                }
                None
            }
            _ => Some(self.ident()?),
        };
        let func = match func {
            AggFunc::TopK { .. } => {
                self.expect(&Token::Comma)?;
                let k = match self.next() {
                    Some(Token::Int(n)) if (1..=i64::from(u32::MAX)).contains(&n) => n as u32,
                    other => {
                        return Err(RailgunError::Parse(format!(
                            "topK needs a positive integer k, found {other:?}"
                        )))
                    }
                };
                AggFunc::TopK { k }
            }
            AggFunc::Percentile { .. } => {
                self.expect(&Token::Comma)?;
                // Rank in percent, integer (`99`) or fractional (`99.9`),
                // carried as basis points of a percent.
                let rank_bp = match self.next() {
                    Some(Token::Int(n)) if (1..100).contains(&n) => (n * 100) as u32,
                    Some(Token::Float(f)) if f > 0.0 && f < 100.0 => {
                        let bp = (f * 100.0).round();
                        if bp < 1.0 || (bp - f * 100.0).abs() > 1e-6 {
                            return Err(RailgunError::Parse(format!(
                                "percentile rank {f} has sub-basis-point precision"
                            )));
                        }
                        bp as u32
                    }
                    other => {
                        return Err(RailgunError::Parse(format!(
                            "percentile needs a rank in (0, 100), found {other:?}"
                        )))
                    }
                };
                AggFunc::Percentile { rank_bp }
            }
            f => f,
        };
        self.expect(&Token::RParen)?;
        // Postfix `approx <err>` turns exact countDistinct into the
        // HLL-backed form; it is invalid on any other aggregation.
        let func = if self.peek_keyword("approx") {
            self.next();
            if func != AggFunc::CountDistinct {
                return Err(RailgunError::Parse(format!(
                    "`approx` only applies to countDistinct, not {}",
                    func.name()
                )));
            }
            let err_bp = match self.next() {
                Some(Token::Float(f)) if f > 0.0 && f <= 0.5 => {
                    let bp = (f * 10_000.0).round();
                    if bp < 1.0 || (bp - f * 10_000.0).abs() > 1e-6 {
                        return Err(RailgunError::Parse(format!(
                            "approx error {f} has sub-basis-point precision"
                        )));
                    }
                    bp as u32
                }
                other => {
                    return Err(RailgunError::Parse(format!(
                        "approx needs a relative error in (0, 0.5], found {other:?}"
                    )))
                }
            };
            AggFunc::ApproxCountDistinct { err_bp }
        } else {
            func
        };
        Ok(AggSpec { func, field })
    }

    fn window_spec(&mut self) -> Result<WindowSpec> {
        let kind = if self.peek_keyword("sliding") {
            self.next();
            WindowKind::Sliding(self.duration()?)
        } else if self.peek_keyword("tumbling") {
            self.next();
            WindowKind::Tumbling(self.duration()?)
        } else if self.peek_keyword("infinite") {
            self.next();
            WindowKind::Infinite
        } else {
            return Err(RailgunError::Parse(format!(
                "expected window kind (sliding/tumbling/infinite), found {:?}",
                self.peek()
            )));
        };
        let mut spec = WindowSpec {
            kind,
            delay: TimeDelta::ZERO,
        };
        if self.peek_keyword("delayed") {
            self.next();
            self.keyword("by")?;
            spec.delay = self.duration()?;
        }
        Ok(spec)
    }

    /// `<number> <unit>` where unit ∈ ms|seconds|minutes|hours|days (with
    /// common abbreviations and singular forms).
    fn duration(&mut self) -> Result<TimeDelta> {
        let n = match self.next() {
            Some(Token::Int(n)) if n > 0 => n,
            other => {
                return Err(RailgunError::Parse(format!(
                    "expected positive integer duration, found {other:?}"
                )))
            }
        };
        let unit = self.ident()?;
        let delta = match unit.to_ascii_lowercase().as_str() {
            "ms" | "millisecond" | "milliseconds" => TimeDelta::from_millis(n),
            "s" | "sec" | "secs" | "second" | "seconds" => TimeDelta::from_secs(n),
            "min" | "mins" | "minute" | "minutes" => TimeDelta::from_minutes(n),
            "h" | "hour" | "hours" => TimeDelta::from_hours(n),
            "d" | "day" | "days" => TimeDelta::from_days(n),
            other => {
                return Err(RailgunError::Parse(format!(
                    "unknown duration unit `{other}`"
                )))
            }
        };
        Ok(delta)
    }

    // ---- filter expression grammar ----

    fn or_expr(&mut self) -> Result<PExpr> {
        let mut left = self.and_expr()?;
        while self.peek_keyword("or") {
            self.next();
            let right = self.and_expr()?;
            left = PExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<PExpr> {
        let mut left = self.not_expr()?;
        while self.peek_keyword("and") {
            self.next();
            let right = self.not_expr()?;
            left = PExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<PExpr> {
        if self.peek_keyword("not") {
            self.next();
            return Ok(PExpr::Not(Box::new(self.not_expr()?)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<PExpr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.peek_keyword("is") {
            self.next();
            if self.peek_keyword("not") {
                self.next();
                self.keyword("null")?;
                return Ok(PExpr::IsNotNull(Box::new(left)));
            }
            self.keyword("null")?;
            return Ok(PExpr::IsNull(Box::new(left)));
        }
        let op = match self.peek() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::NotEq) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            _ => return Ok(left),
        };
        self.next();
        let right = self.additive()?;
        Ok(PExpr::Cmp(op, Box::new(left), Box::new(right)))
    }

    fn additive(&mut self) -> Result<PExpr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => ArithOp::Add,
                Some(Token::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.next();
            let right = self.multiplicative()?;
            left = PExpr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<PExpr> {
        let mut left = self.primary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => ArithOp::Mul,
                Some(Token::Slash) => ArithOp::Div,
                _ => break,
            };
            self.next();
            let right = self.primary()?;
            left = PExpr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn primary(&mut self) -> Result<PExpr> {
        match self.next() {
            Some(Token::Int(n)) => Ok(PExpr::Lit(Value::Int(n))),
            Some(Token::Float(f)) => Ok(PExpr::Lit(Value::Float(f))),
            Some(Token::Str(s)) => Ok(PExpr::Lit(Value::Str(s))),
            Some(Token::Minus) => {
                // unary minus on numeric literal
                match self.next() {
                    Some(Token::Int(n)) => Ok(PExpr::Lit(Value::Int(-n))),
                    Some(Token::Float(f)) => Ok(PExpr::Lit(Value::Float(-f))),
                    other => Err(RailgunError::Parse(format!(
                        "expected numeric literal after `-`, found {other:?}"
                    ))),
                }
            }
            Some(Token::LParen) => {
                let e = self.or_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => match name.to_ascii_lowercase().as_str() {
                "true" => Ok(PExpr::Lit(Value::Bool(true))),
                "false" => Ok(PExpr::Lit(Value::Bool(false))),
                "null" => Ok(PExpr::Lit(Value::Null)),
                _ => Ok(PExpr::Field(name)),
            },
            other => Err(RailgunError::Parse(format!(
                "unexpected token in expression: {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_q1_of_the_paper() {
        // Q1: SELECT SUM(amount), COUNT(*) FROM payments
        //     GROUP BY cardId [RANGE 5 MINUTES]
        let q = parse_query(
            "SELECT sum(amount), count(*) FROM payments GROUP BY cardId OVER sliding 5 minutes",
        )
        .unwrap();
        assert_eq!(q.stream, "payments");
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.select[0].func, AggFunc::Sum);
        assert_eq!(q.select[0].field.as_deref(), Some("amount"));
        assert_eq!(q.select[1].func, AggFunc::Count);
        assert_eq!(q.select[1].field, None);
        assert_eq!(q.group_by, vec!["cardId".to_string()]);
        assert_eq!(
            q.window,
            WindowSpec::sliding(TimeDelta::from_minutes(5))
        );
        assert!(q.filter.is_none());
    }

    #[test]
    fn parses_q2_of_the_paper() {
        let q = parse_query(
            "SELECT avg(amount) FROM payments GROUP BY merchantId OVER sliding 5 minutes",
        )
        .unwrap();
        assert_eq!(q.select[0].func, AggFunc::Avg);
        assert_eq!(q.group_by, vec!["merchantId".to_string()]);
    }

    #[test]
    fn parses_filters() {
        let q = parse_query(
            "SELECT count(*) FROM payments WHERE amount > 100 AND country = 'PT' \
             OR not (retries <= 2) GROUP BY cardId OVER sliding 1 hours",
        )
        .unwrap();
        let f = q.filter.expect("filter parsed");
        // Shape: Or(And(>, =), Not(<=))
        match f {
            PExpr::Or(a, b) => {
                assert!(matches!(*a, PExpr::And(_, _)));
                assert!(matches!(*b, PExpr::Not(_)));
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn parses_window_variants() {
        let q = parse_query("SELECT count(*) FROM s GROUP BY k OVER tumbling 1 day").unwrap();
        assert_eq!(q.window.kind, WindowKind::Tumbling(TimeDelta::from_days(1)));
        let q = parse_query("SELECT count(*) FROM s GROUP BY k OVER infinite").unwrap();
        assert_eq!(q.window.kind, WindowKind::Infinite);
        let q = parse_query(
            "SELECT count(*) FROM s GROUP BY k OVER sliding 30 seconds delayed by 2 minutes",
        )
        .unwrap();
        assert_eq!(q.window.delay, TimeDelta::from_minutes(2));
    }

    #[test]
    fn parses_all_aggregations() {
        let q = parse_query(
            "SELECT count(x), sum(x), avg(x), stdDev(x), max(x), min(x), last(x), \
             prev(x), countDistinct(x) FROM s GROUP BY k OVER infinite",
        )
        .unwrap();
        let funcs: Vec<_> = q.select.iter().map(|a| a.func).collect();
        assert_eq!(
            funcs,
            vec![
                AggFunc::Count,
                AggFunc::Sum,
                AggFunc::Avg,
                AggFunc::StdDev,
                AggFunc::Max,
                AggFunc::Min,
                AggFunc::Last,
                AggFunc::Prev,
                AggFunc::CountDistinct,
            ]
        );
    }

    #[test]
    fn parses_approx_family() {
        let q = parse_query(
            "SELECT countDistinct(addr) approx 0.02, topK(merchant, 10), \
             percentile(amount, 99.9) FROM s GROUP BY k OVER sliding 5 min",
        )
        .unwrap();
        let funcs: Vec<_> = q.select.iter().map(|a| a.func).collect();
        assert_eq!(
            funcs,
            vec![
                AggFunc::ApproxCountDistinct { err_bp: 200 },
                AggFunc::TopK { k: 10 },
                AggFunc::Percentile { rank_bp: 9990 },
            ]
        );
        // Integer percentile rank.
        let q = parse_query("SELECT percentile(x, 50) FROM s OVER infinite").unwrap();
        assert_eq!(q.select[0].func, AggFunc::Percentile { rank_bp: 5000 });
        // Without `approx`, countDistinct stays exact.
        let q = parse_query("SELECT countDistinct(x) FROM s OVER infinite").unwrap();
        assert_eq!(q.select[0].func, AggFunc::CountDistinct);
    }

    #[test]
    fn rejects_malformed_approx_forms() {
        for bad in [
            // approx on the wrong function / missing or bad error values
            "SELECT sum(x) approx 0.02 FROM s OVER infinite",
            "SELECT topK(x, 5) approx 0.02 FROM s OVER infinite",
            "SELECT countDistinct(x) approx FROM s OVER infinite",
            "SELECT countDistinct(x) approx 0 FROM s OVER infinite",
            "SELECT countDistinct(x) approx 0.6 FROM s OVER infinite",
            "SELECT countDistinct(x) approx 2.0 FROM s OVER infinite",
            // topK parameter errors
            "SELECT topK(x) FROM s OVER infinite",
            "SELECT topK(x, 0) FROM s OVER infinite",
            "SELECT topK(x, -3) FROM s OVER infinite",
            "SELECT topK(*, 5) FROM s OVER infinite",
            // percentile parameter errors
            "SELECT percentile(x) FROM s OVER infinite",
            "SELECT percentile(x, 0) FROM s OVER infinite",
            "SELECT percentile(x, 100) FROM s OVER infinite",
            "SELECT percentile(x, 100.5) FROM s OVER infinite",
        ] {
            assert!(parse_query(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn group_by_multiple_fields() {
        let q = parse_query(
            "SELECT count(*) FROM s GROUP BY cardId, merchantId OVER sliding 5 min",
        )
        .unwrap();
        assert_eq!(q.group_by, vec!["cardId".to_string(), "merchantId".into()]);
    }

    #[test]
    fn no_group_by_is_allowed() {
        let q = parse_query("SELECT count(*) FROM s OVER sliding 1 min").unwrap();
        assert!(q.group_by.is_empty());
    }

    #[test]
    fn rejects_malformed_queries() {
        for bad in [
            "SELECT FROM s OVER infinite",
            "SELECT sum(*) FROM s OVER infinite",
            "SELECT nope(x) FROM s OVER infinite",
            "SELECT count(*) FROM s",
            "SELECT count(*) FROM s OVER sliding",
            "SELECT count(*) FROM s OVER sliding 5 fortnights",
            "SELECT count(*) FROM s OVER sliding 0 minutes",
            "SELECT count(*) FROM s OVER sliding 5 minutes EXTRA",
            "count(*) FROM s OVER infinite",
        ] {
            assert!(parse_query(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn is_null_and_literals() {
        let q = parse_query(
            "SELECT count(*) FROM s WHERE email IS NULL OR flag = true AND score >= -0.5 \
             GROUP BY k OVER infinite",
        )
        .unwrap();
        assert!(q.filter.is_some());
        let q2 = parse_query(
            "SELECT count(*) FROM s WHERE email IS NOT NULL GROUP BY k OVER infinite",
        )
        .unwrap();
        assert!(matches!(q2.filter, Some(PExpr::IsNotNull(_))));
    }

    #[test]
    fn duration_units() {
        for (text, expect) in [
            ("500 ms", TimeDelta::from_millis(500)),
            ("30 s", TimeDelta::from_secs(30)),
            ("15 secs", TimeDelta::from_secs(15)),
            ("5 min", TimeDelta::from_minutes(5)),
            ("2 hours", TimeDelta::from_hours(2)),
            ("7 days", TimeDelta::from_days(7)),
        ] {
            let q =
                parse_query(&format!("SELECT count(*) FROM s OVER sliding {text}")).unwrap();
            assert_eq!(q.window.kind, WindowKind::Sliding(expect), "{text}");
        }
    }
}
