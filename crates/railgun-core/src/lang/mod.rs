//! Railgun's SQL-like query language (paper §3.4, Figure 4).
//!
//! Each statement selects one or more aggregations over a single stream,
//! with an optional filter, optional group-by, and a mandatory window
//! expression. Stream joins are intentionally unsupported — the paper
//! performs joins in an enrichment stage before the streaming engine.

pub mod ast;
pub mod builder;
pub mod lexer;
pub mod parser;

pub use ast::{AggFunc, AggSpec, PExpr, Query, WindowKind, WindowSpec};
pub use builder::{days, field, hours, lit, millis, mins, secs, Agg, QueryBuilder, Window};
pub use parser::parse_query;
