//! Task plans: the shared-prefix DAG of §4.1.2 (Figure 6).
//!
//! A task plan computes every metric of a task in the fixed operator order
//! `Window -> Filter -> GroupBy -> Aggregator`. Metrics that share a
//! window, filter, or group-by reuse the same DAG node, so shared work —
//! especially window advancement — happens once. This deliberate
//! restriction of expressibility (vs. Flink's free-form API) is what makes
//! the sharing optimization possible (§4.1.2).

use railgun_types::{RailgunError, Result, Schema};

use crate::api::QueryId;
use crate::expr::Expr;
use crate::lang::{AggFunc, Query, WindowSpec};

/// Index of a window node in [`Plan::windows`].
pub type WindowId = usize;
/// Index of a filter node in [`Plan::filters`].
pub type FilterId = usize;
/// Index of a group-by node in [`Plan::groups`].
pub type GroupId = usize;
/// Index of an aggregator leaf in [`Plan::leaves`] — also the state-key
/// leaf id.
pub type LeafId = usize;

/// Root of the DAG: one per distinct window spec.
#[derive(Debug)]
pub struct WindowNode {
    pub spec: WindowSpec,
    pub filters: Vec<FilterId>,
}

/// Filter stage (`None` = pass-through for queries without WHERE).
#[derive(Debug)]
pub struct FilterNode {
    pub window: WindowId,
    pub expr: Option<Expr>,
    canon: String,
    pub groups: Vec<GroupId>,
}

/// Group-by stage: extracts the entity key from an event.
#[derive(Debug)]
pub struct GroupNode {
    pub filter: FilterId,
    pub field_names: Vec<String>,
    pub field_indexes: Vec<usize>,
    pub leaves: Vec<LeafId>,
}

/// One registered metric riding on a leaf: which query it belongs to,
/// its position in that query's SELECT list, and its display name.
/// Identical aggregations from different queries share one leaf and show
/// up as multiple refs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricRef {
    pub query: QueryId,
    pub index: u32,
    pub name: String,
}

/// Aggregator leaf. `refs` lists every registered metric sharing this
/// leaf (identical aggregations are computed once); a leaf with no refs
/// is **dead** — detached from the DAG walk, its state torn down, kept in
/// the vec only so leaf ids (state-key prefixes) stay stable.
#[derive(Debug)]
pub struct LeafNode {
    pub group: GroupId,
    pub filter: FilterId,
    pub window: WindowId,
    pub func: AggFunc,
    pub field_name: Option<String>,
    pub field_index: Option<usize>,
    pub refs: Vec<MetricRef>,
}

impl LeafNode {
    /// True while at least one registered metric uses this leaf.
    pub fn is_live(&self) -> bool {
        !self.refs.is_empty()
    }

    /// Display names of the metrics sharing this leaf.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.refs.iter().map(|r| r.name.as_str())
    }
}

/// A registered metric: which leaf computes it, and its reply key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricHandle {
    pub leaf: LeafId,
    pub query: QueryId,
    pub index: u32,
    pub name: String,
}

/// The shared-prefix execution DAG for one task.
#[derive(Debug, Default)]
pub struct Plan {
    pub windows: Vec<WindowNode>,
    pub filters: Vec<FilterNode>,
    pub groups: Vec<GroupNode>,
    pub leaves: Vec<LeafNode>,
}

impl Plan {
    /// Empty plan.
    pub fn new() -> Self {
        Plan::default()
    }

    /// Merge a query into the plan under its registered id, sharing
    /// prefix nodes, and return a handle per SELECT item (in order).
    ///
    /// `schema` resolves field names; the same schema must be used for all
    /// queries of a task (one stream per task). Re-adding an id already in
    /// the plan is idempotent (op-log replays deliver registrations more
    /// than once).
    pub fn add_query(
        &mut self,
        id: QueryId,
        query: &Query,
        schema: &Schema,
    ) -> Result<Vec<MetricHandle>> {
        // Resolve pieces first so failures leave the plan untouched.
        let filter_expr = query
            .filter
            .as_ref()
            .map(|f| f.resolve(schema))
            .transpose()?;
        let mut group_indexes = Vec::with_capacity(query.group_by.len());
        for f in &query.group_by {
            group_indexes.push(schema.require(f)?);
        }
        let mut leaf_fields = Vec::with_capacity(query.select.len());
        for agg in &query.select {
            let idx = match &agg.field {
                Some(f) => Some(schema.require(f)?),
                None => None,
            };
            if agg.func != AggFunc::Count && agg.field.is_none() {
                return Err(RailgunError::InvalidArgument(format!(
                    "{} requires a field",
                    agg.func.name()
                )));
            }
            agg.func.check_params()?;
            leaf_fields.push(idx);
        }

        let wid = self.window_node(query.window);
        let fid = self.filter_node(wid, filter_expr);
        let gid = self.group_node(fid, &query.group_by, &group_indexes);
        let mut handles = Vec::with_capacity(query.select.len());
        for (index, (agg, idx)) in query.select.iter().zip(leaf_fields).enumerate() {
            let name = query.metric_name(index).expect("index is in range");
            let metric = MetricRef {
                query: id,
                index: index as u32,
                name: name.clone(),
            };
            let leaf = self.leaf_node(gid, agg.func, agg.field.clone(), idx, metric);
            handles.push(MetricHandle {
                leaf,
                query: id,
                index: index as u32,
                name,
            });
        }
        Ok(handles)
    }

    /// Detach every metric of `id` from the plan and report what died.
    ///
    /// Leaves that lose their last ref are detached from their group's
    /// walk list (their ids — and therefore everyone else's state keys —
    /// stay stable) and reported so the task can delete their aggregator
    /// state. Groups, filters and windows whose subtrees empty out are
    /// pruned the same way; windows that end up with no filters are
    /// reported so their reservoir cursors can be dropped.
    pub fn remove_query(&mut self, id: QueryId) -> PlanDiff {
        let mut diff = PlanDiff::default();
        for (leaf_id, leaf) in self.leaves.iter_mut().enumerate() {
            let before = leaf.refs.len();
            leaf.refs.retain(|r| r.query != id);
            diff.removed_refs += before - leaf.refs.len();
            if before > 0 && leaf.refs.is_empty() {
                diff.dead_leaves.push(leaf_id);
            }
        }
        if diff.removed_refs == 0 {
            return diff;
        }
        // Prune empty subtrees bottom-up, keeping every node id stable.
        for group in &mut self.groups {
            group
                .leaves
                .retain(|&l| !self.leaves[l].refs.is_empty());
        }
        for filter in &mut self.filters {
            filter
                .groups
                .retain(|&g| !self.groups[g].leaves.is_empty());
        }
        for (wid, window) in self.windows.iter_mut().enumerate() {
            let before = window.filters.len();
            window
                .filters
                .retain(|&f| !self.filters[f].groups.is_empty());
            if before > 0 && window.filters.is_empty() {
                diff.dead_windows.push(wid);
            }
        }
        diff
    }

    /// The distinct query ids currently registered in the plan.
    pub fn query_ids(&self) -> Vec<QueryId> {
        let mut ids: Vec<QueryId> = self
            .leaves
            .iter()
            .flat_map(|l| l.refs.iter().map(|r| r.query))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    fn window_node(&mut self, spec: WindowSpec) -> WindowId {
        // Dead windows (no filters after pruning) are never revived: a
        // revived window would need fresh backfill cursors, so re-use of
        // the spec gets a fresh node instead.
        if let Some(i) = self
            .windows
            .iter()
            .position(|w| w.spec == spec && !w.filters.is_empty())
        {
            return i;
        }
        self.windows.push(WindowNode {
            spec,
            filters: Vec::new(),
        });
        self.windows.len() - 1
    }

    fn filter_node(&mut self, window: WindowId, expr: Option<Expr>) -> FilterId {
        let canon = expr
            .as_ref()
            .map(Expr::canonical)
            .unwrap_or_else(|| "true".to_owned());
        if let Some(&i) = self.windows[window]
            .filters
            .iter()
            .find(|&&i| self.filters[i].canon == canon)
        {
            return i;
        }
        self.filters.push(FilterNode {
            window,
            expr,
            canon,
            groups: Vec::new(),
        });
        let id = self.filters.len() - 1;
        self.windows[window].filters.push(id);
        id
    }

    fn group_node(&mut self, filter: FilterId, names: &[String], indexes: &[usize]) -> GroupId {
        if let Some(&i) = self.filters[filter]
            .groups
            .iter()
            .find(|&&i| self.groups[i].field_indexes == indexes)
        {
            return i;
        }
        self.groups.push(GroupNode {
            filter,
            field_names: names.to_vec(),
            field_indexes: indexes.to_vec(),
            leaves: Vec::new(),
        });
        let id = self.groups.len() - 1;
        self.filters[filter].groups.push(id);
        id
    }

    fn leaf_node(
        &mut self,
        group: GroupId,
        func: AggFunc,
        field_name: Option<String>,
        field_index: Option<usize>,
        metric: MetricRef,
    ) -> LeafId {
        if let Some(&i) = self.groups[group].leaves.iter().find(|&&i| {
            self.leaves[i].func == func && self.leaves[i].field_index == field_index
        }) {
            if !self.leaves[i]
                .refs
                .iter()
                .any(|r| r.query == metric.query && r.index == metric.index)
            {
                self.leaves[i].refs.push(metric);
            }
            return i;
        }
        let filter = self.groups[group].filter;
        let window = self.filters[filter].window;
        self.leaves.push(LeafNode {
            group,
            filter,
            window,
            func,
            field_name,
            field_index,
            refs: vec![metric],
        });
        let id = self.leaves.len() - 1;
        self.groups[group].leaves.push(id);
        id
    }

    /// Number of **live** state-store keys touched per event — the
    /// paper's "amount of keys accessed per event match the number of
    /// DAG's leaves". Dead (unregistered) leaves don't count.
    pub fn leaf_count(&self) -> usize {
        self.leaves.iter().filter(|l| l.is_live()).count()
    }

    /// True iff any **live** window never expires events (disables
    /// reservoir truncation).
    pub fn has_infinite_window(&self) -> bool {
        self.windows.iter().any(|w| {
            !w.filters.is_empty()
                && matches!(w.spec.kind, crate::lang::WindowKind::Infinite)
        })
    }
}

/// What [`Plan::remove_query`] tore out of the plan.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PlanDiff {
    /// Metric refs removed (0 ⇒ the query was not in this plan).
    pub removed_refs: usize,
    /// Leaves that lost their last ref — their aggregator state can be
    /// deleted.
    pub dead_leaves: Vec<LeafId>,
    /// Windows that lost their last filter — their reservoir cursors can
    /// be dropped.
    pub dead_windows: Vec<WindowId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse_query;
    use railgun_types::{FieldType, TimeDelta};

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("cardId", FieldType::Str),
            ("merchantId", FieldType::Str),
            ("amount", FieldType::Float),
        ])
        .unwrap()
    }

    fn qid(n: u64) -> QueryId {
        QueryId(n)
    }

    #[test]
    fn figure_6_dag_shape() {
        // Q1 + Q2 of Example 1: one shared window, two group-bys, three
        // aggregator leaves (Figure 6).
        let mut plan = Plan::new();
        let q1 = parse_query(
            "SELECT sum(amount), count(*) FROM payments GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        let q2 = parse_query(
            "SELECT avg(amount) FROM payments GROUP BY merchantId OVER sliding 5 min",
        )
        .unwrap();
        plan.add_query(qid(1), &q1, &schema()).unwrap();
        plan.add_query(qid(2), &q2, &schema()).unwrap();
        assert_eq!(plan.windows.len(), 1, "shared window node");
        assert_eq!(plan.filters.len(), 1, "shared pass-through filter");
        assert_eq!(plan.groups.len(), 2, "card + merchant group-bys");
        assert_eq!(plan.leaves.len(), 3, "sum, count, avg");
        assert_eq!(plan.leaf_count(), 3);
        assert_eq!(plan.query_ids(), vec![qid(1), qid(2)]);
    }

    #[test]
    fn different_windows_do_not_share() {
        let mut plan = Plan::new();
        let q1 =
            parse_query("SELECT count(*) FROM s GROUP BY cardId OVER sliding 5 min").unwrap();
        let q2 =
            parse_query("SELECT count(*) FROM s GROUP BY cardId OVER sliding 10 min").unwrap();
        plan.add_query(qid(1), &q1, &schema()).unwrap();
        plan.add_query(qid(2), &q2, &schema()).unwrap();
        assert_eq!(plan.windows.len(), 2);
        assert_eq!(plan.leaves.len(), 2);
    }

    #[test]
    fn identical_metric_shares_leaf_with_two_refs() {
        let mut plan = Plan::new();
        let q = parse_query(
            "SELECT sum(amount) FROM s GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        let h1 = plan.add_query(qid(1), &q, &schema()).unwrap();
        let h2 = plan.add_query(qid(2), &q, &schema()).unwrap();
        assert_eq!(h1[0].leaf, h2[0].leaf);
        assert_eq!(plan.leaves.len(), 1);
        assert_eq!(plan.leaves[0].refs.len(), 2, "one ref per registration");
        // Replaying the same registration id is idempotent.
        plan.add_query(qid(1), &q, &schema()).unwrap();
        assert_eq!(plan.leaves[0].refs.len(), 2);
    }

    #[test]
    fn filters_split_the_dag() {
        let mut plan = Plan::new();
        let q1 = parse_query(
            "SELECT count(*) FROM s WHERE amount > 100 GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        let q2 = parse_query(
            "SELECT count(*) FROM s WHERE amount > 200 GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        let q3 = parse_query(
            "SELECT sum(amount) FROM s WHERE amount > 100 GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        plan.add_query(qid(1), &q1, &schema()).unwrap();
        plan.add_query(qid(2), &q2, &schema()).unwrap();
        plan.add_query(qid(3), &q3, &schema()).unwrap();
        assert_eq!(plan.windows.len(), 1);
        assert_eq!(plan.filters.len(), 2, "two distinct predicates");
        assert_eq!(plan.groups.len(), 2, "one group node per filter branch");
        assert_eq!(plan.leaves.len(), 3);
    }

    #[test]
    fn bad_fields_leave_plan_untouched() {
        let mut plan = Plan::new();
        let q = parse_query(
            "SELECT sum(nope) FROM s GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        assert!(plan.add_query(qid(1), &q, &schema()).is_err());
        assert_eq!(plan.windows.len(), 0);
        assert_eq!(plan.leaves.len(), 0);
        let q2 = parse_query(
            "SELECT sum(amount) FROM s GROUP BY nope OVER sliding 5 min",
        )
        .unwrap();
        assert!(plan.add_query(qid(2), &q2, &schema()).is_err());
        assert_eq!(plan.groups.len(), 0);
    }

    #[test]
    fn non_count_requires_field() {
        let mut plan = Plan::new();
        // Constructed directly since the parser already rejects `sum(*)`.
        let q = Query {
            select: vec![crate::lang::AggSpec {
                func: AggFunc::Sum,
                field: None,
            }],
            stream: "s".into(),
            filter: None,
            group_by: vec!["cardId".into()],
            window: WindowSpec::sliding(TimeDelta::from_minutes(1)),
        };
        assert!(plan.add_query(qid(1), &q, &schema()).is_err());
    }

    #[test]
    fn infinite_window_detection() {
        let mut plan = Plan::new();
        let q = parse_query("SELECT countDistinct(merchantId) FROM s GROUP BY cardId OVER infinite")
            .unwrap();
        plan.add_query(qid(1), &q, &schema()).unwrap();
        assert!(plan.has_infinite_window());
        // ...and it stops counting once the query is unregistered.
        plan.remove_query(qid(1));
        assert!(!plan.has_infinite_window());
    }

    #[test]
    fn remove_query_reports_dead_leaves_and_windows() {
        let mut plan = Plan::new();
        let q1 = parse_query(
            "SELECT sum(amount), count(*) FROM s GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        let q2 = parse_query(
            "SELECT count(*) FROM s GROUP BY cardId OVER sliding 10 min",
        )
        .unwrap();
        plan.add_query(qid(1), &q1, &schema()).unwrap();
        plan.add_query(qid(2), &q2, &schema()).unwrap();
        assert_eq!(plan.leaf_count(), 3);

        let diff = plan.remove_query(qid(1));
        assert_eq!(diff.removed_refs, 2);
        assert_eq!(diff.dead_leaves, vec![0, 1], "sum + count of q1");
        assert_eq!(diff.dead_windows, vec![0], "the 5-min window died");
        assert_eq!(plan.leaf_count(), 1, "q2's count survives");
        assert_eq!(plan.query_ids(), vec![qid(2)]);

        // Removing an unknown/already-removed id is a no-op.
        let diff = plan.remove_query(qid(1));
        assert_eq!(diff, PlanDiff::default());
    }

    #[test]
    fn shared_leaf_survives_partial_removal() {
        let mut plan = Plan::new();
        let q = parse_query(
            "SELECT sum(amount) FROM s GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        plan.add_query(qid(1), &q, &schema()).unwrap();
        plan.add_query(qid(2), &q, &schema()).unwrap();
        let diff = plan.remove_query(qid(1));
        assert_eq!(diff.removed_refs, 1);
        assert!(diff.dead_leaves.is_empty(), "q2 still uses the leaf");
        assert!(diff.dead_windows.is_empty());
        assert_eq!(plan.leaf_count(), 1);
    }

    #[test]
    fn dead_window_is_not_revived_by_reregistration() {
        let mut plan = Plan::new();
        let q = parse_query(
            "SELECT count(*) FROM s GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        plan.add_query(qid(1), &q, &schema()).unwrap();
        plan.remove_query(qid(1));
        // Same window spec again: a *fresh* window node (the old one's
        // runtime cursors are gone; a revival would skip backfill).
        plan.add_query(qid(2), &q, &schema()).unwrap();
        assert_eq!(plan.windows.len(), 2);
        assert!(plan.windows[0].filters.is_empty(), "old node stays dead");
        assert_eq!(plan.windows[1].filters.len(), 1);
        assert_eq!(plan.leaf_count(), 1);
    }
}
