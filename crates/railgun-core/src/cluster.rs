//! In-process cluster harness.
//!
//! Assembles a whole Railgun deployment — message bus, nodes, processor
//! units, the shared sticky assignment strategy — behind a synchronous
//! facade used by the examples, the integration tests, and the benchmark
//! drivers. `send` pumps the cluster until the reply for the event has
//! been collected, mirroring the six steps of Figure 3 deterministically.

use std::path::PathBuf;
use std::sync::Arc;

use railgun_messaging::{BusConfig, MessageBus};
use railgun_types::{RailgunError, Result, Schema, Timestamp, Value};

use crate::frontend::ClientResponse;
use crate::node::Node;
use crate::rebalance::RailgunStrategy;
use crate::task::TaskConfig;

/// Cluster-wide configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    pub nodes: u32,
    pub units_per_node: u32,
    /// Partitions per event topic (the cluster's concurrency level, §4).
    pub partitions: u32,
    /// Total task copies (1 = no replicas; the paper deploys 3).
    pub replication: usize,
    /// Root directory for all task data (default: a temp dir).
    pub data_root: PathBuf,
    pub task: TaskConfig,
    /// Messaging session timeout (failure detection).
    pub session_timeout_ms: u64,
    /// Max pump iterations while waiting for a reply.
    pub max_pump_iterations: usize,
    /// Per-task checkpoint cadence in events (0 disables; §4.1.3).
    pub checkpoint_every: u64,
}

impl ClusterConfig {
    /// One node, one unit, one partition — the doc-example setup.
    pub fn single_node() -> Self {
        ClusterConfig {
            nodes: 1,
            units_per_node: 1,
            partitions: 1,
            replication: 1,
            ..ClusterConfig::default()
        }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 1,
            units_per_node: 2,
            partitions: 4,
            replication: 1,
            data_root: std::env::temp_dir().join(format!(
                "railgun-cluster-{}-{:?}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos())
                    .unwrap_or(0)
            )),
            task: TaskConfig::default(),
            session_timeout_ms: 10_000,
            max_pump_iterations: 64,
            checkpoint_every: 0,
        }
    }
}

/// Result of a synchronous send.
#[derive(Debug, Clone, PartialEq)]
pub struct SendOutcome {
    pub request_id: u64,
    pub aggregations: Vec<crate::api::AggregationResult>,
    pub duplicate: bool,
}

/// An in-process Railgun cluster.
pub struct Cluster {
    bus: MessageBus,
    nodes: Vec<Node>,
    strategy: Arc<RailgunStrategy>,
    config: ClusterConfig,
    next_node_id: u32,
    rr_node: usize,
}

impl Cluster {
    /// Boot a cluster per `config`.
    pub fn new(config: ClusterConfig) -> Result<Self> {
        let bus = MessageBus::new(BusConfig {
            session_timeout_ms: config.session_timeout_ms,
        });
        let strategy = Arc::new(RailgunStrategy::new(config.replication));
        let mut nodes = Vec::with_capacity(config.nodes as usize);
        for id in 0..config.nodes {
            nodes.push(Node::new(
                &bus,
                id,
                config.units_per_node,
                &config.data_root,
                config.task.clone(),
                Arc::clone(&strategy),
                config.checkpoint_every,
            )?);
        }
        Ok(Cluster {
            bus,
            nodes,
            strategy,
            next_node_id: config.nodes,
            config,
            rr_node: 0,
        })
    }

    /// The shared message bus (benches/diagnostics).
    pub fn bus(&self) -> &MessageBus {
        &self.bus
    }

    /// The shared assignment strategy (diagnostics).
    pub fn strategy(&self) -> &Arc<RailgunStrategy> {
        &self.strategy
    }

    /// Register a stream and wait for every unit to learn about it.
    pub fn create_stream(
        &mut self,
        stream: &str,
        schema: Schema,
        partitioners: &[&str],
    ) -> Result<()> {
        let partitions = self.config.partitions;
        let replication = self.config.replication as u32;
        self.nodes[0].create_stream(stream, schema, partitioners, partitions, replication)?;
        self.settle()
    }

    /// Register a query and propagate it to every unit.
    pub fn register_query(&mut self, query_text: &str) -> Result<()> {
        self.nodes[0].register_query(query_text)?;
        self.settle()
    }

    /// Remove a stream: broadcasts the deletion (units drop its task
    /// processors) and deletes its event topics.
    pub fn delete_stream(&mut self, stream: &str) -> Result<()> {
        self.nodes[0].delete_stream(stream)?;
        self.settle()
    }

    /// Pump every node a few times so ops/rebalances propagate.
    pub fn settle(&mut self) -> Result<()> {
        for _ in 0..4 {
            for node in &mut self.nodes {
                node.pump()?;
            }
        }
        Ok(())
    }

    /// Send one event through a front-end (round-robin across nodes) and
    /// pump until its aggregations arrive.
    pub fn send(
        &mut self,
        stream: &str,
        ts: Timestamp,
        values: Vec<Value>,
    ) -> Result<SendOutcome> {
        let node_idx = self.rr_node % self.nodes.len();
        self.rr_node += 1;
        self.send_via(node_idx, stream, ts, values)
    }

    /// Send through a specific node's front-end.
    pub fn send_via(
        &mut self,
        node_idx: usize,
        stream: &str,
        ts: Timestamp,
        values: Vec<Value>,
    ) -> Result<SendOutcome> {
        let request_id = self.nodes[node_idx].send_event(stream, ts, values)?;
        for _ in 0..self.config.max_pump_iterations {
            let mut found = None;
            for (i, node) in self.nodes.iter_mut().enumerate() {
                let (responses, _) = node.pump()?;
                for r in responses {
                    if i == node_idx && r.request_id == request_id {
                        found = Some(r);
                    }
                }
            }
            if let Some(r) = found {
                return Ok(SendOutcome {
                    request_id: r.request_id,
                    aggregations: r.aggregations,
                    duplicate: r.duplicate,
                });
            }
        }
        Err(RailgunError::Engine(format!(
            "no reply for request {request_id} after {} pump iterations",
            self.config.max_pump_iterations
        )))
    }

    /// Pump all nodes once, returning collected client responses.
    pub fn pump(&mut self) -> Result<Vec<ClientResponse>> {
        let mut out = Vec::new();
        for node in &mut self.nodes {
            let (responses, _) = node.pump()?;
            out.extend(responses);
        }
        Ok(out)
    }

    /// Advance the logical clock (heartbeat/failure detection).
    pub fn advance_time(&self, now_ms: u64) {
        self.bus.advance_to(now_ms);
    }

    /// Gracefully decommission a node (leaves consumer groups, triggers a
    /// rebalance).
    pub fn decommission_node(&mut self, idx: usize) -> Result<()> {
        if idx >= self.nodes.len() {
            return Err(RailgunError::InvalidArgument(format!("no node {idx}")));
        }
        let mut node = self.nodes.remove(idx);
        node.shutdown();
        self.settle()
    }

    /// Kill a node abruptly (no goodbye): its consumers simply stop
    /// heartbeating; the bus expels them after the session timeout.
    pub fn kill_node(&mut self, idx: usize) -> Result<()> {
        if idx >= self.nodes.len() {
            return Err(RailgunError::InvalidArgument(format!("no node {idx}")));
        }
        drop(self.nodes.remove(idx));
        Ok(())
    }

    /// Add a fresh node to the running cluster (elasticity).
    pub fn add_node(&mut self) -> Result<u32> {
        let id = self.next_node_id;
        self.next_node_id += 1;
        let node = Node::new(
            &self.bus,
            id,
            self.config.units_per_node,
            &self.config.data_root,
            self.config.task.clone(),
            Arc::clone(&self.strategy),
            self.config.checkpoint_every,
        )?;
        self.nodes.push(node);
        self.settle()?;
        Ok(id)
    }

    /// Live nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Mutable node access (benches probing task state).
    pub fn nodes_mut(&mut self) -> &mut [Node] {
        &mut self.nodes
    }
}
