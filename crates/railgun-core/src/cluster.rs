//! In-process cluster harness.
//!
//! Assembles a whole Railgun deployment — message bus, nodes, processor
//! units, the shared sticky assignment strategy — behind a facade used by
//! the examples, the integration tests, and the benchmark drivers.
//!
//! Two execution modes (DESIGN.md § "Execution modes"):
//!
//! * **pump** (default) — `send` pumps the cluster inline until the reply
//!   for the event has been collected, mirroring the six steps of
//!   Figure 3 deterministically;
//! * **threaded** — [`Cluster::start`] spawns one worker thread per
//!   processor unit; clients then pipeline many requests with
//!   [`Cluster::send_async`] / [`Cluster::try_collect`] (or per-thread
//!   [`ClusterClient`]s) while the synchronous `send` keeps working as a
//!   thin wrapper.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use railgun_messaging::{BusClock, BusConfig, MessageBus};
use railgun_types::{RailgunError, Result, Schema, TimeDelta, Timestamp, Value};

use crate::api::{find_keyed, AggregationResult, QueryId};
use crate::elastic::{Autoscaler, AutoscalerConfig, ScaleDecision};
use crate::frontend::{BatchPolicy, ClientResponse, FrontEnd, RegisteredQuery};
use crate::lang::Query;
use crate::metrics::{EngineTelemetry, MetricsSnapshot};
use crate::node::Node;
use crate::rebalance::RailgunStrategy;
use crate::task::TaskConfig;

/// Cluster-wide configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    pub nodes: u32,
    pub units_per_node: u32,
    /// Partitions per event topic (the cluster's concurrency level, §4).
    pub partitions: u32,
    /// Total task copies (1 = no replicas; the paper deploys 3).
    pub replication: usize,
    /// Root directory for all task data (default: a temp dir).
    pub data_root: PathBuf,
    pub task: TaskConfig,
    /// Messaging session timeout (failure detection).
    pub session_timeout_ms: u64,
    /// Max pump iterations while waiting for a reply.
    pub max_pump_iterations: usize,
    /// Per-task checkpoint cadence in events (0 disables; §4.1.3).
    pub checkpoint_every: u64,
    /// Bus clock mode. [`BusClock::Manual`] (default) keeps tests and the
    /// simulation deterministic; the threaded runtime typically wants
    /// [`BusClock::Auto`] so heartbeats and session expiry follow wall
    /// time without an external driver.
    pub clock: BusClock,
    /// Per-front-end cap on in-flight requests (backpressure; see
    /// `FrontEnd`).
    pub max_in_flight: usize,
    /// Front-end ingest coalescing policy: pipelined sends are staged and
    /// published as one batch per topic, bounded by
    /// [`BatchPolicy::max_events`] / [`BatchPolicy::max_delay`].
    /// Closed-loop (one-in-flight) traffic flushes per event regardless,
    /// so it costs nothing there (see DESIGN.md § "Batched ingest").
    pub batch: BatchPolicy,
    /// Wall-clock deadline for blocking collects in threaded mode.
    pub collect_timeout_ms: u64,
    /// Enable the telemetry plane: stage latency histograms (front-end
    /// enqueue→reply, unit poll/process, reservoir append, store
    /// WAL/flush), per-query ladders, and the chunk-miss counter. Off by
    /// default — the off state records nothing and never reads the clock
    /// (see the `metrics` module's cost contract). Snapshot with
    /// [`Cluster::metrics_snapshot`].
    pub telemetry: bool,
    /// Autoscaler bounds and hysteresis (disabled by default). Drive the
    /// controller with [`Cluster::autoscale_tick`] at a fixed cadence —
    /// the cluster never spawns its own control thread.
    pub autoscaler: AutoscalerConfig,
}

impl ClusterConfig {
    /// One node, one unit, one partition — the doc-example setup.
    pub fn single_node() -> Self {
        ClusterConfig {
            nodes: 1,
            units_per_node: 1,
            partitions: 1,
            replication: 1,
            ..ClusterConfig::default()
        }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 1,
            units_per_node: 2,
            partitions: 4,
            replication: 1,
            data_root: std::env::temp_dir().join(format!(
                "railgun-cluster-{}-{:?}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos())
                    .unwrap_or(0)
            )),
            task: TaskConfig::default(),
            session_timeout_ms: 10_000,
            max_pump_iterations: 64,
            checkpoint_every: 0,
            clock: BusClock::Manual,
            max_in_flight: 1_024,
            batch: BatchPolicy::default(),
            collect_timeout_ms: 10_000,
            telemetry: false,
            autoscaler: AutoscalerConfig::default(),
        }
    }
}

/// Result of a synchronous send. Aggregations are keyed by
/// `(QueryId, index)` — address them with the typed accessors instead of
/// matching on display names.
#[derive(Debug, Clone, PartialEq)]
pub struct SendOutcome {
    pub request_id: u64,
    pub aggregations: Vec<AggregationResult>,
    pub duplicate: bool,
}

impl SendOutcome {
    /// The aggregation keyed `(query, index)`, if present.
    pub fn get(&self, query: QueryId, index: usize) -> Option<&AggregationResult> {
        find_keyed(&self.aggregations, query, index)
    }

    /// The value keyed `(query, index)` as an `f64` (ints widen).
    pub fn get_f64(&self, query: QueryId, index: usize) -> Option<f64> {
        self.get(query, index).and_then(|a| a.value.as_f64())
    }

    /// The value keyed `(query, index)` as an `i64`.
    pub fn get_i64(&self, query: QueryId, index: usize) -> Option<i64> {
        self.get(query, index).and_then(|a| a.value.as_i64())
    }

    /// The value keyed `(query, index)` as a string slice.
    pub fn get_str(&self, query: QueryId, index: usize) -> Option<&str> {
        self.get(query, index).and_then(|a| a.value.as_str())
    }

    /// The value keyed `(query, index)` as a bool.
    pub fn get_bool(&self, query: QueryId, index: usize) -> Option<bool> {
        self.get(query, index).and_then(|a| a.value.as_bool())
    }
}

/// Correlation handle for an asynchronous send: which node's front-end
/// owns the request (by stable node **id**, so tickets survive other
/// nodes being killed or decommissioned), and its id there. Request ids
/// are per-front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket {
    pub node: u32,
    pub request_id: u64,
}

/// Client ids start here so their reply topics and event-id namespaces
/// never collide with node front-ends (node ids are small and dense).
const CLIENT_ID_BASE: u32 = 1 << 20;

/// An in-process Railgun cluster.
pub struct Cluster {
    bus: MessageBus,
    nodes: Vec<Node>,
    strategy: Arc<RailgunStrategy>,
    config: ClusterConfig,
    telemetry: Arc<EngineTelemetry>,
    autoscaler: Autoscaler,
    /// Ids of nodes that have left (killed, drained, decommissioned):
    /// collects against their tickets fail promptly with
    /// [`RailgunError::NodeLost`] instead of timing out.
    departed: Vec<u32>,
    next_node_id: u32,
    next_client_id: u32,
    rr_node: usize,
}

impl Cluster {
    /// Boot a cluster per `config`.
    pub fn new(mut config: ClusterConfig) -> Result<Self> {
        let bus = MessageBus::new(BusConfig {
            session_timeout_ms: config.session_timeout_ms,
            clock: config.clock,
        });
        let telemetry = Arc::new(EngineTelemetry::new(config.telemetry));
        // Inject the hub's recorders into the task substrates' configs so
        // every task processor of every node records into the shared
        // stage histograms (all disabled no-ops when telemetry is off).
        config.task.stats_registry = telemetry.task_registry();
        config.task.reservoir.append_recorder = telemetry.reservoir_append_recorder();
        config.task.reservoir.chunk_miss_counter = telemetry.chunk_miss_counter();
        config.task.reservoir.batch_events_counter = telemetry.reservoir_batched_counter();
        config.task.store.wal_recorder = telemetry.store_wal_recorder();
        config.task.store.flush_recorder = telemetry.store_flush_recorder();
        config.task.store.wal_truncated_counter = telemetry.store_wal_truncated_counter();
        config.task.store.orphan_counter = telemetry.store_orphan_counter();
        config.task.checkpoint_fallbacks = telemetry.checkpoint_fallback_counter();
        let strategy = Arc::new(RailgunStrategy::new(config.replication));
        let mut nodes = Vec::with_capacity(config.nodes as usize);
        for id in 0..config.nodes {
            nodes.push(Node::new(
                &bus,
                id,
                config.units_per_node,
                &config.data_root,
                config.task.clone(),
                Arc::clone(&strategy),
                config.checkpoint_every,
                config.max_in_flight,
                config.batch,
                Arc::clone(&telemetry),
            )?);
        }
        Ok(Cluster {
            bus,
            nodes,
            strategy,
            telemetry,
            autoscaler: Autoscaler::new(config.autoscaler.clone()),
            departed: Vec::new(),
            next_node_id: config.nodes,
            next_client_id: CLIENT_ID_BASE,
            config,
            rr_node: 0,
        })
    }

    /// Snapshot the cluster's telemetry: per-stage latency histograms,
    /// per-query percentile ladders keyed by [`QueryId`], engine counters
    /// and aggregated task stats. Cheap; counters are monotonic between
    /// snapshots. Stage histograms are empty unless
    /// `ClusterConfig::telemetry` was set (task stats are always live).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.telemetry.snapshot()
    }

    /// Register (or replace) the latency budget of query `id`:
    /// completions slower than `budget` count as SLO breaches (per query
    /// and in [`crate::metrics::EngineCounters::slo_breaches`]), and the
    /// front-ends escalate [`RailgunError::Backpressure`] under overload
    /// per the documented policy (see the `metrics` module docs).
    pub fn set_query_slo(&mut self, id: QueryId, budget: TimeDelta) {
        self.telemetry.set_slo(id, budget);
    }

    /// The shared message bus (benches/diagnostics).
    pub fn bus(&self) -> &MessageBus {
        &self.bus
    }

    /// The shared assignment strategy (diagnostics).
    pub fn strategy(&self) -> &Arc<RailgunStrategy> {
        &self.strategy
    }

    /// Register a stream and wait for every unit to learn about it.
    pub fn create_stream(
        &mut self,
        stream: &str,
        schema: Schema,
        partitioners: &[&str],
    ) -> Result<()> {
        let partitions = self.config.partitions;
        let replication = self.config.replication as u32;
        self.nodes[0].create_stream(stream, schema, partitioners, partitions, replication)?;
        self.settle()
    }

    /// Register a textual query and propagate it to every unit. Returns
    /// the query's stable id — the key its aggregations carry in replies
    /// and the handle for [`Cluster::unregister_query`].
    pub fn register_query(&mut self, query_text: &str) -> Result<QueryId> {
        let id = self.nodes[0].register_query(query_text)?;
        self.settle()?;
        Ok(id)
    }

    /// Register a builder-constructed query (see
    /// [`crate::lang::QueryBuilder`]) and propagate it to every unit.
    pub fn register(&mut self, query: &Query) -> Result<QueryId> {
        let id = self.nodes[0].register_query_ast(query)?;
        self.settle()?;
        Ok(id)
    }

    /// Unregister a query everywhere: its aggregations disappear from
    /// replies and every task tears down its aggregator state and any
    /// window cursors nothing else shares.
    pub fn unregister_query(&mut self, id: QueryId) -> Result<()> {
        self.nodes[0].unregister_query(id)?;
        self.settle()
    }

    /// Live query registrations, in id order.
    pub fn queries(&self) -> Vec<RegisteredQuery> {
        self.nodes[0].queries()
    }

    /// Schema of a registered stream, if known.
    pub fn stream_schema(&self, stream: &str) -> Option<Schema> {
        self.nodes[0].stream_schema(stream)
    }

    /// Remove a stream: broadcasts the deletion (units drop its task
    /// processors) and deletes its event topics.
    pub fn delete_stream(&mut self, stream: &str) -> Result<()> {
        self.nodes[0].delete_stream(stream)?;
        self.settle()
    }

    /// Pump every node a few times so ops/rebalances propagate. In
    /// threaded mode the units apply ops asynchronously on their worker
    /// threads, so this only drives the front-ends (registrations are
    /// picked up within the workers' wakeup latency).
    pub fn settle(&mut self) -> Result<()> {
        for _ in 0..4 {
            for node in &mut self.nodes {
                node.pump()?;
            }
        }
        Ok(())
    }

    /// Start the threaded runtime: every processor unit of every node
    /// moves onto its own OS thread (§3.2). Idempotent. The deterministic
    /// pump path remains available after [`Cluster::stop`].
    pub fn start(&mut self) -> Result<()> {
        for node in &mut self.nodes {
            node.start()?;
        }
        Ok(())
    }

    /// Stop the threaded runtime (if running) and return to pump mode with
    /// all unit state intact. Idempotent; propagates worker panics/errors.
    pub fn stop(&mut self) -> Result<()> {
        let mut result = Ok(());
        for node in &mut self.nodes {
            if let Err(e) = node.stop() {
                result = Err(e);
            }
        }
        result
    }

    /// True while any node runs its units on worker threads.
    pub fn is_running(&self) -> bool {
        self.nodes.iter().any(Node::is_running)
    }

    /// Send one event through a front-end (round-robin across nodes) and
    /// wait for its aggregations — a thin synchronous wrapper around
    /// [`Cluster::send_async`] + [`Cluster::collect`].
    pub fn send(
        &mut self,
        stream: &str,
        ts: Timestamp,
        values: Vec<Value>,
    ) -> Result<SendOutcome> {
        let ticket = self.send_async(stream, ts, values)?;
        self.collect(ticket)
    }

    /// Send through a specific node's front-end and wait for the reply.
    pub fn send_via(
        &mut self,
        node_idx: usize,
        stream: &str,
        ts: Timestamp,
        values: Vec<Value>,
    ) -> Result<SendOutcome> {
        let ticket = self.send_async_via(node_idx, stream, ts, values)?;
        self.collect(ticket)
    }

    /// Fire-and-correlate: publish one event through a round-robin
    /// front-end and return a [`Ticket`] immediately. Many requests can be
    /// outstanding at once, bounded per front-end by
    /// `ClusterConfig::max_in_flight` ([`RailgunError::Backpressure`]
    /// when exceeded — collect and retry).
    pub fn send_async(
        &mut self,
        stream: &str,
        ts: Timestamp,
        values: Vec<Value>,
    ) -> Result<Ticket> {
        let node_idx = self.rr_node % self.nodes.len();
        self.rr_node += 1;
        self.send_async_via(node_idx, stream, ts, values)
    }

    /// [`Cluster::send_async`] through a specific node's front-end.
    pub fn send_async_via(
        &mut self,
        node_idx: usize,
        stream: &str,
        ts: Timestamp,
        values: Vec<Value>,
    ) -> Result<Ticket> {
        if node_idx >= self.nodes.len() {
            return Err(RailgunError::InvalidArgument(format!("no node {node_idx}")));
        }
        let request_id = self.nodes[node_idx].send_event(stream, ts, values)?;
        Ok(Ticket {
            node: self.nodes[node_idx].id,
            request_id,
        })
    }

    /// Resolve a ticket's owning node to its current index. A ticket
    /// whose front-end left the cluster (killed, drained, decommissioned)
    /// fails promptly with [`RailgunError::NodeLost`] — the reply will
    /// never come, so making the caller wait out the collect timeout
    /// would only serialize the loss; one that never existed is an
    /// [`RailgunError::InvalidArgument`].
    fn ticket_node(&self, ticket: Ticket) -> Result<usize> {
        self.nodes
            .iter()
            .position(|n| n.id == ticket.node)
            .ok_or_else(|| {
                if self.departed.contains(&ticket.node) {
                    RailgunError::NodeLost(format!(
                        "node {} left the cluster with request {} outstanding — \
                         resend through a surviving node",
                        ticket.node, ticket.request_id
                    ))
                } else {
                    RailgunError::InvalidArgument(format!(
                        "ticket for unknown node {}",
                        ticket.node
                    ))
                }
            })
    }

    /// Non-blocking collect: pump once and claim the response for `ticket`
    /// if it has arrived.
    pub fn try_collect(&mut self, ticket: Ticket) -> Result<Option<SendOutcome>> {
        let idx = self.ticket_node(ticket)?;
        if self.is_running() {
            // Workers drive the units; only the owning front-end needs a
            // pump (which also health-checks its node's workers).
            self.nodes[idx].pump()?;
        } else {
            for node in &mut self.nodes {
                node.pump()?;
            }
        }
        Ok(self.nodes[idx]
            .try_take_response(ticket.request_id)
            .map(outcome))
    }

    /// Abandon an outstanding request: frees its in-flight slot (and any
    /// already-completed response). Call after a collect timeout so
    /// repeated failures cannot wedge the front-end in permanent
    /// backpressure. Returns true if anything was dropped.
    pub fn cancel(&mut self, ticket: Ticket) -> bool {
        self.ticket_node(ticket)
            .map(|idx| self.nodes[idx].abandon_request(ticket.request_id))
            .unwrap_or(false)
    }

    /// Blocking collect. In pump mode this iterates the deterministic
    /// pump exactly as the original synchronous `send` did (bounded by
    /// `max_pump_iterations`); in threaded mode it parks on the bus wakeup
    /// path until the reply arrives or `collect_timeout_ms` elapses.
    pub fn collect(&mut self, ticket: Ticket) -> Result<SendOutcome> {
        if self.is_running() {
            let deadline =
                Instant::now() + Duration::from_millis(self.config.collect_timeout_ms);
            loop {
                let seen = self.bus.version();
                if let Some(out) = self.try_collect(ticket)? {
                    return Ok(out);
                }
                let now = Instant::now();
                if now >= deadline {
                    // Free the in-flight slot: a reply that never came
                    // must not count against the backpressure cap forever.
                    self.cancel(ticket);
                    return Err(RailgunError::Engine(format!(
                        "no reply for request {} on node {} within {} ms",
                        ticket.request_id, ticket.node, self.config.collect_timeout_ms
                    )));
                }
                self.bus
                    .wait_for_activity(seen, (deadline - now).min(Duration::from_millis(50)));
            }
        } else {
            for _ in 0..self.config.max_pump_iterations {
                if let Some(out) = self.try_collect(ticket)? {
                    return Ok(out);
                }
            }
            self.cancel(ticket);
            Err(RailgunError::Engine(format!(
                "no reply for request {} after {} pump iterations",
                ticket.request_id, self.config.max_pump_iterations
            )))
        }
    }

    /// Create an independent client handle with its own front-end and
    /// reply topic. Clients are cheap, own their request-id space, and are
    /// `Send` — spawn one per client thread against a started cluster to
    /// drive many in-flight requests concurrently.
    pub fn client(&mut self) -> Result<ClusterClient> {
        let id = self.next_client_id;
        self.next_client_id += 1;
        let mut frontend = FrontEnd::new(
            &self.bus,
            id,
            self.config.max_in_flight,
            self.config.batch,
            Arc::clone(&self.telemetry),
        )?;
        // Learn every stream registered before this client existed.
        frontend.sync_ops()?;
        Ok(ClusterClient {
            frontend,
            bus: self.bus.clone(),
            collect_timeout: Duration::from_millis(self.config.collect_timeout_ms),
        })
    }

    /// Pump all nodes once, returning every completed-but-unclaimed client
    /// response (legacy harness consumption; async callers use
    /// [`Cluster::try_collect`] instead).
    pub fn pump(&mut self) -> Result<Vec<ClientResponse>> {
        let mut out = Vec::new();
        for node in &mut self.nodes {
            node.pump()?;
            out.extend(node.take_responses());
        }
        Ok(out)
    }

    /// Advance the logical clock (heartbeat/failure detection).
    pub fn advance_time(&self, now_ms: u64) {
        self.bus.advance_to(now_ms);
    }

    /// Gracefully decommission a node (leaves consumer groups, triggers a
    /// rebalance).
    pub fn decommission_node(&mut self, idx: usize) -> Result<()> {
        if idx >= self.nodes.len() {
            return Err(RailgunError::InvalidArgument(format!("no node {idx}")));
        }
        let mut node = self.nodes.remove(idx);
        self.departed.push(node.id);
        node.shutdown();
        self.settle()
    }

    /// Kill a node abruptly (no goodbye): its consumers simply stop
    /// heartbeating; the bus expels them after the session timeout. Worker
    /// threads (if the node was threaded) are joined first — stopping a
    /// worker never unsubscribes its consumers, so the failure detection
    /// path is exercised identically in both modes. Tickets owned by the
    /// killed front-end fail on their next collect with
    /// [`RailgunError::NodeLost`].
    pub fn kill_node(&mut self, idx: usize) -> Result<()> {
        if idx >= self.nodes.len() {
            return Err(RailgunError::InvalidArgument(format!("no node {idx}")));
        }
        let mut node = self.nodes.remove(idx);
        self.departed.push(node.id);
        let _ = node.stop();
        drop(node);
        Ok(())
    }

    /// Scheduled drain (planned scale-down, the opposite of
    /// [`Cluster::kill_node`]): move a node's tasks off **before**
    /// removing it, so nothing is lost and the handover tail is short.
    ///
    /// Protocol, in order:
    ///
    /// 1. mark the node draining in the assignment strategy — concurrent
    ///    rebalances can no longer hand it new work;
    /// 2. flush a final checkpoint of every task with progress past its
    ///    last image (forced — works with periodic checkpoints disabled)
    ///    and publish the records;
    /// 3. leave the consumer groups, triggering the rebalance that moves
    ///    the tasks to survivors — which restore from the images of
    ///    step 2 and replay only what arrived mid-drain;
    /// 4. remove the node and settle.
    ///
    /// Returns the number of checkpoint images flushed in step 2.
    /// Tickets still outstanding on the drained front-end fail with
    /// [`RailgunError::NodeLost`] — under live ingest, collect before
    /// draining the node you are sending through, or resend.
    pub fn drain_node(&mut self, idx: usize) -> Result<usize> {
        if idx >= self.nodes.len() {
            return Err(RailgunError::InvalidArgument(format!("no node {idx}")));
        }
        if self.nodes.len() == 1 {
            return Err(RailgunError::InvalidArgument(
                "cannot drain the last node".into(),
            ));
        }
        let node_id = self.nodes[idx].id;
        self.strategy.set_draining(node_id);
        let flushed = match self.nodes[idx].drain_units() {
            Ok(f) => f,
            Err(e) => {
                // Abort: the node keeps serving (its consumers are still
                // in the groups); un-mark it so it gets work again.
                self.strategy.clear_draining(node_id);
                return Err(e);
            }
        };
        let mut node = self.nodes.remove(idx);
        self.departed.push(node_id);
        node.shutdown();
        drop(node);
        self.strategy.clear_draining(node_id);
        self.settle()?;
        self.telemetry.drain_counter().incr();
        Ok(flushed)
    }

    /// Feed the autoscaler controller one telemetry observation and
    /// execute its decision (add a node, or drain the newest one).
    /// Returns the decision already carried out. Call at a fixed cadence
    /// — the controller's streak and cooldown constants are denominated
    /// in calls (see [`crate::elastic`]). A no-op unless
    /// `ClusterConfig::autoscaler.enabled`.
    pub fn autoscale_tick(&mut self) -> Result<ScaleDecision> {
        let snap = self.telemetry.snapshot();
        let decision = self.autoscaler.observe(&snap, self.nodes.len());
        match decision {
            ScaleDecision::Hold => {}
            ScaleDecision::Add => {
                self.add_node()?;
                self.telemetry.autoscaler_add_counter().incr();
            }
            ScaleDecision::Shrink => {
                // Drain the newest node: the older nodes hold the
                // longest-lived state and the warmest caches.
                let idx = self.nodes.len() - 1;
                self.drain_node(idx)?;
                self.telemetry.autoscaler_shrink_counter().incr();
            }
        }
        Ok(decision)
    }

    /// Add a fresh node to the running cluster (elasticity). If the
    /// cluster is running threaded, the new node starts threaded too.
    pub fn add_node(&mut self) -> Result<u32> {
        let id = self.next_node_id;
        self.next_node_id += 1;
        let mut node = Node::new(
            &self.bus,
            id,
            self.config.units_per_node,
            &self.config.data_root,
            self.config.task.clone(),
            Arc::clone(&self.strategy),
            self.config.checkpoint_every,
            self.config.max_in_flight,
            self.config.batch,
            Arc::clone(&self.telemetry),
        )?;
        if self.is_running() {
            node.start()?;
        }
        self.nodes.push(node);
        self.settle()?;
        Ok(id)
    }

    /// Live nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Mutable node access (benches probing task state).
    pub fn nodes_mut(&mut self) -> &mut [Node] {
        &mut self.nodes
    }
}

fn outcome(r: ClientResponse) -> SendOutcome {
    SendOutcome {
        request_id: r.request_id,
        aggregations: r.aggregations,
        duplicate: r.duplicate,
    }
}

/// An independent client of a (typically started) cluster: its own
/// front-end, reply topic and request-id space over the shared bus.
///
/// Created with [`Cluster::client`]; `Send`, so each client thread owns
/// one and drives many in-flight requests against the worker threads
/// without touching the `Cluster` itself. Collection only pumps this
/// client's own front-end, so against a *pump-mode* cluster someone else
/// must still drive the processor units (the harness's `pump`/`settle`).
pub struct ClusterClient {
    frontend: FrontEnd,
    bus: MessageBus,
    collect_timeout: Duration,
}

impl ClusterClient {
    /// Publish one event; returns its request id immediately. Bounded by
    /// the front-end's in-flight cap ([`RailgunError::Backpressure`]).
    pub fn send_async(
        &mut self,
        stream: &str,
        ts: Timestamp,
        values: Vec<Value>,
    ) -> Result<u64> {
        self.frontend.send_event(stream, ts, values)
    }

    /// Non-blocking collect: drain replies and claim `request_id` if done.
    pub fn try_collect(&mut self, request_id: u64) -> Result<Option<SendOutcome>> {
        self.frontend.pump()?;
        Ok(self.frontend.try_take(request_id).map(outcome))
    }

    /// Blocking collect: park on the bus wakeup path until the response
    /// arrives or the client's collect timeout elapses.
    pub fn collect(&mut self, request_id: u64) -> Result<SendOutcome> {
        let deadline = Instant::now() + self.collect_timeout;
        loop {
            let seen = self.bus.version();
            if let Some(out) = self.try_collect(request_id)? {
                return Ok(out);
            }
            let now = Instant::now();
            if now >= deadline {
                self.cancel(request_id);
                return Err(RailgunError::Engine(format!(
                    "client: no reply for request {request_id} within {:?}",
                    self.collect_timeout
                )));
            }
            self.bus
                .wait_for_activity(seen, (deadline - now).min(Duration::from_millis(50)));
        }
    }

    /// Synchronous convenience: [`ClusterClient::send_async`] +
    /// [`ClusterClient::collect`].
    pub fn send(
        &mut self,
        stream: &str,
        ts: Timestamp,
        values: Vec<Value>,
    ) -> Result<SendOutcome> {
        let id = self.send_async(stream, ts, values)?;
        self.collect(id)
    }

    /// Abandon an outstanding request, freeing its in-flight slot (called
    /// automatically when [`ClusterClient::collect`] times out).
    pub fn cancel(&mut self, request_id: u64) -> bool {
        self.frontend.abandon(request_id)
    }

    /// Register a textual query through this client's front-end.
    ///
    /// **Propagation is asynchronous**: the registration travels the ops
    /// topic and each worker applies it on its next pump, so an event
    /// sent immediately after this returns may still be processed under
    /// the old plan (its reply then lacks the new query's aggregations).
    /// [`Cluster::register_query`] settles the ops topic before
    /// returning; clients of a threaded cluster have no such barrier —
    /// registrations converge within the workers' wakeup latency.
    pub fn register_query(&mut self, query_text: &str) -> Result<QueryId> {
        self.frontend.register_query(query_text)
    }

    /// Register a builder-constructed query through this client's
    /// front-end. Propagation is asynchronous — see
    /// [`ClusterClient::register_query`].
    pub fn register(&mut self, query: &Query) -> Result<QueryId> {
        self.frontend.register_query_ast(query)
    }

    /// Unregister a query by id. Propagation is asynchronous — see
    /// [`ClusterClient::register_query`]; replies may carry the query's
    /// aggregations until every worker has applied the teardown.
    pub fn unregister_query(&mut self, id: QueryId) -> Result<()> {
        self.frontend.unregister_query(id)
    }

    /// Live query registrations this client knows of (kept current as
    /// its front-end pumps the ops topic).
    pub fn queries(&self) -> Vec<RegisteredQuery> {
        self.frontend.queries()
    }

    /// Requests still awaiting replies.
    pub fn pending_count(&self) -> usize {
        self.frontend.pending_count()
    }

    /// The client's in-flight cap.
    pub fn max_in_flight(&self) -> usize {
        self.frontend.max_in_flight()
    }
}
