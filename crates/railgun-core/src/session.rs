//! Typed client session over an in-process cluster.
//!
//! [`Session`] is the misuse-resistant front door to Railgun: it owns a
//! [`Cluster`] and hands out **handles** —
//!
//! * [`StreamHandle`] — a registered stream plus its schema; mints
//!   schema-checked [`EventBuilder`]s so events are built by **field
//!   name** instead of positional `Vec<Value>`;
//! * [`QueryHandle`] — a registered query's stable [`QueryId`] plus its
//!   AST; addresses its aggregations in replies by `(id, index)` and
//!   drives the unregister lifecycle.
//!
//! Replies come back as [`TypedReply`]s with typed keyed accessors, so
//! client code never string-matches on display names:
//!
//! ```
//! use railgun_core::lang::{mins, Agg, Query, Window};
//! use railgun_core::session::Session;
//! use railgun_core::ClusterConfig;
//! use railgun_types::{FieldType, Timestamp};
//!
//! let mut session = Session::new(ClusterConfig::single_node()).unwrap();
//! let payments = session
//!     .create_stream(
//!         "payments",
//!         &[("cardId", FieldType::Str), ("amount", FieldType::Float)],
//!         &["cardId"],
//!     )
//!     .unwrap();
//! let per_card = session
//!     .register(
//!         Query::select(Agg::sum("amount"))
//!             .select(Agg::count())
//!             .from("payments")
//!             .group_by(["cardId"])
//!             .over(Window::sliding(mins(5))),
//!     )
//!     .unwrap();
//!
//! let event = payments
//!     .event(Timestamp::from_millis(1_000))
//!     .set("cardId", "card-1")
//!     .set("amount", 25.0)
//!     .build()
//!     .unwrap();
//! let reply = session.send(event).unwrap();
//! assert_eq!(reply.get_f64(&per_card, 0), Some(25.0)); // sum(amount)
//! assert_eq!(reply.get_i64(&per_card, 1), Some(1));    // count(*)
//!
//! session.unregister(&per_card).unwrap();
//! let event = payments
//!     .event(Timestamp::from_millis(2_000))
//!     .set("cardId", "card-1")
//!     .set("amount", 5.0)
//!     .build()
//!     .unwrap();
//! let reply = session.send(event).unwrap();
//! assert_eq!(reply.get(&per_card, 0), None); // unregistered: gone
//! ```
//!
//! The positional path ([`Cluster::send`]) remains available — the
//! session is a facade, not a fork; [`Session::cluster_mut`] exposes the
//! full cluster API (threaded start/stop, async clients, node churn).

use std::sync::Arc;

use railgun_types::{
    FieldType, RailgunError, Result, Schema, TimeDelta, Timestamp, Value,
};

use crate::api::{AggregationResult, QueryId};
use crate::cluster::{Cluster, ClusterConfig, SendOutcome};
use crate::lang::{Query, QueryBuilder};
use crate::metrics::MetricsSnapshot;

/// A typed client session owning an in-process [`Cluster`].
pub struct Session {
    cluster: Cluster,
}

impl Session {
    /// Boot a cluster per `config` and open a session on it.
    pub fn new(config: ClusterConfig) -> Result<Self> {
        Ok(Session {
            cluster: Cluster::new(config)?,
        })
    }

    /// Open a session over an already-built cluster.
    pub fn from_cluster(cluster: Cluster) -> Self {
        Session { cluster }
    }

    /// The underlying cluster (diagnostics).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable access to the underlying cluster — the escape hatch to
    /// everything the facade doesn't wrap (threaded `start`/`stop`,
    /// per-thread async [`crate::cluster::ClusterClient`]s, node churn).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Register a stream from `(name, type)` field pairs and return its
    /// handle. The first fields listed in `partitioners` must be schema
    /// fields; stream and partitioner names must not contain `--`.
    pub fn create_stream(
        &mut self,
        name: &str,
        fields: &[(&str, FieldType)],
        partitioners: &[&str],
    ) -> Result<StreamHandle> {
        let schema = Schema::from_pairs(fields)?;
        self.create_stream_with_schema(name, schema, partitioners)
    }

    /// Register a stream from a pre-built [`Schema`].
    pub fn create_stream_with_schema(
        &mut self,
        name: &str,
        schema: Schema,
        partitioners: &[&str],
    ) -> Result<StreamHandle> {
        self.cluster.create_stream(name, schema.clone(), partitioners)?;
        Ok(StreamHandle {
            name: name.to_owned(),
            schema: Arc::new(schema),
        })
    }

    /// A handle for a stream registered earlier (possibly by another
    /// session or front-end), if this session's cluster knows it. The
    /// node front-end keeps the authoritative stream map — the handle is
    /// reconstructed from the cluster's first node.
    pub fn stream(&self, name: &str) -> Result<StreamHandle> {
        self.cluster
            .stream_schema(name)
            .map(|schema| StreamHandle {
                name: name.to_owned(),
                schema: Arc::new(schema),
            })
            .ok_or_else(|| RailgunError::NotFound(format!("stream `{name}`")))
    }

    /// Register a builder-constructed query and return its handle.
    ///
    /// Accepts the builder directly (`.over(...)` without `.build()`) or
    /// a finished [`Query`]. A latency budget declared with
    /// [`QueryBuilder::with_slo`] is registered with the cluster's
    /// telemetry plane — see [`Session::metrics`].
    pub fn register(&mut self, query: impl IntoQuery) -> Result<QueryHandle> {
        let slo = query.slo();
        let query = query.into_query()?;
        let id = self.cluster.register(&query)?;
        if let Some(budget) = slo {
            self.cluster.set_query_slo(id, budget);
        }
        Ok(QueryHandle { id, query })
    }

    /// Register a textual query (Figure 4 syntax) and return its handle —
    /// the same lifecycle as [`Session::register`], pinned equivalent by
    /// the builder↔parser cross-checks.
    pub fn register_text(&mut self, query_text: &str) -> Result<QueryHandle> {
        let query = crate::lang::parse_query(query_text)?;
        let id = self.cluster.register_query(query_text)?;
        Ok(QueryHandle { id, query })
    }

    /// Unregister a query: its aggregations disappear from replies and
    /// every task tears down its state.
    pub fn unregister(&mut self, handle: &QueryHandle) -> Result<()> {
        self.cluster.unregister_query(handle.id)
    }

    /// Every live query registration, as re-hydrated handles in id order.
    pub fn queries(&self) -> Vec<QueryHandle> {
        self.cluster
            .queries()
            .into_iter()
            .map(|r| QueryHandle {
                id: r.id,
                query: r.query,
            })
            .collect()
    }

    /// Send a built event and wait for its aggregations.
    pub fn send(&mut self, event: StreamEvent) -> Result<TypedReply> {
        let outcome = self
            .cluster
            .send(&event.stream, event.ts, event.values)?;
        Ok(TypedReply { outcome })
    }

    /// Positional send (the thin shim over the old calling convention).
    pub fn send_values(
        &mut self,
        stream: &str,
        ts: Timestamp,
        values: Vec<Value>,
    ) -> Result<TypedReply> {
        let outcome = self.cluster.send(stream, ts, values)?;
        Ok(TypedReply { outcome })
    }

    /// Snapshot the engine's telemetry: per-stage latency histograms,
    /// per-query percentile ladders keyed by [`QueryId`], SLO breach
    /// counters, and aggregated task stats.
    ///
    /// Stage histograms fill only when the cluster was built with
    /// `ClusterConfig::telemetry = true`; declaring an SLO with
    /// [`QueryBuilder::with_slo`] arms per-query tracking either way:
    ///
    /// ```
    /// use railgun_core::lang::{millis, mins, Agg, Query, Window};
    /// use railgun_core::session::Session;
    /// use railgun_core::ClusterConfig;
    /// use railgun_types::{FieldType, Timestamp};
    ///
    /// let mut config = ClusterConfig::single_node();
    /// config.telemetry = true; // stage histograms on
    /// # config.data_root = std::env::temp_dir()
    /// #     .join(format!("railgun-metrics-doc-{}", std::process::id()));
    /// # std::fs::remove_dir_all(&config.data_root).ok();
    /// let mut session = Session::new(config).unwrap();
    /// let payments = session
    ///     .create_stream("payments", &[("cardId", FieldType::Str)], &["cardId"])
    ///     .unwrap();
    /// let per_card = session
    ///     .register(
    ///         Query::select(Agg::count())
    ///             .from("payments")
    ///             .group_by(["cardId"])
    ///             .over(Window::sliding(mins(5)))
    ///             .with_slo(millis(250)), // latency budget: p(100) ≤ 250 ms
    ///     )
    ///     .unwrap();
    ///
    /// let event = payments
    ///     .event(Timestamp::from_millis(1_000))
    ///     .set("cardId", "card-1")
    ///     .build()
    ///     .unwrap();
    /// session.send(event).unwrap();
    ///
    /// let metrics = session.metrics();
    /// let q = metrics.query(per_card.id()).expect("tracked per QueryId");
    /// assert_eq!(q.completed, 1);
    /// let ladder = q.ladder(); // p50/p90/…/p99.99 in µs
    /// assert!(ladder.p50_us <= ladder.p999_us);
    /// assert_eq!(metrics.tasks.events_processed, 1);
    /// assert!(metrics.stages.frontend_e2e.count() >= 1);
    /// ```
    pub fn metrics(&self) -> MetricsSnapshot {
        self.cluster.metrics_snapshot()
    }
}

/// Conversion into a finished [`Query`] — lets [`Session::register`]
/// accept a [`QueryBuilder`] chain directly.
pub trait IntoQuery {
    /// Finalize into the query AST.
    fn into_query(self) -> Result<Query>;

    /// The latency budget riding along, if the source carries one
    /// ([`QueryBuilder::with_slo`]). Budgets are operational metadata,
    /// not query semantics, so plain [`Query`] values have none.
    fn slo(&self) -> Option<TimeDelta> {
        None
    }
}

impl IntoQuery for Query {
    fn into_query(self) -> Result<Query> {
        Ok(self)
    }
}

impl IntoQuery for &Query {
    fn into_query(self) -> Result<Query> {
        Ok(self.clone())
    }
}

impl IntoQuery for QueryBuilder {
    fn into_query(self) -> Result<Query> {
        self.build()
    }

    fn slo(&self) -> Option<TimeDelta> {
        QueryBuilder::slo(self)
    }
}

/// A registered stream: its name plus schema (shared, so handles and
/// the builders they mint are cheap). Mints schema-checked
/// [`EventBuilder`]s.
#[derive(Debug, Clone)]
pub struct StreamHandle {
    name: String,
    schema: Arc<Schema>,
}

impl StreamHandle {
    /// The stream's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stream's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Start building an event with timestamp `ts`. Fields are set by
    /// name; unset fields default to NULL. The builder shares the
    /// handle's schema (no per-event schema clone).
    pub fn event(&self, ts: Timestamp) -> EventBuilder {
        EventBuilder {
            stream: self.name.clone(),
            schema: Arc::clone(&self.schema),
            ts,
            values: vec![None; self.schema.len()],
            error: None,
        }
    }
}

/// A registered query: its stable [`QueryId`] plus the AST it was
/// registered with. Addresses its aggregations in replies by
/// `(id, SELECT index)`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryHandle {
    id: QueryId,
    query: Query,
}

impl QueryHandle {
    /// The stable id aggregations of this query are keyed by.
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// The registered query AST.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Display name of the `index`-th aggregation (as replies carry it —
    /// the same [`Query::metric_name`] the plan's metric refs use).
    pub fn metric_name(&self, index: usize) -> Option<String> {
        self.query.metric_name(index)
    }

    /// Number of aggregations in the SELECT list.
    pub fn metric_count(&self) -> usize {
        self.query.select.len()
    }
}

/// A named-field event builder validated against the stream schema.
///
/// `set` records the first error it hits (unknown field, type mismatch,
/// duplicate assignment) and [`EventBuilder::build`] reports it — so the
/// fluent chain stays ergonomic without silently dropping mistakes.
#[derive(Debug)]
pub struct EventBuilder {
    stream: String,
    schema: Arc<Schema>,
    ts: Timestamp,
    values: Vec<Option<Value>>,
    error: Option<RailgunError>,
}

impl EventBuilder {
    /// Set field `name` to `value`.
    pub fn set(mut self, name: &str, value: impl Into<Value>) -> Self {
        if self.error.is_some() {
            return self;
        }
        let value = value.into();
        let idx = match self.schema.index_of(name) {
            Some(i) => i,
            None => {
                self.error = Some(RailgunError::Schema(format!(
                    "unknown field `{name}` on stream `{}`",
                    self.stream
                )));
                return self;
            }
        };
        if self.values[idx].is_some() {
            self.error = Some(RailgunError::Schema(format!(
                "field `{name}` set twice"
            )));
            return self;
        }
        let decl = self.schema.fields()[idx].ty;
        if !decl.admits(&value) {
            self.error = Some(RailgunError::Schema(format!(
                "field `{name}` declared {decl:?} but value is {value:?}"
            )));
            return self;
        }
        self.values[idx] = Some(value);
        self
    }

    /// Finish the event. Unset fields become NULL (every field type
    /// admits NULL); the first `set` error, if any, is reported here.
    pub fn build(self) -> Result<StreamEvent> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let values: Vec<Value> = self
            .values
            .into_iter()
            .map(|v| v.unwrap_or(Value::Null))
            .collect();
        // The per-set checks already guarantee validity (and the
        // front-end re-validates on send), so no third full-schema pass
        // on the per-event path.
        debug_assert!(self.schema.check_values(&values).is_ok());
        Ok(StreamEvent {
            stream: self.stream,
            ts: self.ts,
            values,
        })
    }
}

/// A schema-validated event ready to send: stream, timestamp, and values
/// in schema order.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamEvent {
    pub stream: String,
    pub ts: Timestamp,
    pub values: Vec<Value>,
}

/// A completed reply with typed, keyed accessors.
#[derive(Debug, Clone, PartialEq)]
pub struct TypedReply {
    outcome: SendOutcome,
}

impl TypedReply {
    /// The aggregation at `(query handle, SELECT index)`, if present.
    pub fn get(&self, query: &QueryHandle, index: usize) -> Option<&AggregationResult> {
        self.outcome.get(query.id, index)
    }

    /// Typed accessor: `f64` (ints widen).
    pub fn get_f64(&self, query: &QueryHandle, index: usize) -> Option<f64> {
        self.outcome.get_f64(query.id, index)
    }

    /// Typed accessor: `i64`.
    pub fn get_i64(&self, query: &QueryHandle, index: usize) -> Option<i64> {
        self.outcome.get_i64(query.id, index)
    }

    /// Typed accessor: string slice.
    pub fn get_str(&self, query: &QueryHandle, index: usize) -> Option<&str> {
        self.outcome.get_str(query.id, index)
    }

    /// Typed accessor: bool.
    pub fn get_bool(&self, query: &QueryHandle, index: usize) -> Option<bool> {
        self.outcome.get_bool(query.id, index)
    }

    /// True iff any task reported the event as a duplicate.
    pub fn duplicate(&self) -> bool {
        self.outcome.duplicate
    }

    /// The request id the cluster assigned this send.
    pub fn request_id(&self) -> u64 {
        self.outcome.request_id
    }

    /// The raw outcome (every keyed aggregation, entities included).
    pub fn raw(&self) -> &SendOutcome {
        &self.outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{mins, Agg, Window};

    fn fresh_config(tag: &str) -> ClusterConfig {
        let mut cfg = ClusterConfig::single_node();
        cfg.data_root = std::env::temp_dir().join(format!(
            "railgun-session-{}-{tag}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&cfg.data_root).ok();
        cfg
    }

    fn payments_session(tag: &str) -> (Session, StreamHandle) {
        let mut session = Session::new(fresh_config(tag)).unwrap();
        let stream = session
            .create_stream(
                "payments",
                &[
                    ("cardId", FieldType::Str),
                    ("merchantId", FieldType::Str),
                    ("amount", FieldType::Float),
                ],
                &["cardId"],
            )
            .unwrap();
        (session, stream)
    }

    #[test]
    fn event_builder_validates_names_types_and_duplicates() {
        let (_, stream) = payments_session("builder");
        let ok = stream
            .event(Timestamp::from_millis(0))
            .set("cardId", "c-1")
            .set("amount", 9.5)
            .build()
            .unwrap();
        assert_eq!(
            ok.values,
            vec![Value::Str("c-1".into()), Value::Null, Value::Float(9.5)],
            "unset merchantId defaults to NULL, schema order kept"
        );
        assert!(stream
            .event(Timestamp::from_millis(0))
            .set("nope", 1)
            .build()
            .is_err());
        assert!(stream
            .event(Timestamp::from_millis(0))
            .set("amount", "not-a-float")
            .build()
            .is_err());
        assert!(stream
            .event(Timestamp::from_millis(0))
            .set("amount", 1.0)
            .set("amount", 2.0)
            .build()
            .is_err());
    }

    #[test]
    fn session_lifecycle_register_list_unregister() {
        let (mut session, stream) = payments_session("lifecycle");
        let q = session
            .register(
                Query::select(Agg::count())
                    .from("payments")
                    .group_by(["cardId"])
                    .over(Window::sliding(mins(5))),
            )
            .unwrap();
        assert_eq!(session.queries().len(), 1);
        assert_eq!(session.queries()[0].id(), q.id());
        assert_eq!(q.metric_count(), 1);
        assert_eq!(
            q.metric_name(0).unwrap(),
            "count(*) over sliding 5min"
        );

        let reply = session
            .send(
                stream
                    .event(Timestamp::from_millis(1_000))
                    .set("cardId", "A")
                    .build()
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(reply.get_i64(&q, 0), Some(1));
        assert!(!reply.duplicate());

        session.unregister(&q).unwrap();
        assert!(session.queries().is_empty());
        let reply = session
            .send(
                stream
                    .event(Timestamp::from_millis(2_000))
                    .set("cardId", "A")
                    .build()
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(reply.get(&q, 0), None, "unregistered query gone");
        // Unregistering twice errors cleanly.
        assert!(session.unregister(&q).is_err());
    }

    #[test]
    fn stream_handle_rehydrates_from_cluster() {
        let (session, _) = payments_session("rehydrate");
        let again = session.stream("payments").unwrap();
        assert_eq!(again.name(), "payments");
        assert_eq!(again.schema().len(), 3);
        assert!(session.stream("nope").is_err());
    }
}
