//! # railgun-core — the Railgun streaming engine
//!
//! The paper's main contribution (§3, §4): a distributed streaming engine
//! computing **accurate, per-event aggregations over real-time sliding
//! windows** with millisecond tail latencies. This crate assembles the
//! substrates ([`railgun_reservoir`], [`railgun_store`],
//! [`railgun_messaging`]) into the engine proper:
//!
//! * [`lang`] — the SQL-like query language of Figure 4;
//! * [`expr`] — the filter expression language (jexl substitute);
//! * [`agg`] — incremental aggregators with O(1) insert/evict;
//! * [`plan`] — shared-prefix task plan DAGs (Figure 6);
//! * [`task`] — task processors: reservoir + state store + plan (§4.1);
//! * [`unit`](mod@unit) — processor units running Algorithm 1;
//! * [`rebalance`] — the sticky, locality-aware assignment strategy
//!   (Figure 7);
//! * [`elastic`] — the telemetry-driven autoscaler controller of the
//!   elastic membership subsystem (Figure 10; handover and drain live
//!   in [`unit`](mod@unit) and [`cluster`]);
//! * [`frontend`] — the front-end layer routing events to partitioner
//!   topics and collecting replies (§3.1), with a pipelined in-flight
//!   correlation table;
//! * [`runtime`] — the threaded execution runtime: one OS thread per
//!   processor unit, parked on the bus wakeup path when idle (§3.2);
//! * [`node`] / [`cluster`] — node assembly and an in-process cluster
//!   harness used by examples, tests and benches, running either
//!   deterministically pumped or threaded (`start`/`stop`);
//! * [`api`] — client-facing types and wire encodings, including the
//!   stable [`QueryId`]s that key reply aggregations;
//! * [`metrics`] — the telemetry and SLO plane: in-engine stage latency
//!   histograms, per-query percentile ladders and budget-breach
//!   counters, and the documented overload policy;
//! * [`session`] — the typed client facade: session handles, the
//!   programmatic query builder's registration path, schema-checked
//!   named-field event building, and keyed typed replies.

pub mod agg;
pub mod api;
pub mod cluster;
pub mod elastic;
pub mod expr;
pub mod frontend;
pub mod horizon;
pub mod keys;
pub mod lang;
pub mod metrics;
pub mod node;
pub mod plan;
pub mod rebalance;
pub mod runtime;
pub mod session;
pub mod task;
pub mod unit;

pub use api::{find_keyed, AggregationResult, EventRequest, OpRequest, QueryId, Reply};
pub use cluster::{Cluster, ClusterClient, ClusterConfig, SendOutcome, Ticket};
pub use elastic::{Autoscaler, AutoscalerConfig, ScaleDecision};
pub use frontend::BatchPolicy;
pub use metrics::{
    BatchingMetrics, ElasticCounters, EngineCounters, EngineTelemetry, MetricsSnapshot,
    QueryMetrics, RecoveryCounters, SharedTaskStats, StageLatencies, TaskStatsRegistry,
};
pub use runtime::Runtime;
pub use lang::{
    parse_query, Agg, AggFunc, Query, QueryBuilder, Window, WindowKind, WindowSpec,
};
pub use plan::{MetricHandle, MetricRef, Plan, PlanDiff};
pub use rebalance::RailgunStrategy;
pub use session::{
    EventBuilder, QueryHandle, Session, StreamEvent, StreamHandle, TypedReply,
};
pub use task::{RestoreOutcome, TaskConfig, TaskProcessor, TaskStats};
