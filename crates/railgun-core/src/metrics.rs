//! The engine's telemetry and SLO plane.
//!
//! The paper's whole premise is operating under **MAD requirements** —
//! millisecond-level latency percentiles that must hold while windows
//! grow (§2). This module lets the *real* engine observe itself against
//! that bar (the simulation harness has always had histograms; the engine
//! did not):
//!
//! * [`EngineTelemetry`] — the shared recording hub a cluster wires
//!   through every layer: front-end enqueue→reply latency (per
//!   [`QueryId`]), unit pump poll/process, reservoir append and
//!   cold-drain chunk misses, store WAL-append and memtable flush;
//! * [`TaskStatsRegistry`] / [`SharedTaskStats`] — cluster-wide,
//!   always-on task counters, readable even while the threaded runtime
//!   owns the task processors (previously `TaskStats` was write-only
//!   from the public API in threaded mode);
//! * [`MetricsSnapshot`] — the typed point-in-time view returned by
//!   [`Cluster::metrics_snapshot`](crate::cluster::Cluster::metrics_snapshot)
//!   and [`Session::metrics`](crate::session::Session::metrics).
//!
//! ## Cost contract
//!
//! Telemetry is **off by default** and free when off: disabled
//! [`Recorder`]s never read the clock, per-request timestamps are not
//! taken, and no per-query state is allocated — pump-mode determinism and
//! the PR-2 hot-path numbers are unaffected. Two things are deliberately
//! always on, because they live off the hot path and close observability
//! holes that existed before this plane:
//!
//! * task counters ([`SharedTaskStats`]): uncontended relaxed atomic
//!   increments, one writer per task, replacing the plain-field counters
//!   that already existed;
//! * backpressure/SLO-breach counters: touched only on error paths and
//!   SLO-tracked completions.
//!
//! Registering an SLO (`.with_slo` on the query builder) switches on
//! request timing for the front-ends even when stage telemetry is off —
//! a latency budget cannot be policed without a clock.
//!
//! ## Overload policy
//!
//! A registered SLO feeds a documented escalation rule: the front-end
//! refuses new work with
//! [`RailgunError::Backpressure`](railgun_types::RailgunError::Backpressure)
//! (counted in
//! [`EngineCounters::backpressure_rejections`]) **before** its in-flight
//! table fills, as soon as both hold:
//!
//! 1. at least half the `max_in_flight` budget is occupied, and
//! 2. the *oldest* in-flight request has been outstanding longer than
//!    [`SLO_OVERLOAD_MULTIPLIER`] × the strictest registered SLO budget.
//!
//! Rationale: once the oldest request is that far past the tightest
//! budget, every queued request behind it is already doomed to breach —
//! accepting more work only grows the queue (and the breach count)
//! without ever meeting the budget. Escalating early keeps the queue
//! bounded near the point where latency targets are still salvageable,
//! which is the M in MAD (§2).
//!
//! ## Snapshot semantics
//!
//! Snapshots are cheap, lock-light reads of monotonically-increasing
//! counters and histograms; two successive snapshots never go backwards.
//! Histograms for disabled stages are present but empty. Per-query
//! entries appear on first tracked completion (or SLO registration) and
//! persist for the cluster's lifetime — an unregistered query keeps its
//! history in the snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;
use railgun_types::{
    AtomicHistogram, Counter, FastHashMap, Histogram, LatencyLadder, Recorder, TimeDelta,
};

use crate::api::{AggregationResult, QueryId};
use crate::task::TaskStats;

/// Escalate to backpressure once the oldest in-flight request exceeds
/// this multiple of the strictest registered SLO budget (and the
/// front-end is at least half full). See the [module docs](self).
pub const SLO_OVERLOAD_MULTIPLIER: u64 = 4;

/// Always-on, lock-free counters of one task processor — the atomic
/// successor of the plain-field counters [`TaskStats`] used to be
/// collected into.
///
/// One writer (the owning task processor's thread), any number of
/// snapshot readers: every field is a relaxed [`AtomicU64`], so the
/// counters stay readable through a [`TaskStatsRegistry`] even while the
/// threaded runtime owns the processor.
#[derive(Debug, Default)]
pub struct SharedTaskStats {
    pub(crate) events_processed: AtomicU64,
    pub(crate) duplicates: AtomicU64,
    pub(crate) late_dropped: AtomicU64,
    pub(crate) inserts: AtomicU64,
    pub(crate) evictions: AtomicU64,
    pub(crate) state_reads: AtomicU64,
    pub(crate) state_writes: AtomicU64,
}

impl SharedTaskStats {
    /// Point-in-time copy as the plain [`TaskStats`] POD.
    pub fn snapshot(&self) -> TaskStats {
        TaskStats {
            events_processed: self.events_processed.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            late_dropped: self.late_dropped.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            state_reads: self.state_reads.load(Ordering::Relaxed),
            state_writes: self.state_writes.load(Ordering::Relaxed),
        }
    }
}

/// A cluster-wide registry of live task processors' [`SharedTaskStats`].
///
/// Task processors register themselves at open (via
/// `TaskConfig::stats_registry`); the registry holds weak references, so
/// a processor dropped in a rebalance stops contributing without any
/// unregistration protocol. [`TaskStatsRegistry::aggregate`] sums the
/// survivors — that sum is what [`MetricsSnapshot::tasks`] reports.
#[derive(Debug, Clone, Default)]
pub struct TaskStatsRegistry(Arc<Mutex<Vec<Weak<SharedTaskStats>>>>);

impl TaskStatsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Track a task processor's counters (weakly).
    pub fn register(&self, stats: &Arc<SharedTaskStats>) {
        let mut slots = self.0.lock();
        slots.retain(|w| w.strong_count() > 0);
        slots.push(Arc::downgrade(stats));
    }

    /// Sum the counters of every live registered task processor.
    pub fn aggregate(&self) -> TaskStats {
        let mut total = TaskStats::default();
        let mut slots = self.0.lock();
        slots.retain(|w| w.strong_count() > 0);
        for w in slots.iter() {
            if let Some(stats) = w.upgrade() {
                let s = stats.snapshot();
                total.events_processed += s.events_processed;
                total.duplicates += s.duplicates;
                total.late_dropped += s.late_dropped;
                total.inserts += s.inserts;
                total.evictions += s.evictions;
                total.state_reads += s.state_reads;
                total.state_writes += s.state_writes;
            }
        }
        total
    }

    /// Number of live registered task processors.
    pub fn len(&self) -> usize {
        let mut slots = self.0.lock();
        slots.retain(|w| w.strong_count() > 0);
        slots.len()
    }

    /// True iff no live task processor is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-query latency tracking: histogram, optional SLO budget, breach
/// and completion counters. Entries are shared (`Arc`) between the hub
/// and per-front-end caches, so recording needs no registry lock.
#[derive(Debug, Default)]
pub(crate) struct QueryTelemetry {
    latency: AtomicHistogram,
    /// SLO budget in microseconds; 0 = none registered.
    slo_us: AtomicU64,
    breaches: AtomicU64,
    completed: AtomicU64,
}

impl QueryTelemetry {
    /// Record one completion against this query (and the hub's global
    /// breach counter when over budget).
    fn record_completion(&self, hub: &EngineTelemetry, elapsed_us: u64) {
        self.latency.record(elapsed_us);
        self.completed.fetch_add(1, Ordering::Relaxed);
        let slo = self.slo_us.load(Ordering::Relaxed);
        if slo > 0 && elapsed_us > slo {
            self.breaches.fetch_add(1, Ordering::Relaxed);
            hub.slo_breaches.incr();
        }
    }
}

/// The shared recording hub of one cluster.
///
/// Created by [`Cluster::new`](crate::cluster::Cluster::new) (enabled per
/// `ClusterConfig::telemetry`) and threaded through every layer: the
/// front-ends time enqueue→reply per request and per [`QueryId`], the
/// processor units time poll/process, and the reservoir/store recorders
/// are injected into their configs. See the [module docs](self) for the
/// cost contract.
#[derive(Debug)]
pub struct EngineTelemetry {
    enabled: bool,
    frontend_e2e: Recorder,
    unit_poll: Recorder,
    unit_process: Recorder,
    reservoir_append: Recorder,
    store_wal: Recorder,
    store_flush: Recorder,
    chunk_misses: Counter,
    backpressure: Counter,
    slo_breaches: Counter,
    /// Events per flushed front-end ingest batch. Always on: one sample
    /// per batch (not per event) and no clock read, so it rides the
    /// amortized flush path for free — like the task counters.
    batch_size: Recorder,
    /// Events published by front-ends in batches of ≥ 2 (batch-of-1
    /// flushes are the unbatched baseline and are not counted).
    frontend_batched: Counter,
    /// Events processed by units in same-task runs of ≥ 2 per poll.
    unit_batched: Counter,
    /// Events appended via `Reservoir::append_batch` in batches of ≥ 2.
    reservoir_batched: Counter,
    /// Bytes of torn WAL tail truncated at store open. Always on:
    /// recovery runs once per open, off the hot path, and a silent
    /// repair is exactly what an operator must not get.
    store_wal_truncated: Counter,
    /// Unreferenced SSTables quarantined at store open (always on).
    store_orphans: Counter,
    /// Corrupt/partial checkpoints that degraded to a full topic replay
    /// (always on).
    checkpoint_fallbacks: Counter,
    /// Gained tasks restored from a checkpoint image on rebalance
    /// (always on — one event per handover, far off the hot path).
    handovers: Counter,
    /// Tail events handovers still replayed after restoring (always on).
    tail_replayed: Counter,
    /// Handovers that found a checkpoint record but degraded to a full
    /// replay because the image failed validation (always on).
    handover_fallbacks: Counter,
    /// Scheduled drains that completed (always on).
    drains: Counter,
    /// Autoscaler scale-up decisions executed (always on).
    autoscaler_adds: Counter,
    /// Autoscaler scale-down (drain) decisions executed (always on).
    autoscaler_shrinks: Counter,
    /// Strictest registered SLO budget in µs (0 = none) — the overload
    /// policy's reference point, read on every `send_event`.
    strictest_slo_us: AtomicU64,
    per_query: Mutex<FastHashMap<QueryId, Arc<QueryTelemetry>>>,
    tasks: TaskStatsRegistry,
}

impl EngineTelemetry {
    /// Build the hub. With `enabled == false` every stage recorder is
    /// disabled (free); the always-on pieces (task counters, error-path
    /// counters) remain live.
    pub fn new(enabled: bool) -> Self {
        let recorder = || {
            if enabled {
                Recorder::enabled()
            } else {
                Recorder::disabled()
            }
        };
        EngineTelemetry {
            enabled,
            frontend_e2e: recorder(),
            unit_poll: recorder(),
            unit_process: recorder(),
            reservoir_append: recorder(),
            store_wal: recorder(),
            store_flush: recorder(),
            chunk_misses: if enabled {
                Counter::enabled()
            } else {
                Counter::disabled()
            },
            backpressure: Counter::enabled(),
            slo_breaches: Counter::enabled(),
            batch_size: Recorder::enabled(),
            frontend_batched: Counter::enabled(),
            unit_batched: Counter::enabled(),
            reservoir_batched: Counter::enabled(),
            store_wal_truncated: Counter::enabled(),
            store_orphans: Counter::enabled(),
            checkpoint_fallbacks: Counter::enabled(),
            handovers: Counter::enabled(),
            tail_replayed: Counter::enabled(),
            handover_fallbacks: Counter::enabled(),
            drains: Counter::enabled(),
            autoscaler_adds: Counter::enabled(),
            autoscaler_shrinks: Counter::enabled(),
            strictest_slo_us: AtomicU64::new(0),
            per_query: Mutex::new(FastHashMap::default()),
            tasks: TaskStatsRegistry::new(),
        }
    }

    /// True iff stage telemetry was enabled at construction.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The unit-pump poll recorder (for unit configs).
    pub fn unit_poll_recorder(&self) -> Recorder {
        self.unit_poll.clone()
    }

    /// The unit per-message process recorder (for unit configs).
    pub fn unit_process_recorder(&self) -> Recorder {
        self.unit_process.clone()
    }

    /// The reservoir append recorder (for `ReservoirConfig`).
    pub fn reservoir_append_recorder(&self) -> Recorder {
        self.reservoir_append.clone()
    }

    /// The store WAL-append recorder (for `DbOptions`).
    pub fn store_wal_recorder(&self) -> Recorder {
        self.store_wal.clone()
    }

    /// The store flush recorder (for `DbOptions`).
    pub fn store_flush_recorder(&self) -> Recorder {
        self.store_flush.clone()
    }

    /// The reservoir cold-drain chunk-miss counter (for
    /// `ReservoirConfig`).
    pub fn chunk_miss_counter(&self) -> Counter {
        self.chunk_misses.clone()
    }

    /// The cluster-wide task-stats registry (for `TaskConfig`).
    pub fn task_registry(&self) -> TaskStatsRegistry {
        self.tasks.clone()
    }

    /// The batch-size recorder: front-ends record the event count of
    /// every flushed ingest batch (always on — one sample per batch).
    pub fn batch_size_recorder(&self) -> Recorder {
        self.batch_size.clone()
    }

    /// Counter of events front-ends published in batches of ≥ 2.
    pub fn frontend_batched_counter(&self) -> Counter {
        self.frontend_batched.clone()
    }

    /// Counter of events units processed in same-task runs of ≥ 2 (for
    /// unit configs).
    pub fn unit_batched_counter(&self) -> Counter {
        self.unit_batched.clone()
    }

    /// Counter of events appended in reservoir batches of ≥ 2 (for
    /// `ReservoirConfig`).
    pub fn reservoir_batched_counter(&self) -> Counter {
        self.reservoir_batched.clone()
    }

    /// Counter of torn WAL-tail bytes truncated at store open (for
    /// `DbOptions::wal_truncated_counter`).
    pub fn store_wal_truncated_counter(&self) -> Counter {
        self.store_wal_truncated.clone()
    }

    /// Counter of orphaned SSTables quarantined at store open (for
    /// `DbOptions::orphan_counter`).
    pub fn store_orphan_counter(&self) -> Counter {
        self.store_orphans.clone()
    }

    /// Counter of checkpoint restores that degraded to full replay (for
    /// `TaskConfig::checkpoint_fallbacks`).
    pub fn checkpoint_fallback_counter(&self) -> Counter {
        self.checkpoint_fallbacks.clone()
    }

    /// Counter of rebalance-gained tasks restored from a checkpoint
    /// image (for `UnitConfig::handovers`).
    pub fn handover_counter(&self) -> Counter {
        self.handovers.clone()
    }

    /// Counter of tail events handovers replayed after restoring (for
    /// `UnitConfig::tail_replayed`).
    pub fn tail_replayed_counter(&self) -> Counter {
        self.tail_replayed.clone()
    }

    /// Counter of handovers that degraded to a full replay (for
    /// `UnitConfig::handover_fallbacks`).
    pub fn handover_fallback_counter(&self) -> Counter {
        self.handover_fallbacks.clone()
    }

    /// Counter of completed scheduled drains (bumped by
    /// `Cluster::drain_node`).
    pub fn drain_counter(&self) -> Counter {
        self.drains.clone()
    }

    /// Counter of executed autoscaler scale-up decisions.
    pub fn autoscaler_add_counter(&self) -> Counter {
        self.autoscaler_adds.clone()
    }

    /// Counter of executed autoscaler scale-down decisions.
    pub fn autoscaler_shrink_counter(&self) -> Counter {
        self.autoscaler_shrinks.clone()
    }

    /// True iff front-ends should timestamp requests: stage telemetry is
    /// on, or at least one SLO budget is registered (a budget cannot be
    /// policed without a clock).
    #[inline]
    pub fn wants_request_timing(&self) -> bool {
        self.enabled || self.strictest_slo_us.load(Ordering::Relaxed) > 0
    }

    /// The strictest registered SLO budget in µs (0 = none).
    #[inline]
    pub fn strictest_slo_us(&self) -> u64 {
        self.strictest_slo_us.load(Ordering::Relaxed)
    }

    /// Register (or tighten/replace) the latency budget of `id`.
    pub fn set_slo(&self, id: QueryId, budget: TimeDelta) {
        let us = (budget.as_millis().max(0) as u64).saturating_mul(1_000).max(1);
        self.entry(id).slo_us.store(us, Ordering::Relaxed);
        // Recompute the strictest budget across all entries (SLO updates
        // are rare control-plane events; a full walk is fine).
        let strictest = self
            .per_query
            .lock()
            .values()
            .map(|q| q.slo_us.load(Ordering::Relaxed))
            .filter(|&us| us > 0)
            .min()
            .unwrap_or(0);
        self.strictest_slo_us.store(strictest, Ordering::Relaxed);
    }

    /// Count a refused send (front-end at capacity or SLO overload).
    pub fn count_backpressure(&self) {
        self.backpressure.incr();
    }

    fn entry(&self, id: QueryId) -> Arc<QueryTelemetry> {
        Arc::clone(
            self.per_query
                .lock()
                .entry(id)
                .or_insert_with(|| Arc::new(QueryTelemetry::default())),
        )
    }

    /// Record one completed request: `elapsed_us` of enqueue→reply, plus
    /// a per-query sample (and SLO breach check) for every distinct query
    /// appearing in the reply.
    pub fn observe_completion(&self, aggregations: &[AggregationResult], elapsed_us: u64) {
        let mut scratch = FastHashMap::default();
        self.observe_completion_cached(&mut scratch, aggregations, elapsed_us);
    }

    /// [`EngineTelemetry::observe_completion`] with a caller-owned cache
    /// of per-query entries (keyed by stable [`QueryId`]), so steady-state
    /// recording touches the hub's registry mutex only the first time a
    /// front-end sees a query — keeping the reply-drain path lock-free as
    /// the cost contract promises. Entries are shared `Arc`s, so SLO
    /// budgets set after caching still apply.
    pub(crate) fn observe_completion_cached(
        &self,
        cache: &mut FastHashMap<QueryId, Arc<QueryTelemetry>>,
        aggregations: &[AggregationResult],
        elapsed_us: u64,
    ) {
        self.frontend_e2e.record(elapsed_us);
        // Replies are small (one entry per metric ref); a linear distinct
        // scan beats allocating a set.
        let mut seen: Vec<QueryId> = Vec::with_capacity(4);
        for agg in aggregations {
            if seen.contains(&agg.query) {
                continue;
            }
            seen.push(agg.query);
            let q = cache
                .entry(agg.query)
                .or_insert_with(|| self.entry(agg.query));
            q.record_completion(self, elapsed_us);
        }
    }

    /// Assemble the typed point-in-time view.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let stage = |r: &Recorder| r.snapshot().unwrap_or_default();
        let mut queries: Vec<QueryMetrics> = self
            .per_query
            .lock()
            .iter()
            .map(|(&id, q)| {
                let slo_us = q.slo_us.load(Ordering::Relaxed);
                QueryMetrics {
                    id,
                    latency: q.latency.snapshot(),
                    slo: (slo_us > 0).then(|| TimeDelta::from_millis((slo_us / 1_000) as i64)),
                    breaches: q.breaches.load(Ordering::Relaxed),
                    completed: q.completed.load(Ordering::Relaxed),
                }
            })
            .collect();
        queries.sort_by_key(|q| q.id);
        MetricsSnapshot {
            telemetry_enabled: self.enabled,
            stages: StageLatencies {
                frontend_e2e: stage(&self.frontend_e2e),
                unit_poll: stage(&self.unit_poll),
                unit_process: stage(&self.unit_process),
                reservoir_append: stage(&self.reservoir_append),
                store_wal_append: stage(&self.store_wal),
                store_flush: stage(&self.store_flush),
            },
            counters: EngineCounters {
                backpressure_rejections: self.backpressure.get(),
                slo_breaches: self.slo_breaches.get(),
                reservoir_chunk_misses: self.chunk_misses.get(),
            },
            batching: BatchingMetrics {
                batch_size: self.batch_size.snapshot().unwrap_or_default(),
                frontend_batched_events: self.frontend_batched.get(),
                unit_batched_events: self.unit_batched.get(),
                reservoir_batched_events: self.reservoir_batched.get(),
            },
            recovery: RecoveryCounters {
                wal_truncated_bytes: self.store_wal_truncated.get(),
                orphaned_sstables_quarantined: self.store_orphans.get(),
                checkpoint_fallbacks: self.checkpoint_fallbacks.get(),
            },
            elastic: ElasticCounters {
                handovers_completed: self.handovers.get(),
                tail_events_replayed: self.tail_replayed.get(),
                handover_fallbacks: self.handover_fallbacks.get(),
                drains_completed: self.drains.get(),
                autoscaler_adds: self.autoscaler_adds.get(),
                autoscaler_shrinks: self.autoscaler_shrinks.get(),
            },
            tasks: self.tasks.aggregate(),
            queries,
        }
    }
}

/// Observability of the batched ingest path (always on — everything here
/// is recorded once per batch, never per event).
#[derive(Debug, Clone, Default)]
pub struct BatchingMetrics {
    /// Events per flushed front-end ingest batch (a histogram over batch
    /// sizes, not latencies — p50 of 1 means mostly closed-loop traffic).
    pub batch_size: Histogram,
    /// Events front-ends published in batches of ≥ 2.
    pub frontend_batched_events: u64,
    /// Events processor units handled in same-task runs of ≥ 2.
    pub unit_batched_events: u64,
    /// Events the reservoirs appended via batches of ≥ 2.
    pub reservoir_batched_events: u64,
}

/// Per-stage latency histograms (µs). Disabled stages are present but
/// empty (`count() == 0`).
#[derive(Debug, Clone, Default)]
pub struct StageLatencies {
    /// Front-end enqueue→reply, whole requests (all queries).
    pub frontend_e2e: Histogram,
    /// Processor-unit active-consumer poll duration, per pump.
    pub unit_poll: Histogram,
    /// Processor-unit per-message task processing duration.
    pub unit_process: Histogram,
    /// Reservoir append (lock wait included).
    pub reservoir_append: Histogram,
    /// State-store WAL append.
    pub store_wal_append: Histogram,
    /// State-store memtable flush.
    pub store_flush: Histogram,
}

/// Engine-level event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Sends refused with `Backpressure` (cap reached or SLO overload).
    pub backpressure_rejections: u64,
    /// Completions that exceeded their query's SLO budget (all queries).
    pub slo_breaches: u64,
    /// Reservoir chunk-cache misses (cold drains that had to touch disk).
    /// Populated only while stage telemetry is enabled.
    pub reservoir_chunk_misses: u64,
}

/// Crash-recovery counters (always on — recovery runs once per store
/// open or restore, far off the hot path, and every one of these events
/// means data on disk was not what the engine left there). Zero across
/// the board is the healthy steady state; anything else deserves a look
/// at the node's disk before it becomes a pattern.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Bytes of torn WAL tail truncated at store open (a crash landed
    /// mid-append; the unacknowledged suffix was cut).
    pub wal_truncated_bytes: u64,
    /// Unreferenced SSTables moved to the store's quarantine directory
    /// at open (a crash landed between SST creation and the manifest).
    pub orphaned_sstables_quarantined: u64,
    /// Checkpoint restores that found a corrupt/partial image and
    /// degraded to a full topic replay instead of wedging.
    pub checkpoint_fallbacks: u64,
}

/// Elastic-membership counters (always on — every one of these events is
/// a rebalance-scale occurrence, far off the hot path). Together they
/// tell the Figure 10 story in numbers: how often state moved by image
/// instead of replay, how short the replayed tails were, and what the
/// autoscaler decided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElasticCounters {
    /// Rebalance-gained tasks restored from a checkpoint image (the fast
    /// arm; the task replayed only the tail past the recorded offset).
    pub handovers_completed: u64,
    /// Tail events those handovers still replayed. Divide by
    /// `handovers_completed` for the mean tail length — the drain
    /// protocol exists to keep this near zero.
    pub tail_events_replayed: u64,
    /// Handovers that found a checkpoint record but fell back to a full
    /// replay because the image failed validation (the degraded arm; a
    /// cold boot with no record counts as neither).
    pub handover_fallbacks: u64,
    /// Scheduled drains that completed (`Cluster::drain_node`).
    pub drains_completed: u64,
    /// Autoscaler scale-up decisions executed.
    pub autoscaler_adds: u64,
    /// Autoscaler scale-down (drain) decisions executed.
    pub autoscaler_shrinks: u64,
}

/// Latency ladder and SLO standing of one registered query.
#[derive(Debug, Clone)]
pub struct QueryMetrics {
    /// The stable id replies key this query's aggregations by.
    pub id: QueryId,
    /// Enqueue→reply latency of requests whose replies carried this
    /// query's aggregations (µs).
    pub latency: Histogram,
    /// The registered SLO budget, if any (millisecond resolution).
    pub slo: Option<TimeDelta>,
    /// Completions that exceeded the budget.
    pub breaches: u64,
    /// Tracked completions.
    pub completed: u64,
}

impl QueryMetrics {
    /// The standard percentile ladder of this query's latency.
    pub fn ladder(&self) -> LatencyLadder {
        LatencyLadder::from_histogram(&self.latency)
    }
}

/// A typed point-in-time view of the engine's telemetry. Obtained from
/// [`Cluster::metrics_snapshot`](crate::cluster::Cluster::metrics_snapshot)
/// or [`Session::metrics`](crate::session::Session::metrics); see the
/// [module docs](self) for snapshot semantics.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Whether stage telemetry was enabled for this cluster.
    pub telemetry_enabled: bool,
    /// Per-stage latency histograms.
    pub stages: StageLatencies,
    /// Engine-level counters.
    pub counters: EngineCounters,
    /// Batched-ingest observability: batch-size histogram and per-stage
    /// batched-event counters (always on).
    pub batching: BatchingMetrics,
    /// Crash-recovery counters: torn-tail truncation, orphan quarantine,
    /// checkpoint fallbacks (always on).
    pub recovery: RecoveryCounters,
    /// Elastic-membership counters: handovers, replayed tails, drains,
    /// autoscaler decisions (always on).
    pub elastic: ElasticCounters,
    /// Aggregated counters over every live task processor (always on).
    pub tasks: TaskStats,
    /// Per-query ladders, in [`QueryId`] order.
    pub queries: Vec<QueryMetrics>,
}

impl MetricsSnapshot {
    /// The metrics of one query, if it has been tracked.
    pub fn query(&self, id: QueryId) -> Option<&QueryMetrics> {
        self.queries.iter().find(|q| q.id == id)
    }

    /// The front-end enqueue→reply percentile ladder (all queries).
    pub fn frontend_ladder(&self) -> LatencyLadder {
        LatencyLadder::from_histogram(&self.stages.frontend_e2e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use railgun_types::Value;

    fn agg(query: QueryId) -> AggregationResult {
        AggregationResult {
            query,
            index: 0,
            name: "count(*)".into(),
            entity: vec![Value::Str("e".into())],
            value: Value::Int(1),
        }
    }

    #[test]
    fn disabled_hub_has_empty_stages_but_live_counters() {
        let t = EngineTelemetry::new(false);
        assert!(!t.is_enabled());
        assert!(!t.wants_request_timing());
        t.count_backpressure();
        let snap = t.snapshot();
        assert_eq!(snap.stages.frontend_e2e.count(), 0);
        assert_eq!(snap.counters.backpressure_rejections, 1);
    }

    #[test]
    fn slo_registration_enables_request_timing_and_breach_counting() {
        let t = EngineTelemetry::new(false);
        let q = QueryId(7);
        t.set_slo(q, TimeDelta::from_millis(5));
        assert!(t.wants_request_timing());
        assert_eq!(t.strictest_slo_us(), 5_000);
        // Under budget: completion tracked, no breach.
        t.observe_completion(&[agg(q)], 1_000);
        // Over budget: breach.
        t.observe_completion(&[agg(q)], 9_000);
        let snap = t.snapshot();
        let qm = snap.query(q).expect("tracked");
        assert_eq!(qm.completed, 2);
        assert_eq!(qm.breaches, 1);
        assert_eq!(qm.slo, Some(TimeDelta::from_millis(5)));
        assert_eq!(snap.counters.slo_breaches, 1);
        assert!(qm.ladder().max_us >= 9_000);
    }

    #[test]
    fn strictest_slo_tracks_minimum() {
        let t = EngineTelemetry::new(false);
        t.set_slo(QueryId(1), TimeDelta::from_millis(100));
        t.set_slo(QueryId(2), TimeDelta::from_millis(10));
        assert_eq!(t.strictest_slo_us(), 10_000);
        t.set_slo(QueryId(2), TimeDelta::from_millis(500));
        assert_eq!(t.strictest_slo_us(), 100_000);
    }

    #[test]
    fn completion_dedups_query_ids_within_one_reply() {
        let t = EngineTelemetry::new(true);
        let q = QueryId(3);
        // Two aggregations of the same query in one reply (multi-SELECT)
        // count as ONE completion.
        t.observe_completion(&[agg(q), agg(q)], 500);
        assert_eq!(t.snapshot().query(q).unwrap().completed, 1);
    }

    #[test]
    fn registry_aggregates_live_tasks_only() {
        let reg = TaskStatsRegistry::new();
        let a = Arc::new(SharedTaskStats::default());
        let b = Arc::new(SharedTaskStats::default());
        reg.register(&a);
        reg.register(&b);
        a.events_processed.fetch_add(3, Ordering::Relaxed);
        b.events_processed.fetch_add(4, Ordering::Relaxed);
        assert_eq!(reg.aggregate().events_processed, 7);
        assert_eq!(reg.len(), 2);
        drop(b);
        assert_eq!(reg.aggregate().events_processed, 3);
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
    }

    #[test]
    fn recovery_counters_flow_into_snapshot() {
        let t = EngineTelemetry::new(false);
        // Recovery counters are always on, even with stage telemetry off:
        // the injected handles must observably reach the snapshot.
        t.store_wal_truncated_counter().add(123);
        t.store_orphan_counter().incr();
        t.checkpoint_fallback_counter().incr();
        let snap = t.snapshot();
        assert_eq!(
            snap.recovery,
            RecoveryCounters {
                wal_truncated_bytes: 123,
                orphaned_sstables_quarantined: 1,
                checkpoint_fallbacks: 1,
            }
        );
    }

    #[test]
    fn elastic_counters_flow_into_snapshot() {
        let t = EngineTelemetry::new(false);
        // Elastic counters are always on, even with stage telemetry off.
        t.handover_counter().incr();
        t.tail_replayed_counter().add(42);
        t.handover_fallback_counter().incr();
        t.drain_counter().incr();
        t.autoscaler_add_counter().add(2);
        t.autoscaler_shrink_counter().incr();
        let snap = t.snapshot();
        assert_eq!(
            snap.elastic,
            ElasticCounters {
                handovers_completed: 1,
                tail_events_replayed: 42,
                handover_fallbacks: 1,
                drains_completed: 1,
                autoscaler_adds: 2,
                autoscaler_shrinks: 1,
            }
        );
    }

    #[test]
    fn snapshots_are_monotone() {
        let t = EngineTelemetry::new(true);
        t.observe_completion(&[agg(QueryId(1))], 100);
        let s1 = t.snapshot();
        t.observe_completion(&[agg(QueryId(1))], 200);
        t.count_backpressure();
        let s2 = t.snapshot();
        assert!(s2.stages.frontend_e2e.count() > s1.stages.frontend_e2e.count());
        assert!(
            s2.counters.backpressure_rejections > s1.counters.backpressure_rejections
        );
        assert!(s2.query(QueryId(1)).unwrap().completed > s1.query(QueryId(1)).unwrap().completed);
    }
}
