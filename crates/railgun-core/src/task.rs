//! Task processors (paper §4.1).
//!
//! A task processor computes **all metrics of one (topic, partition)**. It
//! owns, share-nothing: an event reservoir, a state store, and the task
//! plan DAG. Everything runs on the processor unit's single thread.
//!
//! ## Window mechanics
//!
//! Evaluation is event-driven: a new event with timestamp `T` evaluates
//! every window at `T_eval = T + 1ms` (the "moment right after" the event,
//! §2). Per window, with size `ws` and delay `d`:
//!
//! * `upper = T + 1 − d`, `lower = upper − ws`;
//! * the **tail** cursor advances to `lower`, yielding expiring events;
//! * the **head** cursor advances to `upper`, yielding entering events
//!   (the arriving event itself for plain sliding windows; older events
//!   crossing the delayed boundary for `delayed by` windows; historic
//!   events during metric backfill);
//! * an arriving event already *behind* the head bound but inside the
//!   window (a late event) is inserted directly — the reservoir guarantees
//!   the head cursor skipped it, so it enters exactly once.
//!
//! The tail-side contract with the reservoir (see
//! `railgun-reservoir::reservoir` docs) guarantees every inserted event is
//! yielded for eviction exactly once, so incremental aggregators stay
//! exact.

use std::path::{Path, PathBuf};

use railgun_reservoir::{AppendOutcome, Cursor, Reservoir, ReservoirConfig};
use railgun_store::{ColumnFamilyId, Db, DbOptions};
use railgun_types::{
    Event, RailgunError, Result, Schema, TimeDelta, Timestamp, Value,
};

use crate::agg::{AggContext, AggState};
use crate::api::AggregationResult;
use crate::keys::state_key;
use crate::lang::{Query, WindowKind};
use crate::plan::{LeafId, MetricHandle, Plan, WindowId};

/// Tuning for a task processor.
#[derive(Debug, Clone)]
pub struct TaskConfig {
    pub reservoir: ReservoirConfig,
    pub store: DbOptions,
    /// Run reservoir truncation every this many events (0 = never).
    pub truncate_every: u64,
    /// Extra retention beyond the largest window (safety margin).
    pub retention_margin: TimeDelta,
}

impl Default for TaskConfig {
    fn default() -> Self {
        TaskConfig {
            reservoir: ReservoirConfig::default(),
            store: DbOptions::default(),
            truncate_every: 4096,
            retention_margin: TimeDelta::from_minutes(1),
        }
    }
}

/// Monotonic counters for one task processor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskStats {
    pub events_processed: u64,
    pub duplicates: u64,
    pub late_dropped: u64,
    pub inserts: u64,
    pub evictions: u64,
    pub state_reads: u64,
    pub state_writes: u64,
}

struct WindowRuntime {
    head: Cursor,
    tail: Option<Cursor>,
    /// Head bound before the current event's advance — the authority for
    /// the direct-insert rule (see module docs).
    head_bound: Timestamp,
    /// Monotonic lower bound the tail cursor has reached. Insertion gates
    /// compare against this (not the current event's instantaneous lower
    /// bound) so a late or rewritten event is inserted iff the tail will
    /// still yield it for eviction — keeping insert/evict exactly paired.
    tail_bound: Timestamp,
}

/// Computes all metrics of one (topic, partition).
pub struct TaskProcessor {
    topic: String,
    partition: u32,
    schema: Schema,
    plan: Plan,
    reservoir: Reservoir,
    db: Db,
    aux_cf: ColumnFamilyId,
    windows: Vec<WindowRuntime>,
    config: TaskConfig,
    stats: TaskStats,
    events_since_truncate: u64,
    /// Per-window scratch buffers reused across events (hot path).
    expired_bufs: Vec<Vec<Event>>,
    entering_buf: Vec<Event>,
    encode_buf: Vec<u8>,
    entity_buf: Vec<Value>,
}

/// Name of the auxiliary column family for `countDistinct`.
const AUX_CF_NAME: &str = "distinct-aux";

impl TaskProcessor {
    /// Open (or recover) a task processor rooted at `dir`.
    pub fn open(
        dir: &Path,
        topic: &str,
        partition: u32,
        schema: Schema,
        config: TaskConfig,
    ) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let reservoir = Reservoir::open(
            &dir.join("reservoir"),
            schema.clone(),
            config.reservoir.clone(),
        )?;
        let db = Db::open(&dir.join("store"), config.store.clone())?;
        let aux_cf = match db.cf_by_name(AUX_CF_NAME) {
            Some(cf) => cf,
            None => db.create_cf(AUX_CF_NAME)?,
        };
        Ok(TaskProcessor {
            topic: topic.to_owned(),
            partition,
            schema,
            plan: Plan::new(),
            reservoir,
            db,
            aux_cf,
            windows: Vec::new(),
            config,
            stats: TaskStats::default(),
            events_since_truncate: 0,
            expired_bufs: Vec::new(),
            entering_buf: Vec::new(),
            encode_buf: Vec::with_capacity(64),
            entity_buf: Vec::with_capacity(4),
        })
    }

    /// The (topic, partition) this task serves.
    pub fn task_id(&self) -> (&str, u32) {
        (&self.topic, self.partition)
    }

    /// The stream schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Register a query's metrics on this task. New windows create head and
    /// tail cursors; the head starts far enough back to **backfill** the
    /// new metric from events already in the reservoir (§6's future work,
    /// supported here via the reservoir's random reads).
    pub fn register_query(&mut self, query: &Query) -> Result<Vec<MetricHandle>> {
        let handles = self.plan.add_query(query, &self.schema)?;
        // Create runtimes for any window nodes added by this query.
        while self.windows.len() < self.plan.windows.len() {
            let wid = self.windows.len();
            let spec = self.plan.windows[wid].spec;
            let max_seen = self.reservoir.max_seen_ts();
            let from = match spec.kind {
                WindowKind::Sliding(ws) => {
                    // Only events that could still be in the window matter.
                    if max_seen == Timestamp::MIN {
                        Timestamp::MIN
                    } else {
                        max_seen.saturating_sub(ws + spec.delay)
                    }
                }
                WindowKind::Tumbling(ws) => {
                    if max_seen == Timestamp::MIN {
                        Timestamp::MIN
                    } else {
                        max_seen.saturating_sub(ws + spec.delay)
                    }
                }
                // Infinite windows backfill the full history.
                WindowKind::Infinite => Timestamp::MIN,
            };
            let head = self.reservoir.cursor_at(from);
            let tail = match spec.kind {
                WindowKind::Sliding(_) => Some(self.reservoir.cursor_at(from)),
                _ => None,
            };
            self.windows.push(WindowRuntime {
                head,
                tail,
                head_bound: Timestamp::MIN,
                tail_bound: Timestamp::MIN,
            });
        }
        Ok(handles)
    }

    /// Process one event end-to-end: advance windows, store the event,
    /// update every aggregation, and return the results for this event's
    /// entities.
    pub fn process_event(&mut self, event: &Event) -> Result<(Vec<AggregationResult>, bool)> {
        self.schema.check_values(event.values())?;
        let t_eval = event.ts + TimeDelta::from_millis(1);
        self.stats.events_processed += 1;

        // Phase 1: advance every tail (expirations) BEFORE the append, so
        // the reservoir's late-event fixups see the new bounds.
        let nwindows = self.windows.len();
        self.expired_bufs.resize_with(nwindows, Vec::new);
        for wid in 0..nwindows {
            let spec = self.plan.windows[wid].spec;
            self.expired_bufs[wid].clear();
            if let (WindowKind::Sliding(ws), Some(tail)) =
                (spec.kind, self.windows[wid].tail.as_ref())
            {
                let lower = t_eval - spec.delay - ws;
                tail.advance_upto_into(lower, &mut self.expired_bufs[wid]);
                let wr = &mut self.windows[wid];
                wr.tail_bound = wr.tail_bound.max(lower);
            }
        }

        // Phase 2: append to the reservoir (dedup + late policy). Only the
        // stored timestamp is tracked here; the event itself is cloned
        // just on the rare direct-insert path below (`Event` clones are
        // cheap Arc bumps, but per-event work on this path adds up).
        let outcome = self.reservoir.append(event.clone())?;
        let (effective_ts, duplicate) = match outcome {
            AppendOutcome::Appended => (Some(event.ts), false),
            AppendOutcome::LateRewritten(ts) => (Some(ts), false),
            AppendOutcome::Duplicate => {
                self.stats.duplicates += 1;
                (None, true)
            }
            AppendOutcome::LateDiscarded => {
                self.stats.late_dropped += 1;
                (None, false)
            }
        };

        // Phase 3: per window, collect entering events and apply the DAG.
        for wid in 0..nwindows {
            let spec = self.plan.windows[wid].spec;
            let upper = t_eval - spec.delay;
            let lower = match spec.kind {
                WindowKind::Sliding(ws) => upper - ws,
                WindowKind::Tumbling(_) | WindowKind::Infinite => Timestamp::MIN,
            };
            let head_bound_pre = self.windows[wid].head_bound;
            let mut entering = std::mem::take(&mut self.entering_buf);
            entering.clear();
            self.windows[wid]
                .head
                .advance_upto_into(upper, &mut entering);
            self.windows[wid].head_bound = self.windows[wid].head_bound.max(upper);
            // Direct insert of a late (or timestamp-rewritten) arrival that
            // the head's fixup skipped (ts < head_bound_pre). The lower
            // gate is the tail cursor's *monotonic* bound: an event at or
            // above it will be yielded for eviction exactly once, so
            // inserting it here keeps the streams paired; anything below it
            // was skipped by the tail too and must not enter.
            let _ = lower;
            let tail_gate = self.windows[wid].tail_bound;
            if let Some(ts) = effective_ts {
                if ts < head_bound_pre && ts >= tail_gate {
                    entering.push(if ts == event.ts {
                        event.clone()
                    } else {
                        Event::new(event.id, ts, event.values().to_vec())
                    });
                }
            }
            // Expire first, then insert (same relative order as the
            // physical streams; aggregators only need each stream's own
            // order to be consistent).
            let expired = std::mem::take(&mut self.expired_bufs[wid]);
            for e in &expired {
                self.apply_dag(wid, e, false)?;
            }
            for e in &entering {
                self.apply_dag(wid, e, true)?;
            }
            self.stats.evictions += expired.len() as u64;
            self.stats.inserts += entering.len() as u64;
            self.expired_bufs[wid] = expired;
            self.entering_buf = entering;
        }

        // Phase 4: collect reply values for this event's entities.
        let results = self.collect_results(event, t_eval)?;

        // Phase 5: periodic retention.
        self.events_since_truncate += 1;
        if self.config.truncate_every > 0
            && self.events_since_truncate >= self.config.truncate_every
        {
            self.events_since_truncate = 0;
            self.maybe_truncate(t_eval)?;
        }
        Ok((results, duplicate))
    }

    /// Walk the DAG below window `wid` for one entering/expiring event.
    fn apply_dag(&mut self, wid: WindowId, event: &Event, insert: bool) -> Result<()> {
        let values = event.values();
        let nfilters = self.plan.windows[wid].filters.len();
        for fi in 0..nfilters {
            let fid = self.plan.windows[wid].filters[fi];
            let passes = match &self.plan.filters[fid].expr {
                Some(expr) => expr.matches(values),
                None => true,
            };
            if !passes {
                continue;
            }
            let ngroups = self.plan.filters[fid].groups.len();
            for gi in 0..ngroups {
                let gid = self.plan.filters[fid].groups[gi];
                let nleaves = self.plan.groups[gid].leaves.len();
                for li in 0..nleaves {
                    let leaf = self.plan.groups[gid].leaves[li];
                    self.update_leaf(leaf, gid, event, insert)?;
                }
            }
        }
        Ok(())
    }

    fn update_leaf(
        &mut self,
        leaf: LeafId,
        gid: usize,
        event: &Event,
        insert: bool,
    ) -> Result<()> {
        let group = &self.plan.groups[gid];
        let leaf_node = &self.plan.leaves[leaf];
        let spec = self.plan.windows[leaf_node.window].spec;
        let bucket = match spec.kind {
            WindowKind::Tumbling(ws) => Some(event.ts.align_down(ws)),
            _ => None,
        };
        // Reused scratch: one entity tuple per (event, leaf) on the hot
        // path would otherwise allocate per state update.
        let mut entity = std::mem::take(&mut self.entity_buf);
        entity.clear();
        for &i in &group.field_indexes {
            entity.push(event.value(i).cloned().unwrap_or(Value::Null));
        }
        let key = state_key(leaf as u32, bucket, &entity);
        entity.clear();
        self.entity_buf = entity;
        let field_value = leaf_node.field_index.map(|i| &event.values()[i]);

        self.stats.state_reads += 1;
        let mut state = match self.db.get_in(Db::DEFAULT_CF, &key, AggState::decode)? {
            Some(decoded) => decoded?,
            None => AggState::new(leaf_node.func),
        };
        let ctx = AggContext {
            db: &self.db,
            aux_cf: self.aux_cf,
            state_key: &key,
        };
        if insert {
            state.insert(field_value, &ctx)?;
        } else {
            state.evict(field_value, &ctx)?;
        }
        self.encode_buf.clear();
        state.encode(&mut self.encode_buf);
        self.stats.state_writes += 1;
        self.db.put(Db::DEFAULT_CF, &key, &self.encode_buf)
    }

    /// Read the current value of every leaf for the event's entities.
    fn collect_results(
        &mut self,
        event: &Event,
        t_eval: Timestamp,
    ) -> Result<Vec<AggregationResult>> {
        let mut out = Vec::with_capacity(self.plan.leaves.len());
        for (leaf_idx, leaf) in self.plan.leaves.iter().enumerate() {
            let group = &self.plan.groups[leaf.group];
            let spec = self.plan.windows[leaf.window].spec;
            let bucket = match spec.kind {
                WindowKind::Tumbling(ws) => {
                    // The bucket containing the (delay-shifted) eval point.
                    Some((t_eval - spec.delay - TimeDelta::from_millis(1)).align_down(ws))
                }
                _ => None,
            };
            let mut entity = Vec::with_capacity(group.field_indexes.len());
            for &i in &group.field_indexes {
                entity.push(event.value(i).cloned().unwrap_or(Value::Null));
            }
            let key = state_key(leaf_idx as u32, bucket, &entity);
            self.stats.state_reads += 1;
            let value = match self
                .db
                .get_in(Db::DEFAULT_CF, &key, |raw| AggState::decode(raw).map(|s| s.value()))?
            {
                Some(v) => v?,
                None => AggState::new(leaf.func).value(),
            };
            out.push(AggregationResult {
                name: leaf.names[0].clone(),
                entity,
                value,
            });
        }
        Ok(out)
    }

    fn maybe_truncate(&mut self, t_eval: Timestamp) -> Result<()> {
        if self.plan.has_infinite_window() {
            return Ok(()); // keep full history
        }
        if self.plan.windows.is_empty() {
            // No metrics registered yet: nothing bounds retention, and
            // future metrics may backfill from any depth — keep everything.
            return Ok(());
        }
        let mut max_span = TimeDelta::ZERO;
        for w in &self.plan.windows {
            let span = match w.spec.kind {
                WindowKind::Sliding(ws) | WindowKind::Tumbling(ws) => ws + w.spec.delay,
                WindowKind::Infinite => return Ok(()),
            };
            if span > max_span {
                max_span = span;
            }
        }
        let before = t_eval - max_span - self.config.retention_margin;
        self.reservoir.truncate_before(before)?;
        Ok(())
    }

    /// Block until the reservoir's queued chunk writes are durable (and
    /// unpinned from cache). Benches call this before measuring so the
    /// cache starts at its configured capacity — the paper's runs start
    /// from a fully-persisted checkpoint load.
    pub fn drain_reservoir_io(&self) -> Result<()> {
        self.reservoir.flush_io()?;
        Ok(())
    }

    /// Checkpoint reservoir and state store together (§4.1.3) into `dir`.
    pub fn checkpoint(&self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir)?;
        self.reservoir.checkpoint(&dir.join("reservoir"))?;
        self.db.checkpoint(&dir.join("store"))?;
        Ok(())
    }

    /// Restore a task processor from a checkpoint directory (as written by
    /// [`TaskProcessor::checkpoint`]) into a fresh data directory. Events
    /// after the checkpoint must be replayed from the messaging layer.
    pub fn restore_from_checkpoint(
        ckpt: &Path,
        dir: &Path,
        topic: &str,
        partition: u32,
        schema: Schema,
        config: TaskConfig,
    ) -> Result<Self> {
        if dir.exists() && dir.read_dir()?.next().is_some() {
            return Err(RailgunError::InvalidArgument(format!(
                "restore target {} is not empty",
                dir.display()
            )));
        }
        std::fs::create_dir_all(dir)?;
        copy_dir(&ckpt.join("reservoir"), &dir.join("reservoir"))?;
        copy_dir(&ckpt.join("store"), &dir.join("store"))?;
        Self::open(dir, topic, partition, schema, config)
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TaskStats {
        self.stats
    }

    /// Reservoir statistics (memory accounting for §5.2).
    pub fn reservoir_stats(&self) -> railgun_reservoir::ReservoirStats {
        self.reservoir.stats()
    }

    /// State-store statistics.
    pub fn store_stats(&self) -> railgun_store::DbStats {
        self.db.stats()
    }

    /// Number of plan leaves (state keys touched per event).
    pub fn leaf_count(&self) -> usize {
        self.plan.leaf_count()
    }

    /// Number of live reservoir cursors (the paper's "iterators", §5.2(b)).
    pub fn iterator_count(&self) -> usize {
        self.reservoir.stats().cursors
    }
}

fn copy_dir(from: &Path, to: &Path) -> Result<()> {
    std::fs::create_dir_all(to)?;
    if !from.exists() {
        return Ok(());
    }
    for entry in std::fs::read_dir(from)? {
        let entry = entry?;
        if entry.file_type()?.is_file() {
            std::fs::copy(entry.path(), to.join(entry.file_name()))?;
        }
    }
    Ok(())
}

/// Helper: a fresh unique data dir under the system temp dir (tests).
pub fn temp_task_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "railgun-task-{}-{tag}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse_query;
    use railgun_types::{EventId, FieldType};

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("cardId", FieldType::Str),
            ("merchantId", FieldType::Str),
            ("amount", FieldType::Float),
        ])
        .unwrap()
    }

    fn proc(tag: &str) -> TaskProcessor {
        TaskProcessor::open(
            &temp_task_dir(tag),
            "payments--cardId",
            0,
            schema(),
            TaskConfig::default(),
        )
        .unwrap()
    }

    fn ev(id: u64, ts_ms: i64, card: &str, merchant: &str, amount: f64) -> Event {
        Event::new(
            EventId(id),
            Timestamp::from_millis(ts_ms),
            vec![
                Value::Str(card.into()),
                Value::Str(merchant.into()),
                Value::Float(amount),
            ],
        )
    }

    fn result_value(results: &[AggregationResult], name_prefix: &str) -> Value {
        results
            .iter()
            .find(|r| r.name.starts_with(name_prefix))
            .unwrap_or_else(|| panic!("no result named {name_prefix}*"))
            .value
            .clone()
    }

    #[test]
    fn q1_sum_and_count_per_card() {
        let mut tp = proc("q1");
        let q = parse_query(
            "SELECT sum(amount), count(*) FROM payments GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        tp.register_query(&q).unwrap();
        let (r, _) = tp.process_event(&ev(1, 1_000, "A", "m1", 10.0)).unwrap();
        assert_eq!(result_value(&r, "sum(amount)"), Value::Float(10.0));
        assert_eq!(result_value(&r, "count(*)"), Value::Int(1));
        let (r, _) = tp.process_event(&ev(2, 2_000, "A", "m2", 15.0)).unwrap();
        assert_eq!(result_value(&r, "sum(amount)"), Value::Float(25.0));
        assert_eq!(result_value(&r, "count(*)"), Value::Int(2));
        // Different card: independent state.
        let (r, _) = tp.process_event(&ev(3, 3_000, "B", "m1", 100.0)).unwrap();
        assert_eq!(result_value(&r, "sum(amount)"), Value::Float(100.0));
        assert_eq!(result_value(&r, "count(*)"), Value::Int(1));
    }

    #[test]
    fn sliding_window_expires_events() {
        let mut tp = proc("expiry");
        let q = parse_query(
            "SELECT count(*) FROM payments GROUP BY cardId OVER sliding 1 min",
        )
        .unwrap();
        tp.register_query(&q).unwrap();
        for (id, ts) in [(1, 0i64), (2, 10_000), (3, 50_000)] {
            tp.process_event(&ev(id, ts, "A", "m", 1.0)).unwrap();
        }
        // At t=75s the window lower bound is 15.001s: events at 0s and 10s
        // expired, events at 50s and 75s remain.
        let (r, _) = tp.process_event(&ev(4, 75_000, "A", "m", 1.0)).unwrap();
        assert_eq!(result_value(&r, "count(*)"), Value::Int(2));
        assert!(tp.stats().evictions >= 2);
    }

    #[test]
    fn figure_1_semantics_sliding_window_catches_all_five() {
        // The paper's Figure 1: events at minutes 1,2,3,4 and one "just
        // inside" the 5-min window. A real-time sliding window sees all 5.
        let mut tp = proc("fig1");
        let q = parse_query(
            "SELECT count(*) FROM payments GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        tp.register_query(&q).unwrap();
        let minutes = [60_000i64, 120_000, 180_000, 240_000];
        for (i, ts) in minutes.iter().enumerate() {
            tp.process_event(&ev(i as u64, *ts, "A", "m", 1.0)).unwrap();
        }
        // e5 arrives at 5:59.999 — within 5 minutes of e1 (1:00).
        let (r, _) = tp
            .process_event(&ev(9, 359_999, "A", "m", 1.0))
            .unwrap();
        assert_eq!(
            result_value(&r, "count(*)"),
            Value::Int(5),
            "real-time sliding window must include all 5 events"
        );
        // Two ms later e1 (ts=60000) has fallen out of the window, so the
        // count stays at 5 even though a new event arrived.
        let (r, _) = tp.process_event(&ev(10, 360_001, "A", "m", 1.0)).unwrap();
        assert_eq!(result_value(&r, "count(*)"), Value::Int(5));
    }

    #[test]
    fn shared_window_multiple_group_bys() {
        // Q1 + Q2 of Example 1 on one task.
        let mut tp = proc("example1");
        tp.register_query(
            &parse_query(
                "SELECT sum(amount), count(*) FROM payments GROUP BY cardId OVER sliding 5 min",
            )
            .unwrap(),
        )
        .unwrap();
        tp.register_query(
            &parse_query(
                "SELECT avg(amount) FROM payments GROUP BY merchantId OVER sliding 5 min",
            )
            .unwrap(),
        )
        .unwrap();
        tp.process_event(&ev(1, 1_000, "A", "m1", 10.0)).unwrap();
        let (r, _) = tp.process_event(&ev(2, 2_000, "B", "m1", 30.0)).unwrap();
        // Card B: sum=30, count=1. Merchant m1: avg=(10+30)/2=20.
        assert_eq!(result_value(&r, "sum(amount)"), Value::Float(30.0));
        assert_eq!(result_value(&r, "count(*)"), Value::Int(1));
        assert_eq!(result_value(&r, "avg(amount)"), Value::Float(20.0));
    }

    #[test]
    fn filter_applies_to_inserts_and_evictions() {
        let mut tp = proc("filter");
        let q = parse_query(
            "SELECT count(*) FROM payments WHERE amount > 50 GROUP BY cardId OVER sliding 1 min",
        )
        .unwrap();
        tp.register_query(&q).unwrap();
        tp.process_event(&ev(1, 0, "A", "m", 100.0)).unwrap(); // passes
        let (r, _) = tp.process_event(&ev(2, 1_000, "A", "m", 10.0)).unwrap(); // filtered
        assert_eq!(result_value(&r, "count(*)"), Value::Int(1));
        // After expiry of the passing event the count returns to 0.
        let (r, _) = tp.process_event(&ev(3, 61_001, "A", "m", 10.0)).unwrap();
        assert_eq!(result_value(&r, "count(*)"), Value::Int(0));
    }

    #[test]
    fn duplicates_do_not_double_count() {
        let mut tp = proc("dup");
        let q = parse_query(
            "SELECT count(*) FROM payments GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        tp.register_query(&q).unwrap();
        tp.process_event(&ev(7, 1_000, "A", "m", 1.0)).unwrap();
        let (r, dup) = tp.process_event(&ev(7, 1_000, "A", "m", 1.0)).unwrap();
        assert!(dup);
        assert_eq!(result_value(&r, "count(*)"), Value::Int(1));
        assert_eq!(tp.stats().duplicates, 1);
    }

    #[test]
    fn tumbling_window_resets_each_bucket() {
        let mut tp = proc("tumbling");
        let q = parse_query(
            "SELECT count(*) FROM payments GROUP BY cardId OVER tumbling 1 min",
        )
        .unwrap();
        tp.register_query(&q).unwrap();
        let (r, _) = tp.process_event(&ev(1, 10_000, "A", "m", 1.0)).unwrap();
        assert_eq!(result_value(&r, "count(*)"), Value::Int(1));
        let (r, _) = tp.process_event(&ev(2, 30_000, "A", "m", 1.0)).unwrap();
        assert_eq!(result_value(&r, "count(*)"), Value::Int(2));
        // Next minute bucket starts fresh.
        let (r, _) = tp.process_event(&ev(3, 70_000, "A", "m", 1.0)).unwrap();
        assert_eq!(result_value(&r, "count(*)"), Value::Int(1));
    }

    #[test]
    fn infinite_window_never_expires() {
        let mut tp = proc("infinite");
        let q = parse_query(
            "SELECT countDistinct(merchantId) FROM payments GROUP BY cardId OVER infinite",
        )
        .unwrap();
        tp.register_query(&q).unwrap();
        tp.process_event(&ev(1, 0, "A", "m1", 1.0)).unwrap();
        tp.process_event(&ev(2, 86_400_000, "A", "m2", 1.0)).unwrap(); // 1 day later
        let (r, _) = tp
            .process_event(&ev(3, 30 * 86_400_000, "A", "m1", 1.0))
            .unwrap();
        assert_eq!(result_value(&r, "countDistinct"), Value::Int(2));
        assert_eq!(tp.stats().evictions, 0);
    }

    #[test]
    fn delayed_window_lags_behind() {
        let mut tp = proc("delayed");
        let q = parse_query(
            "SELECT count(*) FROM payments GROUP BY cardId OVER sliding 1 min delayed by 1 min",
        )
        .unwrap();
        tp.register_query(&q).unwrap();
        // Event at t=0 enters the delayed window only when T_eval - 60s
        // passes it, i.e. for events after ~t=60s.
        let (r, _) = tp.process_event(&ev(1, 0, "A", "m", 1.0)).unwrap();
        assert_eq!(result_value(&r, "count(*)"), Value::Int(0), "own event not visible yet");
        let (r, _) = tp.process_event(&ev(2, 30_000, "A", "m", 1.0)).unwrap();
        assert_eq!(result_value(&r, "count(*)"), Value::Int(0));
        // At t=70s the delayed window covers [70s-60s-60s, 70s-60s) = [-50s, 10s):
        // contains the t=0 event only.
        let (r, _) = tp.process_event(&ev(3, 70_000, "A", "m", 1.0)).unwrap();
        assert_eq!(result_value(&r, "count(*)"), Value::Int(1));
    }

    #[test]
    fn backfill_new_metric_from_existing_events() {
        let mut tp = proc("backfill");
        let q1 = parse_query(
            "SELECT count(*) FROM payments GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        tp.register_query(&q1).unwrap();
        for i in 0..5 {
            tp.process_event(&ev(i, 1_000 + i as i64 * 100, "A", "m", 2.0))
                .unwrap();
        }
        // New metric registered later must see the stored events.
        let q2 = parse_query(
            "SELECT sum(amount) FROM payments GROUP BY cardId OVER sliding 10 min",
        )
        .unwrap();
        tp.register_query(&q2).unwrap();
        let (r, _) = tp.process_event(&ev(99, 2_000, "A", "m", 2.0)).unwrap();
        // 5 backfilled events + this one = 6 × 2.0.
        assert_eq!(result_value(&r, "sum(amount)"), Value::Float(12.0));
    }

    #[test]
    fn all_aggregations_together() {
        let mut tp = proc("allaggs");
        let q = parse_query(
            "SELECT count(amount), sum(amount), avg(amount), stdDev(amount), max(amount), \
             min(amount), last(amount), prev(amount), countDistinct(merchantId) \
             FROM payments GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        tp.register_query(&q).unwrap();
        tp.process_event(&ev(1, 1_000, "A", "m1", 10.0)).unwrap();
        tp.process_event(&ev(2, 2_000, "A", "m2", 30.0)).unwrap();
        let (r, _) = tp.process_event(&ev(3, 3_000, "A", "m1", 20.0)).unwrap();
        assert_eq!(result_value(&r, "count(amount)"), Value::Int(3));
        assert_eq!(result_value(&r, "sum(amount)"), Value::Float(60.0));
        assert_eq!(result_value(&r, "avg(amount)"), Value::Float(20.0));
        assert_eq!(result_value(&r, "max(amount)"), Value::Float(30.0));
        assert_eq!(result_value(&r, "min(amount)"), Value::Float(10.0));
        assert_eq!(result_value(&r, "last(amount)"), Value::Float(20.0));
        assert_eq!(result_value(&r, "prev(amount)"), Value::Float(30.0));
        assert_eq!(result_value(&r, "countDistinct"), Value::Int(2));
        let std = result_value(&r, "stdDev(amount)").as_f64().unwrap();
        assert!((std - 10.0).abs() < 1e-9, "sample stddev of 10,30,20 = 10");
    }

    #[test]
    fn checkpoint_and_restore() {
        let mut tp = proc("ckpt-src2");
        let q = parse_query(
            "SELECT sum(amount) FROM payments GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        tp.register_query(&q).unwrap();
        for i in 0..10 {
            tp.process_event(&ev(i, 1_000 * i as i64, "A", "m", 1.0))
                .unwrap();
        }
        let ckpt = temp_task_dir("ckpt-dir2");
        tp.checkpoint(&ckpt).unwrap();
        drop(tp);
        let restore_dir = temp_task_dir("ckpt-restore2");
        let mut tp2 = TaskProcessor::restore_from_checkpoint(
            &ckpt,
            &restore_dir,
            "payments--cardId",
            0,
            schema(),
            TaskConfig::default(),
        )
        .unwrap();
        tp2.register_query(&q).unwrap();
        // The restored processor continues with backfilled state from the
        // reservoir (events re-enter via the backfill head cursor).
        let (r, _) = tp2.process_event(&ev(100, 10_000, "A", "m", 1.0)).unwrap();
        let sum = result_value(&r, "sum(amount)").as_f64().unwrap();
        assert!(sum >= 10.0, "restored + replayed state, got {sum}");
    }

    #[test]
    fn stats_track_state_access_pattern() {
        // Paper §4.1.3: keys accessed per event == number of DAG leaves.
        let mut tp = proc("statskeys");
        tp.register_query(
            &parse_query(
                "SELECT sum(amount), count(*) FROM payments GROUP BY cardId OVER sliding 5 min",
            )
            .unwrap(),
        )
        .unwrap();
        tp.register_query(
            &parse_query(
                "SELECT avg(amount) FROM payments GROUP BY merchantId OVER sliding 5 min",
            )
            .unwrap(),
        )
        .unwrap();
        let before = tp.stats();
        tp.process_event(&ev(1, 1_000, "A", "m", 5.0)).unwrap();
        let after = tp.stats();
        // 3 leaves → 3 insert writes (no expiry yet).
        assert_eq!(after.state_writes - before.state_writes, 3);
    }

    #[test]
    fn rejects_schema_violations() {
        let mut tp = proc("badschema");
        let bad = Event::new(
            EventId(1),
            Timestamp::from_millis(0),
            vec![Value::Int(1)], // wrong arity
        );
        assert!(tp.process_event(&bad).is_err());
    }
}
